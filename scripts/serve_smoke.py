#!/usr/bin/env python
"""End-to-end smoke of the experiment service, suitable for CI.

Boots ``repro serve`` as a real subprocess, submits the same tiny
point twice (the second submit must be answered from the run cache),
sends SIGTERM, and asserts a clean graceful drain: exit code 0, the
drain banner in the log, and a journal whose every job is DONE.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [PORT]

Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PORT = int(sys.argv[1]) if len(sys.argv) > 1 else 18644
SPEC_ARGS = ["HS", "--preset", "tiny", "--scale", "0.1",
             "--seed", "2018"]


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None and proc.poll() is None:
        proc.kill()
        proc.wait()
    if proc is not None and proc.stderr is not None:
        sys.stderr.write(proc.stderr.read())
    raise SystemExit(1)


def submit(expect_cached: bool) -> dict:
    run = subprocess.run(
        [sys.executable, "-m", "repro.cli", "submit", *SPEC_ARGS,
         "--port", str(PORT), "--json"],
        cwd=REPO, capture_output=True, text=True, timeout=120)
    if run.returncode != 0:
        fail(f"submit exited {run.returncode}: {run.stderr}")
    reply = json.loads(run.stdout)
    if not reply.get("ok"):
        fail(f"submit refused: {reply}")
    if bool(reply.get("cached")) is not expect_cached:
        fail(f"expected cached={expect_cached}, got: {reply}")
    return reply


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        state_dir = Path(tmp) / "state"
        cache_dir = Path(tmp) / "cache"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(PORT),
             "--state-dir", str(state_dir),
             "--cache-dir", str(cache_dir)],
            cwd=REPO, stderr=subprocess.PIPE, text=True)
        try:
            # wait for the listener
            sys.path.insert(0, str(REPO / "src"))
            from repro.serve import JobStore, ServeClient
            client = ServeClient(port=PORT, timeout=10, retries=20,
                                 backoff_base=0.25)
            health = client.healthz()
            if health.get("status") != "serving":
                fail(f"unexpected health: {health}", proc)
            print(f"serving on :{PORT} "
                  f"(retries to connect: {client.retries_used})")

            first = submit(expect_cached=False)
            print(f"cold submit: job {first['job_id']}, "
                  f"{first['stats']['cycles']} cycles")
            second = submit(expect_cached=True)
            if second["stats"] != first["stats"]:
                fail("cache hit returned different stats")
            if second["key"] != first["key"]:
                fail("cache hit returned a different key")
            print("second submit answered from cache, bit-identical")

            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                fail("server did not exit within 30s of SIGTERM", proc)
            log = proc.stderr.read() if proc.stderr else ""
            if proc.returncode != 0:
                fail(f"server exited {proc.returncode}:\n{log}")
            if "drain complete" not in log:
                fail(f"no drain banner in log:\n{log}")

            store = JobStore(str(state_dir / "jobs.jsonl"))
            counts = store.counts()
            store.close()
            if counts["done"] != 1 or counts["pending"] or \
                    counts["leased"] or counts["failed"]:
                fail(f"journal not clean after drain: {counts}")
            print(f"clean drain, journal: {counts}")
            print("OK")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    main()
