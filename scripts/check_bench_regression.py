#!/usr/bin/env python
"""Compare a pytest-benchmark JSON result against the committed baseline.

Usage:
    python scripts/check_bench_regression.py RESULT.json [BASELINE.json]

Exits non-zero when any benchmark's best (min) time regressed by more
than the tolerance over the baseline's best time — by default 30%,
overridable with ``REPRO_BENCH_TOLERANCE`` (a fraction, e.g. ``0.5``).

Minimum-of-rounds is compared rather than the mean because it is the
most noise-robust statistic a short benchmark produces; the generous
tolerance absorbs the remaining machine-to-machine variance between
the host that produced ``benchmarks/BENCH_baseline.json`` and CI
runners.  Benchmarks present in only one file are reported but do not
fail the check, so adding or retiring a benchmark does not require a
lockstep baseline update.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / \
    "benchmarks" / "BENCH_baseline.json"


def load_mins(path: Path) -> dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["min"]
            for bench in data["benchmarks"]}


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    result_path = Path(argv[1])
    baseline_path = Path(argv[2]) if len(argv) == 3 else DEFAULT_BASELINE
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30"))

    result = load_mins(result_path)
    baseline = load_mins(baseline_path)

    failed = []
    for name in sorted(set(result) | set(baseline)):
        new = result.get(name)
        old = baseline.get(name)
        if new is None or old is None:
            side = "baseline" if new is None else "result"
            print(f"  SKIP {name}: only in {side}")
            continue
        ratio = new / old
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSED"
            failed.append(name)
        print(f"  {status:>9} {name}: {old * 1e3:.2f} ms -> "
              f"{new * 1e3:.2f} ms ({ratio:.2f}x)")

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(failed)}")
        return 1
    print(f"\nAll shared benchmarks within {tolerance:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
