#!/usr/bin/env python
"""Compare a pytest-benchmark JSON result against the committed baseline.

Usage:
    python scripts/check_bench_regression.py RESULT.json [BASELINE.json]

Exits non-zero when any benchmark's best (min) time regressed by more
than its tolerance over the baseline's best time.  Tolerances are
per-benchmark (``TOLERANCES`` below): long, simulation-dominated
benchmarks have stable minima and get a tight bound, while
wall-clock-sensitive ones (the serve benchmarks cross a real TCP
socket) get slack proportional to their observed jitter.  Names not
listed use ``REPRO_BENCH_TOLERANCE`` (a fraction, default 30%); the
environment variable also serves as an emergency loosening knob for
known-noisy runners, but never *tightens* a listed bound.

Minimum-of-rounds is compared rather than the mean because it is the
most noise-robust statistic a short benchmark produces; the
tolerances absorb the remaining machine-to-machine variance between
the host that produced ``benchmarks/BENCH_baseline.json`` and CI
runners.  Benchmarks present in only one file are reported but do not
fail the check, so adding or retiring a benchmark does not require a
lockstep baseline update.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / \
    "benchmarks" / "BENCH_baseline.json"

#: Per-benchmark regression tolerance (fraction over baseline min).
TOLERANCES = {
    # matrix sweep: ~150 ms of pure simulation, the most stable min in
    # the suite and the headline number perf PRs are judged on
    "test_matrix_sweep_throughput": 0.20,
    # single-simulation points: one tiny-preset run per round
    "test_simulation_throughput[Protocol.GTSC]": 0.25,
    "test_simulation_throughput[Protocol.TC]": 0.25,
    "test_simulation_throughput[Protocol.DISABLED]": 0.25,
    # engine microbenchmarks: short but allocation-free and steady
    "test_event_engine_throughput": 0.25,
    "test_engine_schedule_cancel_churn": 0.25,
    # packed-state microbenchmarks: pure-Python inner loops over
    # preallocated arrays, very steady minima
    "test_scheduler_ready_mask": 0.25,
    "test_l1_packed_probe": 0.25,
    # multi-GPU cluster points: same simulation-dominated profile as
    # the single-GPU points above, just over the interlinked machine
    "test_multigpu_simulation_throughput[2gpu]": 0.25,
    "test_multigpu_simulation_throughput[4gpu]": 0.25,
    "test_multigpu_interlink_traffic": 0.25,
    # serve path: crosses a real TCP socket, scheduler-sensitive
    "test_submit_latency_cold": 0.50,
    "test_submit_latency_cached": 0.60,
    "test_submit_latency_coalesced": 0.50,
    # fleet load benchmarks: whole-fleet wall clock across worker
    # *subprocesses* — process scheduling and core count dominate the
    # jitter, so these get the loosest bounds in the suite
    "test_fleet_cold_throughput[1w]": 0.60,
    "test_fleet_cold_throughput[2w]": 0.60,
    "test_fleet_cold_throughput[4w]": 0.60,
    "test_fleet_zipf_load": 0.60,
}


def load_mins(path: Path) -> dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["min"]
            for bench in data["benchmarks"]}


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    result_path = Path(argv[1])
    baseline_path = Path(argv[2]) if len(argv) == 3 else DEFAULT_BASELINE
    override = os.environ.get("REPRO_BENCH_TOLERANCE")
    fallback = float(override) if override is not None else 0.30

    result = load_mins(result_path)
    baseline = load_mins(baseline_path)

    failed = []
    for name in sorted(set(result) | set(baseline)):
        new = result.get(name)
        old = baseline.get(name)
        if new is None or old is None:
            side = "baseline" if new is None else "result"
            print(f"  SKIP {name}: only in {side}")
            continue
        tolerance = TOLERANCES.get(name, fallback)
        if override is not None:
            # explicit env knob loosens any bound, never tightens one
            tolerance = max(tolerance, fallback)
        ratio = new / old
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSED"
            failed.append(name)
        print(f"  {status:>9} {name}: {old * 1e3:.2f} ms -> "
              f"{new * 1e3:.2f} ms ({ratio:.2f}x, "
              f"tol {tolerance:.0%})")

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed past their "
              f"tolerance: {', '.join(failed)}")
        return 1
    print("\nAll shared benchmarks within tolerance of the baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
