#!/usr/bin/env python
"""End-to-end smoke of the results database, suitable for CI.

Runs a small sweep into a fresh database through the real CLI,
verifies the rows are provenance-stamped and queryable, backfills
the run cache the sweep left behind into a *second* fresh database
(the rows must agree on cycles), and renders the HTML report — which
CI uploads as an artifact.

Usage::

    PYTHONPATH=src python scripts/db_smoke.py [OUT_DIR]

``OUT_DIR`` (default ``db-smoke/``) receives ``repro.db`` and
``report.html``.  Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = Path(sys.argv[1] if len(sys.argv) > 1 else "db-smoke").resolve()
RUN_ARGS = ["--preset", "tiny", "--scale", "0.3", "--seed", "2018"]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def cli(*argv: str) -> str:
    run = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO, capture_output=True, text=True, timeout=900)
    if run.returncode != 0:
        fail(f"'{' '.join(argv[:3])}...' exited {run.returncode}:\n"
             f"{run.stdout}\n{run.stderr}")
    return run.stdout


def main() -> int:
    OUT.mkdir(parents=True, exist_ok=True)
    db = str(OUT / "repro.db")
    cache = str(OUT / "runcache")
    report = str(OUT / "report.html")

    # 1. a small sweep records rows as it runs
    cli("run", "fig12", *RUN_ARGS, "--db", db, "--cache-dir", cache)
    summary = json.loads(cli("db", "query", "--db", db, "--summary"))
    if summary["runs"] < 5:
        fail(f"expected a sweep's worth of rows, got {summary}")
    if summary["commits"] < 1 or summary["hosts"] != 1:
        fail(f"rows are missing provenance: {summary}")
    print(f"recorded {summary['runs']} run(s) from "
          f"{summary['commits']} commit(s): OK")

    # 2. rows answer filtered queries
    listing = cli("db", "query", "--db", db, "--protocol", "gtsc",
                  "--consistency", "rc")
    if "gtsc-rc" not in listing:
        fail(f"query returned no gtsc-rc rows:\n{listing}")
    print("filtered query: OK")

    # 3. the cache the sweep warmed backfills a second, fresh database
    db2 = str(OUT / "backfill.db")
    out = cli("db", "ingest", "--db", db2, "--cache-dir", cache)
    if f"{summary['runs']} run(s) total" not in out:
        fail(f"backfill row count disagrees with the sweep:\n{out}")
    print("backfill from the run cache: OK")

    # 4. the HTML report renders from queries alone
    cli("db", "report", "--db", db, "--output", report,
        "--title", "results-db smoke")
    text = Path(report).read_text()
    for needle in ("results-db smoke", "Fleet summary", "G-TSC-RC",
                   "Provenance appendix"):
        if needle not in text:
            fail(f"report is missing {needle!r}")
    print(f"report rendered ({len(text)} bytes): OK")
    print(f"\ndb smoke passed — artifacts in {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
