#!/usr/bin/env python
"""End-to-end smoke of the dispatcher + worker fleet, suitable for CI.

Boots ``repro serve --jobs 0`` (a pure dispatcher: it journals,
leases, and records, but never simulates) plus two ``repro serve
worker --connect`` subprocesses, submits a small 7-point matrix (six
single-GPU seeds plus one 4-GPU cluster point) from concurrent
clients, and asserts the fleet actually did the work:

* every submit resolves ok with stats;
* every job was executed by a fleet worker — the ``--jobs 0``
  dispatcher never simulates;
* the 4-GPU point keeps its machine shape end to end: ``n_gpus=4``
  in the result envelope, interlink traffic in its counters, and
  ``n_gpus=4`` on its database row;
* the journal drains to 7 DONE jobs, nothing pending/leased/failed;
* all 7 results landed in the shared content-addressed store;
* all 7 runs landed in the sqlite results database with
  ``source="serve"``.

Shutdown is part of the smoke: workers get SIGTERM and must exit 0,
then the dispatcher gets SIGTERM and must print its drain banner.

Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py [PORT]

Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PORT = int(sys.argv[1]) if len(sys.argv) > 1 else 18654
WORKERS = 2
SEEDS = range(2018, 2024)  # 6-point matrix: one workload, six seeds


def fail(message: str,
         procs: list[subprocess.Popen] | None = None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    for proc in procs or []:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if proc.stderr is not None:
            sys.stderr.write(proc.stderr.read())
    raise SystemExit(1)


def main() -> None:
    sys.path.insert(0, str(REPO / "src"))
    from repro.db import ResultsDB
    from repro.serve import JobStore, ServeClient
    from repro.serve.schema import validate_spec

    procs: list[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp:
        state_dir = Path(tmp) / "state"
        cache_dir = Path(tmp) / "cache"
        db_path = Path(tmp) / "repro.db"
        dispatcher = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(PORT), "--jobs", "0",
             "--state-dir", str(state_dir),
             "--cache-dir", str(cache_dir),
             "--db", str(db_path)],
            cwd=REPO, stderr=subprocess.PIPE, text=True)
        procs.append(dispatcher)
        try:
            client = ServeClient(port=PORT, timeout=30, retries=20,
                                 backoff_base=0.25)
            health = client.healthz()
            if health.get("status") != "serving":
                fail(f"unexpected health: {health}", procs)
            print(f"dispatcher on :{PORT} (jobs=0, pure dispatch)")

            for index in range(WORKERS):
                procs.append(subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "serve",
                     "worker", "--connect", f"127.0.0.1:{PORT}",
                     "--name", f"smoke-w{index}",
                     "--poll-interval", "0.05"],
                    cwd=REPO, stderr=subprocess.PIPE, text=True))
            print(f"{WORKERS} worker(s) connected")

            specs = [validate_spec({
                "workload": "HS", "preset": "tiny", "scale": 0.1,
                "seed": seed}) for seed in SEEDS]
            # plus one 4-GPU cluster point: the fleet must carry the
            # machine-shape override through worker, envelope, and db
            specs.append(validate_spec({
                "workload": "PCX", "preset": "tiny", "scale": 0.1,
                "seed": 2018, "overrides": {"n_gpus": 4}}))
            replies: list[dict | None] = [None] * len(specs)

            def submit(index: int) -> None:
                # one client per thread: the persistent connection
                # is a single caller's object
                own = ServeClient(port=PORT, timeout=120, retries=10)
                try:
                    replies[index] = own.submit(specs[index])
                finally:
                    own.close()

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(len(specs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            for index, reply in enumerate(replies):
                if reply is None or not reply.get("ok"):
                    fail(f"submit {index} failed: {reply}", procs)
                if "stats" not in reply:
                    fail(f"submit {index} has no stats: {reply}",
                         procs)
            print(f"{len(specs)} submits resolved with stats")

            cluster = replies[-1]
            if cluster.get("n_gpus") != 4:
                fail(f"cluster envelope lost its n_gpus stamp: "
                     f"{cluster.get('n_gpus')}", procs)
            interlink = cluster["stats"]["counters"].get(
                "interlink_bytes", 0)
            if interlink <= 0:
                fail("4-GPU point moved no interlink traffic", procs)
            print(f"4-GPU point: n_gpus=4 in the envelope, "
                  f"{interlink} interlink byte(s)")

            jobs = client.jobs()
            executed_by = {job.get("worker") for job in
                           jobs.get("jobs", []) if job.get("worker")}
            if not executed_by or not all(
                    name.startswith("smoke-w")
                    for name in executed_by):
                fail(f"jobs executed outside the worker fleet: "
                     f"{sorted(executed_by)}", procs)
            print(f"work executed by: {sorted(executed_by)}")

            # workers drain-exit on SIGTERM, then the dispatcher
            for proc in procs[1:]:
                proc.send_signal(signal.SIGTERM)
            for proc in procs[1:]:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    fail("worker did not exit within 30s", procs)
                if proc.returncode != 0:
                    fail(f"worker exited {proc.returncode}", procs)
            dispatcher.send_signal(signal.SIGTERM)
            try:
                dispatcher.wait(timeout=30)
            except subprocess.TimeoutExpired:
                fail("dispatcher did not exit within 30s", procs)
            log = dispatcher.stderr.read() if dispatcher.stderr \
                else ""
            if dispatcher.returncode != 0:
                fail(f"dispatcher exited "
                     f"{dispatcher.returncode}:\n{log}")
            if "drain complete" not in log:
                fail(f"no drain banner in log:\n{log}")

            store = JobStore(str(state_dir / "jobs.jsonl"))
            counts = store.counts()
            store.close()
            if counts["done"] != len(specs) or counts["pending"] \
                    or counts["leased"] or counts["failed"]:
                fail(f"journal not drained: {counts}")
            print(f"journal drained: {counts}")

            results = sorted(cache_dir.glob("*.json"))
            if len(results) != len(specs):
                fail(f"expected {len(specs)} results in the shared "
                     f"store, found {len(results)}")
            print(f"shared store holds {len(results)} result(s)")

            db = ResultsDB(str(db_path))
            rows = db.runs(source="serve")
            db.close()
            if len(rows) != len(specs):
                fail(f"expected {len(specs)} serve rows in "
                     f"{db_path}, found {len(rows)}")
            cluster_rows = [row for row in rows
                            if row.get("n_gpus") == 4]
            if len(cluster_rows) != 1 or \
                    cluster_rows[0]["workload"] != "PCX":
                fail(f"db lost the 4-GPU provenance: "
                     f"{[(r['workload'], r.get('n_gpus')) for r in rows]}")
            print(f"results db holds {len(rows)} serve run(s), "
                  f"1 at n_gpus=4")
            print("OK")
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()


if __name__ == "__main__":
    main()
