#!/usr/bin/env python
"""End-to-end smoke of the multi-GPU cluster path, suitable for CI.

Runs the ``multigpu`` experiment (a 2-GPU mini-matrix: G-TSC / TC /
MESI at 1 and 2 GPUs) through the real CLI into a fresh results
database, verifies every row carries ``n_gpus`` provenance, checks a
cluster point is bit-reproducible with the cache disabled, and
renders the HTML report — which CI uploads as an artifact.

Usage::

    PYTHONPATH=src python scripts/multigpu_smoke.py [OUT_DIR]

``OUT_DIR`` (default ``multigpu-smoke/``) receives ``repro.db`` and
``report.html``.  Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = Path(sys.argv[1] if len(sys.argv) > 1
           else "multigpu-smoke").resolve()
RUN_ARGS = ["--preset", "tiny", "--scale", "0.2", "--seed", "2018"]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def cli(*argv: str) -> str:
    run = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO, capture_output=True, text=True, timeout=900)
    if run.returncode != 0:
        fail(f"'{' '.join(argv[:3])}...' exited {run.returncode}:\n"
             f"{run.stdout}\n{run.stderr}")
    return run.stdout


def main() -> int:
    OUT.mkdir(parents=True, exist_ok=True)
    db = str(OUT / "repro.db")
    cache = str(OUT / "runcache")
    report = str(OUT / "report.html")

    # 1. the mini-matrix: one inter-GPU workload, three protocols,
    #    1 and 2 GPUs, recording rows as it runs
    table = cli("multigpu", "--gpus", "1", "2", "--workload", "PCX",
                *RUN_ARGS, "--db", db, "--cache-dir", cache)
    if "interlink_KB" not in table:
        fail(f"multigpu table is missing the interlink column:\n{table}")
    print("2-GPU mini-matrix: OK")

    # 2. every row carries machine-shape provenance, and both shapes
    #    actually landed
    with sqlite3.connect(db) as conn:
        counts = dict(conn.execute(
            "SELECT n_gpus, COUNT(*) FROM runs GROUP BY n_gpus"))
    if set(counts) != {1, 2}:
        fail(f"expected rows at 1 and 2 GPUs, got {counts}")
    if any(n is None for n in counts):
        fail(f"rows are missing n_gpus provenance: {counts}")
    print(f"n_gpus provenance ({counts}): OK")

    # 3. a cluster point is bit-reproducible even with the cache off
    runs = [json.loads(cli("simulate", "PCX", "--set", "n_gpus=2",
                           *RUN_ARGS, "--no-cache", "--no-db", "--json"))
            for _ in range(2)]
    if runs[0] != runs[1]:
        fail("2-GPU simulation is not bit-reproducible")
    stats = runs[0]["stats"]
    if runs[0].get("n_gpus") != 2:
        fail(f"envelope lost the n_gpus stamp: {runs[0].get('n_gpus')}")
    if stats["counters"].get("interlink_bytes", 0) <= 0:
        fail("cluster point moved no interlink traffic: "
             f"{stats['counters']}")
    print(f"bit-reproducible cluster point "
          f"({stats['cycles']} cycles): OK")

    # 4. the HTML report renders the cluster rows distinguishably
    cli("db", "report", "--db", db, "--output", report,
        "--title", "multigpu smoke")
    text = Path(report).read_text()
    for needle in ("multigpu smoke", "x2GPU", "<th>GPUs</th>"):
        if needle not in text:
            fail(f"report is missing {needle!r}")
    print(f"report rendered ({len(text)} bytes): OK")
    print(f"\nmultigpu smoke passed — artifacts in {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
