"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the classic ``setup.py develop`` path, which needs no wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'G-TSC: Timestamp Based Coherence for GPUs' "
        "(HPCA 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
