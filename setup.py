"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the classic ``setup.py develop`` path, which needs no wheel.

Optional compiled backend: set ``REPRO_BUILD_FAST=1`` to compile
``repro/sim/_fast.py`` (the fast simulation backend) with mypyc.
This is strictly opt-in — the default install needs no build
toolchain, and a missing or failed extension degrades silently to
the pure-Python engine (see ``repro/sim/backend.py``).
"""

import os

from setuptools import find_packages, setup

ext_modules = []
if os.environ.get("REPRO_BUILD_FAST", "").strip() not in ("", "0"):
    try:
        from mypyc.build import mypycify
        ext_modules = mypycify(
            ["src/repro/sim/_fast.py"],
            opt_level="3",
        )
    except ImportError:
        print("REPRO_BUILD_FAST set but mypyc is not installed; "
              "building pure-Python only")

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'G-TSC: Timestamp Based Coherence for GPUs' "
        "(HPCA 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    ext_modules=ext_modules,
)
