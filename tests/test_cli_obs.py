"""Tests for the observability-facing CLI verbs: trace and profile."""

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, validate_chrome_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

def test_trace_writes_a_valid_chrome_trace(tmp_path, capsys):
    out = str(tmp_path / "bfs.trace.json")
    code, stdout, _ = run_cli(capsys, "trace", "BFS", "--out", out)
    assert code == 0
    with open(out) as handle:
        trace = json.load(handle)
    assert validate_chrome_trace(trace) > 0
    assert "0 violations" in stdout
    assert "verified against timestamp order" in stdout


def test_trace_optional_jsonl_outputs(tmp_path, capsys):
    out = str(tmp_path / "t.json")
    jsonl = str(tmp_path / "t.jsonl")
    audit = str(tmp_path / "a.jsonl")
    code, stdout, _ = run_cli(capsys, "trace", "STN", "--out", out,
                              "--jsonl", jsonl, "--audit-jsonl", audit)
    assert code == 0
    events = Tracer.read_jsonl(jsonl)
    assert events
    with open(audit) as handle:
        records = [json.loads(line) for line in handle]
    assert all("wts" in rec for rec in records)


def test_trace_supports_other_protocols(tmp_path, capsys):
    out = str(tmp_path / "mesi.trace.json")
    code, stdout, _ = run_cli(capsys, "trace", "STN", "--out", out,
                              "--protocol", "mesi")
    assert code == 0
    # no G-TSC audit records under MESI, and no timestamp-log check
    assert "0 violations" in stdout
    assert "verified against timestamp order" not in stdout


def test_trace_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["trace", "NOPE"])


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------

def test_profile_prints_matrix_and_heartbeats(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code, stdout, stderr = run_cli(capsys, "profile", "BFS",
                                   "--preset", "tiny",
                                   "--scale", "0.3",
                                   "--cache-dir", cache)
    assert code == 0
    for label in ("BFS tc-sc", "BFS tc-rc", "BFS gtsc-sc",
                  "BFS gtsc-rc"):
        assert label in stdout
    assert "4 point(s)" in stdout
    assert "4 simulated" in stdout
    # heartbeats are forced on and go to stderr
    assert "[repro]" in stderr
    assert "4/4" in stderr


def test_profile_reports_cache_reuse(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    run_cli(capsys, "profile", "BFS", "--preset", "tiny",
            "--scale", "0.3", "--cache-dir", cache)
    code, stdout, _ = run_cli(capsys, "profile", "BFS",
                              "--preset", "tiny", "--scale", "0.3",
                              "--cache-dir", cache)
    assert code == 0
    assert "0 simulated" in stdout
    assert "4 from cache" in stdout


def test_profile_rejects_unknown_workload(capsys):
    code, _, err = run_cli(capsys, "profile", "XXX", "--no-cache")
    assert code == 2
    assert "unknown workloads" in err
