"""Property tests for the interconnect guarantees the protocols rely on.

The G-TSC and TC controllers match acknowledgments to pending requests
with plain FIFOs, which is sound only if the fabric preserves order
between a fixed (source, destination) pair.  These properties pin that
contract for both topologies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.noc import MeshNetwork, Network
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector


def port_network():
    engine = Engine()
    return engine, Network(engine, StatsCollector(), 8, 16)


def mesh_network(num_sms=6, num_banks=3):
    engine = Engine()
    return engine, MeshNetwork(engine, StatsCollector(), 2, 16,
                               num_sms, num_banks)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                max_size=30))
def test_port_network_is_fifo_per_pair(sizes):
    engine, noc = port_network()
    order = []
    for index, size in enumerate(sizes):
        noc.send(("sm", 0), ("l2", 0), size, "data",
                 lambda i=index: order.append(i))
    engine.run()
    assert order == list(range(len(sizes)))


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                max_size=30))
def test_mesh_network_is_fifo_per_pair(sizes):
    engine, noc = mesh_network()
    order = []
    for index, size in enumerate(sizes):
        noc.send(("sm", 0), ("l2", 2), size, "data",
                 lambda i=index: order.append(i))
    engine.run()
    assert order == list(range(len(sizes)))


@settings(max_examples=50)
@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=19),
       st.integers(min_value=0, max_value=7))
def test_mesh_route_length_is_manhattan_distance(num_sms, num_banks,
                                                 sm, bank):
    sm %= num_sms
    bank %= num_banks
    engine, noc = mesh_network(num_sms, num_banks)
    src, dst = ("sm", sm), ("l2", bank)
    sx, sy = noc.coords(noc.node_of(src))
    dx, dy = noc.coords(noc.node_of(dst))
    assert len(noc.route(src, dst)) == abs(sx - dx) + abs(sy - dy)


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 2),
                          st.integers(1, 160)),
                min_size=1, max_size=40))
def test_mesh_delivers_every_message_exactly_once(messages):
    engine, noc = mesh_network()
    delivered = []
    for index, (sm, bank, size) in enumerate(messages):
        noc.send(("sm", sm), ("l2", bank), size, "ctrl",
                 lambda i=index: delivered.append(i))
    engine.run()
    assert sorted(delivered) == list(range(len(messages)))


@settings(max_examples=30)
@given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
def test_port_network_conserves_bytes(sizes):
    engine = Engine()
    stats = StatsCollector()
    noc = Network(engine, stats, 4, 16)
    for size in sizes:
        noc.send("a", "b", size, "data", lambda: None)
    engine.run()
    assert stats.get("noc_bytes") == sum(sizes)
