"""Smoke tests: every example script must run and produce its story.

Run as subprocesses so the examples are exercised exactly as a user
would run them (fresh interpreter, argv handling, exit codes).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_has_at_least_three_scripts():
    scripts = list(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "cycles:" in out
    assert "consistent with timestamp order" in out


def test_protocol_shootout():
    out = run_example("protocol_shootout.py", "STN", "0.3")
    assert "G-TSC-RC" in out
    assert "baseline" in out


def test_litmus_tests():
    out = run_example("litmus_tests.py")
    assert "message passing" in out
    assert "store buffering" in out


def test_lease_sweep():
    out = run_example("lease_sweep.py", "DLP", "0.3")
    assert "logical lease sweep" in out
    assert "physical lease sweep" in out


def test_timestamp_inspector():
    out = run_example("timestamp_inspector.py")
    assert "global memory order" in out
    assert "LD X" in out and "ST Y" in out


def test_fuzz_coherence():
    out = run_example("fuzz_coherence.py", "6")
    assert "no violations" in out


def test_iterative_solver():
    out = run_example("iterative_solver.py", "3")
    assert "timestamp epochs consumed: 3" in out


def test_cta_reduction():
    out = run_example("cta_reduction.py")
    assert "barrier releases" in out
    assert "consistent with timestamp order" in out
