"""Tests for the process-pool experiment runner.

The contract is strict: a parallel batch must produce *bit-identical*
RunStats to the sequential path — same counters, same energy, same
histogram buckets — because the figures diff against golden numbers.
"""

import pytest

from repro.config import Consistency, Protocol
from repro.harness.parallel import ParallelRunner, _simulate_point
from repro.harness.runner import ExperimentRunner, point_of
from repro.stats.collector import RunStats

WORKLOADS = ["BFS", "STN"]


def make_sequential(**kwargs):
    return ExperimentRunner(preset="tiny", scale=0.3, seed=7, **kwargs)


def make_parallel(jobs, **kwargs):
    return ParallelRunner(jobs=jobs, preset="tiny", scale=0.3, seed=7,
                          **kwargs)


def test_worker_payload_rebuilds_to_runstats():
    point = point_of("BFS", Protocol.GTSC, Consistency.RC)
    payload = _simulate_point("tiny", 0.3, 7, (), point)
    stats = RunStats.from_dict(payload)
    assert stats.cycles > 0
    assert stats.counter("warps_retired") > 0


def test_parallel_matrix_is_bit_identical_to_sequential():
    sequential = make_sequential()
    parallel = make_parallel(jobs=2)
    for workload in WORKLOADS:
        expected = sequential.matrix(workload)
        actual = parallel.matrix(workload)
        assert set(actual) == set(expected)
        for bar in expected:
            # dataclass equality covers cycles, every counter, energy
            # and full histogram contents
            assert actual[bar] == expected[bar], (workload, bar)


def test_jobs_1_runs_in_process():
    runner = make_parallel(jobs=1)
    stats = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    reference = make_sequential().run("BFS", Protocol.GTSC,
                                      Consistency.RC)
    assert stats == reference
    assert runner.simulations_run == 1


def test_prefetch_counts_simulations_and_fills_memo():
    runner = make_parallel(jobs=2)
    points = ExperimentRunner.matrix_points(WORKLOADS)
    runner.prefetch(points)
    assert runner.simulations_run == len(points)
    # every point is now a memo hit: no further simulations
    runner.prefetch(points)
    for workload in WORKLOADS:
        runner.matrix(workload)
    assert runner.simulations_run == len(points)


def test_parallel_runner_shares_the_disk_cache(tmp_path):
    cache_dir = str(tmp_path / "runcache")
    warmup = make_sequential(cache_dir=cache_dir)
    expected = warmup.matrix("BFS")
    assert warmup.simulations_run == 4

    warm = make_parallel(jobs=2, cache_dir=cache_dir)
    actual = warm.matrix("BFS")
    assert warm.simulations_run == 0        # all four came from disk
    for bar in expected:
        assert actual[bar] == expected[bar]


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        make_parallel(jobs=0)


def test_sweep_through_parallel_runner_matches_sequential():
    from repro.harness.sweeps import sweep

    def run_sweep(runner):
        return sweep(runner, workloads=["BFS"], parameter="lease",
                     values=[8, 16], protocol=Protocol.GTSC,
                     consistency=Consistency.RC)

    expected = run_sweep(make_sequential())
    actual = run_sweep(make_parallel(jobs=2))
    assert actual.data == expected.data


def test_jobs_clamped_to_available_cores():
    import os

    cores = os.cpu_count() or 1
    with pytest.warns(RuntimeWarning, match="clamping"):
        runner = make_parallel(jobs=cores + 3)
    assert runner.jobs == cores


def test_jobs_within_cores_does_not_warn(recwarn):
    make_parallel(jobs=1)
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]


def test_clamped_runner_still_matches_sequential():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        clamped = make_parallel(jobs=64)
    expected = make_sequential().run("BFS", Protocol.GTSC,
                                     Consistency.RC)
    assert clamped.run("BFS", Protocol.GTSC,
                       Consistency.RC) == expected


def test_progress_heartbeats_go_to_stderr(capsys):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        runner = make_parallel(jobs=2, progress=True)
    runner.prefetch(ExperimentRunner.matrix_points(["BFS"]))
    err = capsys.readouterr().err
    assert "[repro]" in err
    assert "BFS gtsc-rc" in err


def test_progress_off_is_silent(capsys):
    runner = make_sequential(progress=False)
    runner.prefetch(ExperimentRunner.matrix_points(["BFS"]))
    assert capsys.readouterr().err == ""


def test_default_jobs_is_cpu_count_without_warning(recwarn):
    import os

    runner = ParallelRunner(preset="tiny", scale=0.3, seed=7)
    assert runner.jobs == (os.cpu_count() or 1)
    # defaulting to the machine must not trip the clamp warning
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]


def test_workers_share_the_trace_cache_dir(tmp_path):
    cache_dir = str(tmp_path / "runcache")
    runner = make_parallel(jobs=1, cache_dir=cache_dir)
    runner.run("BFS", Protocol.GTSC, Consistency.RC)
    import os

    traces = os.path.join(cache_dir, "traces")
    assert runner.trace_cache_dir == traces
    assert os.listdir(traces)             # compiled trace persisted
