"""Tests for machine wiring and message routing."""

import pytest

from repro.config import GPUConfig, NocTopology, Protocol
from repro.gpu.machine import Machine
from repro.mem.noc import MeshNetwork, Network
from repro.protocols.base import Message
from repro.protocols.factory import build_protocol


class Probe(Message):
    kind = "ctrl"
    __slots__ = ()


class Recorder:
    def __init__(self):
        self.received = []

    def receive(self, msg):
        self.received.append(msg)


def make_machine(**overrides):
    machine = Machine(GPUConfig.tiny(**overrides))
    build_protocol(machine)
    return machine


def test_machine_builds_one_l1_per_sm_and_one_bank_per_partition():
    machine = make_machine()
    assert len(machine.l1s) == machine.config.num_sms
    assert len(machine.l2_banks) == machine.config.num_l2_banks
    assert len(machine.drams) == machine.config.num_l2_banks


def test_requests_route_to_home_bank():
    machine = make_machine(num_l2_banks=1)
    recorder = Recorder()
    machine.l2_banks[0] = recorder
    machine.send_to_bank(0, Probe(addr=5, sm=0))
    machine.engine.run()
    assert len(recorder.received) == 1
    assert recorder.received[0].addr == 5


def test_bank_interleaving_splits_traffic():
    config = GPUConfig.small()  # 2 banks
    machine = Machine(config)
    build_protocol(machine)
    recorders = [Recorder(), Recorder()]
    machine.l2_banks = recorders
    for addr in range(8):
        machine.send_to_bank(0, Probe(addr=addr, sm=0))
    machine.engine.run()
    assert len(recorders[0].received) == 4
    assert len(recorders[1].received) == 4
    assert all(m.addr % 2 == 0 for m in recorders[0].received)


def test_responses_route_to_requesting_sm():
    machine = make_machine()
    recorder = Recorder()
    machine.l1s[1] = recorder
    machine.send_to_sm(0, 1, Probe(addr=7, sm=1))
    machine.engine.run()
    assert len(recorder.received) == 1


def test_port_topology_by_default():
    machine = make_machine()
    assert isinstance(machine.noc, Network)


def test_mesh_topology_when_configured():
    machine = make_machine(noc_topology=NocTopology.MESH)
    assert isinstance(machine.noc, MeshNetwork)


def test_every_protocol_builds():
    for protocol in Protocol:
        machine = make_machine(protocol=protocol)
        assert machine.l1s and machine.l2_banks


def test_memory_image_starts_empty():
    machine = make_machine()
    assert machine.memory_image == {}


def test_message_repr_and_default_size():
    msg = Probe(addr=0x40, sm=2)
    config = GPUConfig.tiny()
    assert msg.size(config) == config.noc_header_bytes
    assert "Probe" in repr(msg)
