"""Tests for kernel trace (de)serialization."""

import json

import pytest

from repro.config import GPUConfig, Protocol
from repro.trace.instr import Kernel, atomic, compute, fence, load, store
from repro.trace.serialize import (
    instr_from_obj,
    instr_to_obj,
    kernel_from_dict,
    kernel_to_dict,
    load_kernel,
    save_kernel,
)
from repro.workloads import ALL_NAMES, build_workload

from tests.conftest import run_gpu


def sample_kernel():
    return Kernel("sample", [
        [load(0, 1), compute(4), store(2), fence()],
        [atomic(5), load(3), fence()],
    ])


def test_instr_round_trip():
    for instr in (load(1, 2, 3), store(9), compute(7), fence(),
                  atomic(4)):
        assert instr_from_obj(instr_to_obj(instr)) == instr


def test_kernel_round_trip():
    kernel = sample_kernel()
    rebuilt = kernel_from_dict(kernel_to_dict(kernel))
    assert rebuilt.name == kernel.name
    assert rebuilt.warp_traces == kernel.warp_traces


def test_file_round_trip(tmp_path):
    path = tmp_path / "kernel.json"
    kernel = sample_kernel()
    save_kernel(kernel, path)
    rebuilt = load_kernel(path)
    assert rebuilt.warp_traces == kernel.warp_traces
    # file is honest JSON
    data = json.loads(path.read_text())
    assert data["name"] == "sample"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_workload_round_trips(name):
    kernel = build_workload(name, scale=0.15, seed=4)
    rebuilt = kernel_from_dict(kernel_to_dict(kernel))
    assert rebuilt.warp_traces == kernel.warp_traces


def test_replayed_kernel_gives_identical_stats(tmp_path):
    path = tmp_path / "trace.json"
    kernel = build_workload("STN", scale=0.15, seed=2)
    save_kernel(kernel, path)
    rebuilt = load_kernel(path)
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    _, original = run_gpu(config, kernel)
    _, replayed = run_gpu(config, rebuilt)
    assert original.cycles == replayed.cycles
    assert original.counters == replayed.counters


def test_malformed_instruction_rejected():
    for bad in ([], ["jump", [1]], ["load"], "load", ["compute"],
                ["load", [1], 2]):
        with pytest.raises(ValueError):
            instr_from_obj(bad)


def test_unsupported_format_version_rejected():
    data = kernel_to_dict(sample_kernel())
    data["format"] = 99
    with pytest.raises(ValueError, match="version"):
        kernel_from_dict(data)


def test_deserialized_kernel_is_validated():
    data = {"format": 1, "name": "bad", "warps": [[]]}
    with pytest.raises(ValueError):
        kernel_from_dict(data)
