"""Tests for statistics collection and run summaries."""

import pytest

from repro.stats.collector import RunStats, StatsCollector


def test_collector_counts():
    stats = StatsCollector()
    stats.add("x")
    stats.add("x", 4)
    assert stats.get("x") == 5
    assert stats.get("missing") == 0


def test_snapshot_is_a_copy():
    stats = StatsCollector()
    stats.add("x")
    snap = stats.snapshot()
    stats.add("x")
    assert snap["x"] == 1


def make_stats(cycles=100, **counters):
    return RunStats(config_desc="test", cycles=cycles, counters=counters,
                    energy={"l1": 1.0, "noc": 2.0})


def test_runstats_counter_access():
    stats = make_stats(l1_access=10, l1_hit=4)
    assert stats.counter("l1_access") == 10
    assert stats.counter("nope") == 0
    assert stats.l1_hit_rate == pytest.approx(0.4)


def test_hit_rate_zero_when_no_accesses():
    assert make_stats().l1_hit_rate == 0.0


def test_total_energy_sums_components():
    assert make_stats().total_energy == pytest.approx(3.0)


def test_speedup_over_baseline():
    fast = make_stats(cycles=50)
    slow = make_stats(cycles=100)
    assert fast.speedup_over(slow) == pytest.approx(2.0)
    assert slow.speedup_over(fast) == pytest.approx(0.5)


def test_speedup_rejects_zero_cycles():
    broken = make_stats(cycles=0)
    with pytest.raises(ValueError):
        broken.speedup_over(make_stats())


def test_summary_mentions_key_metrics():
    text = make_stats(noc_bytes=123, stall_mem_cycles=7).summary()
    assert "cycles" in text
    assert "123" in text
    assert "energy" in text


def test_to_dict_is_json_ready():
    import json
    stats = make_stats(l1_access=3)
    data = stats.to_dict()
    json.dumps(data)  # must not raise
    assert data["cycles"] == 100
    assert data["counters"]["l1_access"] == 3
    assert data["total_energy_j"] == pytest.approx(3.0)
    assert data["histograms"] == {}
