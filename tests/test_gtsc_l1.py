"""Controller-level tests for the G-TSC L1 (Figures 1a, 2, 3, 7, 8).

These drive a real machine (L1 + NoC + L2 + DRAM) through the L1's
SM-facing interface with hand-made warps, checking each arm of the
load/store flowcharts and the Section V mechanisms.
"""

import pytest

from repro.config import (
    CombiningPolicy,
    GPUConfig,
    Protocol,
    VisibilityPolicy,
)
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol


def make_machine(**overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


def make_warp(uid=0):
    return Warp(uid, [])


def complete_tracker():
    done = []
    return done, lambda: done.append(True)


def test_cold_miss_fills_and_advances_warp_ts():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    assert l1.load(warp, 0, cb) is True
    machine.engine.run()
    assert done == [True]
    assert machine.stats.get("l1_miss") == 1
    assert machine.stats.get("dram_reads") == 1
    line = l1.cache.lookup(0)
    assert line is not None
    # DRAM fill: wts = mem_ts = 1, rts = 1 + lease
    assert line.wts == 1
    assert line.rts == 1 + machine.config.lease
    assert warp.ts == 1


def test_second_access_hits_in_l1():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    l1.load(warp, 0, cb)
    machine.engine.run()
    assert done == [True, True]
    assert machine.stats.get("l1_hit") == 1
    assert machine.stats.get("dram_reads") == 1  # no refetch


def test_expired_timestamp_triggers_renewal_not_data(tiny_config=None):
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    # push the warp's logical clock beyond the line's lease
    warp.ts = l1.cache.lookup(0).rts + 5
    l1.load(warp, 0, cb)
    machine.engine.run()
    assert done == [True, True]
    assert machine.stats.get("l1_expired_miss") == 1
    # the L2 answered with a data-less renewal (wts matched)
    assert machine.stats.get("l2_renewals") == 1
    assert l1.cache.lookup(0).rts >= warp.ts


def test_renewal_extends_lease_to_cover_warp():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    warp.ts = 40
    l1.load(warp, 0, cb)
    machine.engine.run()
    line = l1.cache.lookup(0)
    assert line.rts >= 40
    assert warp.ts == 40  # a renewal does not advance the clock


def test_store_gets_future_timestamp_and_unlocks():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    old_rts = l1.cache.lookup(0).rts
    l1.store(warp, 0, cb)
    assert l1.cache.lookup(0).pending_stores == 1
    machine.engine.run()
    assert done == [True, True]
    line = l1.cache.lookup(0)
    assert line.pending_stores == 0
    # Figure 5: wts = max(rts + 1, warp_ts) — scheduled in the future
    assert line.wts == old_rts + 1
    assert line.rts == line.wts + machine.config.lease
    # Figure 7b: the warp's clock jumps to the store's timestamp
    assert warp.ts == line.wts


def test_store_to_uncached_line_writes_through_without_allocation():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    done, cb = complete_tracker()
    l1.store(warp, 0, cb)
    machine.engine.run()
    assert done == [True]
    assert l1.cache.lookup(0) is None  # no write-allocate
    assert warp.ts > 1                 # clock advanced to the store's wts


def test_delay_policy_blocks_other_warps_until_ack():
    machine = make_machine(visibility=VisibilityPolicy.DELAY)
    l1 = machine.l1s[0]
    writer, reader = make_warp(0), make_warp(1)
    done_w, cb_w = complete_tracker()
    done_r, cb_r = complete_tracker()
    l1.load(writer, 0, cb_w)
    machine.engine.run()
    l1.store(writer, 0, cb_w)
    # while the store is pending, another warp's load is delayed
    assert l1.load(reader, 0, cb_r) is True
    assert machine.stats.get("l1_locked_wait") == 1
    assert done_r == []
    machine.engine.run()
    assert done_r == [True]
    # the reader saw the new data and its clock reflects the store
    assert reader.ts >= writer.ts


def test_old_copy_policy_lets_other_warps_read_old_version():
    machine = make_machine(visibility=VisibilityPolicy.OLD_COPY)
    l1 = machine.l1s[0]
    writer, reader = make_warp(0), make_warp(1)
    done_w, cb_w = complete_tracker()
    done_r, cb_r = complete_tracker()
    l1.load(writer, 0, cb_w)
    machine.engine.run()
    old_version = l1.cache.lookup(0).version
    l1.store(writer, 0, cb_w)
    l1.load(reader, 0, cb_r)
    # the read hits immediately on the old copy
    machine.engine.run(until=machine.engine.now + 2)
    assert done_r == [True]
    load_rec = machine.log.loads[-1]
    assert load_rec.version == old_version
    machine.engine.run()
    assert done_w == [True, True]


def test_old_copy_policy_still_blocks_the_writer_itself():
    machine = make_machine(visibility=VisibilityPolicy.OLD_COPY)
    l1 = machine.l1s[0]
    writer = make_warp(0)
    done, cb = complete_tracker()
    l1.load(writer, 0, cb)
    machine.engine.run()
    l1.store(writer, 0, cb)
    done_rd, cb_rd = complete_tracker()
    l1.load(writer, 0, cb_rd)
    assert machine.stats.get("l1_locked_wait") == 1
    machine.engine.run()
    # once the ack arrives, the writer reads its own new value
    assert done_rd == [True]
    assert machine.log.loads[-1].version == machine.log.stores[-1].version


def test_mshr_combining_sends_one_request():
    machine = make_machine(combining=CombiningPolicy.MSHR)
    l1 = machine.l1s[0]
    w0, w1, w2 = make_warp(0), make_warp(1), make_warp(2)
    for warp in (w0, w1, w2):
        l1.load(warp, 0, lambda: None)
    machine.engine.run()
    # one BusRd for three waiters
    assert machine.stats.get("l2_access") == 1


def test_forward_all_sends_one_request_per_warp():
    machine = make_machine(combining=CombiningPolicy.FORWARD_ALL)
    l1 = machine.l1s[0]
    for uid in range(3):
        l1.load(make_warp(uid), 0, lambda: None)
    machine.engine.run()
    assert machine.stats.get("l2_access") == 3


def test_straggler_waiter_triggers_renewal(  ):
    """Figure 11: a combined waiter beyond the granted lease renews."""
    machine = make_machine(combining=CombiningPolicy.MSHR)
    l1 = machine.l1s[0]
    near, far = make_warp(0), make_warp(1)
    far.ts = 500  # way beyond the lease the first fill will grant
    done_near, cb_near = complete_tracker()
    done_far, cb_far = complete_tracker()
    l1.load(near, 0, cb_near)
    l1.load(far, 0, cb_far)
    machine.engine.run()
    assert done_near == [True]
    assert done_far == [True]
    assert machine.stats.get("l1_renewals") >= 1
    assert l1.cache.lookup(0).rts >= 500


def test_mshr_full_rejects_and_counts():
    machine = make_machine()
    l1 = machine.l1s[0]
    capacity = machine.config.l1_mshr_entries
    for addr in range(capacity):
        assert l1.load(make_warp(addr), addr, lambda: None) is True
    assert l1.load(make_warp(99), capacity + 1, lambda: None) is False
    assert machine.stats.get("l1_mshr_stall") == 1
    machine.engine.run()


def test_flush_clears_lines_and_warp_clocks():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    l1.store(warp, 0, lambda: None)
    machine.engine.run()
    assert warp.ts > 1
    l1.flush()
    assert l1.cache.occupancy() == 0
    assert warp.ts == 1


def test_hit_requires_lease_to_cover_warp_ts():
    """The two-condition hit rule of Figure 2."""
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = make_warp()
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    line = l1.cache.lookup(0)
    warp.ts = line.rts  # boundary: exactly at the lease end still hits
    hits_before = machine.stats.get("l1_hit")
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    assert machine.stats.get("l1_hit") == hits_before + 1
