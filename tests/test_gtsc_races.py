"""Edge-case races in the G-TSC controllers.

Each test manufactures one of the rare interleavings the controllers
handle explicitly: renewals arriving after the line was evicted,
responses crossing a timestamp reset, fills finding every way pinned
by pending stores, and stragglers under the forward-all policy.
"""

from repro.config import (
    CombiningPolicy,
    Consistency,
    GPUConfig,
    Protocol,
)
from repro.core.messages import BusFill, BusRnw, BusWrAck
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol

from tests.conftest import random_kernel, run_and_check


def make_machine(**overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


def tracker():
    done = []
    return done, lambda: done.append(True)


def fill_line(machine, l1, warp, addr):
    l1.load(warp, addr, lambda: None)
    machine.engine.run()
    return l1.cache.lookup(addr)


# ---------------------------------------------------------------------------
# renewal arrives after the line was evicted
# ---------------------------------------------------------------------------

def test_renewal_for_evicted_line_refetches_data():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    fill_line(machine, l1, warp, 0)
    # force an expired-lease renewal request, but evict the line while
    # the renewal response is in flight
    warp.ts = 500
    done, cb = tracker()
    l1.load(warp, 0, cb)
    l1.cache.invalidate(0)          # the in-flight race
    machine.engine.run()
    assert done == [True]           # a full refetch rescued the load
    line = l1.cache.lookup(0)
    assert line is not None and line.rts >= 500


def test_direct_renewal_injection_with_no_line_is_safe():
    """A BusRnw for an absent line with no waiters must be a no-op."""
    machine = make_machine()
    l1 = machine.l1s[0]
    l1.receive(BusRnw(3, 0, rts=50, epoch=0))
    machine.engine.run()
    assert l1.cache.lookup(3) is None


# ---------------------------------------------------------------------------
# responses crossing a timestamp reset
# ---------------------------------------------------------------------------

def test_stale_epoch_fill_triggers_refetch():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    # the domain resets while the fill is in flight; the L1 hears of
    # epoch 1 from another response first
    machine.timestamp_domain.overflow_reset()
    l1._epoch_reset(machine.timestamp_domain.epoch)
    machine.engine.run()
    # the stale fill forced a refetch, which completed the load
    assert done == [True]


def test_stale_epoch_write_ack_still_completes_store():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    fill_line(machine, l1, warp, 0)
    done, cb = tracker()
    l1.store(warp, 0, cb)
    machine.timestamp_domain.overflow_reset()
    l1._epoch_reset(machine.timestamp_domain.epoch)
    machine.engine.run()
    assert done == [True]
    # the warp's clock was reset and not corrupted by the stale ack
    assert warp.ts <= machine.config.lease * \
        machine.config.lease_max_factor


def test_lines_installed_after_reset_carry_new_epoch():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    machine.timestamp_domain.overflow_reset()
    l1._epoch_reset(machine.timestamp_domain.epoch)
    fill_line(machine, l1, warp, 0)
    assert l1.cache.lookup(0).epoch == 1


# ---------------------------------------------------------------------------
# fill with every way pinned by pending stores
# ---------------------------------------------------------------------------

def test_fill_bypasses_cache_when_all_ways_pinned():
    machine = make_machine()
    l1 = machine.l1s[0]
    config = machine.config
    warp = Warp(0, [])
    # pin both ways of set 0 with pending stores; the fill under test
    # is injected directly so the pins are still held when it lands
    set_stride = config.l1_sets
    pinned = [0, set_stride]
    for addr in pinned:
        fill_line(machine, l1, warp, addr)
    for addr in pinned:
        l1.store(warp, addr, lambda: None)
        assert l1.cache.lookup(addr).pending_stores == 1

    from repro.protocols.base import LoadWaiter
    done, cb = tracker()
    other = Warp(1, [])
    target = 2 * set_stride
    entry = l1.mshr.allocate(target)
    entry.waiters.append(LoadWaiter(other, cb, machine.engine.now))
    l1.receive(BusFill(target, 0, wts=1, rts=1 + config.lease,
                       version=0, epoch=0))
    machine.engine.step()   # fire the completion callback
    assert done == [True]
    # the fill was served without displacing a pinned line or caching
    assert l1.cache.lookup(target) is None
    for addr in pinned:
        assert l1.cache.lookup(addr) is not None
    machine.engine.run()    # drain the outstanding store acks


# ---------------------------------------------------------------------------
# forward-all interactions
# ---------------------------------------------------------------------------

def test_forward_all_straggler_still_completes():
    machine = make_machine(combining=CombiningPolicy.FORWARD_ALL)
    l1 = machine.l1s[0]
    near, far = Warp(0, []), Warp(1, [])
    far.ts = 400
    done_near, cb_near = tracker()
    done_far, cb_far = tracker()
    l1.load(near, 0, cb_near)
    l1.load(far, 0, cb_far)
    machine.engine.run()
    assert done_near == [True] and done_far == [True]


def test_forward_all_coherent_under_stress():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC,
                            combining=CombiningPolicy.FORWARD_ALL)
    run_and_check(config, random_kernel(3, warps=4, length=60, lines=4))


# ---------------------------------------------------------------------------
# acks arriving out of issue order (L2 MSHR-retry reordering)
# ---------------------------------------------------------------------------

def test_crossed_write_acks_pair_by_version():
    """Regression: the L2's MSHR-full retry path re-enters the bank
    pipeline on a timer, so two stores from one SM to one line can be
    performed (and acknowledged) out of issue order.  The acks must be
    matched to their own pending stores by version — FIFO popping would
    cross the warps' timestamp updates and tear the records."""
    machine = make_machine()
    l1 = machine.l1s[0]
    warp_a, warp_b = Warp(0, []), Warp(1, [])
    line = fill_line(machine, l1, warp_a, 0)
    line.pending_stores = 2
    done_a, cb_a = tracker()
    done_b, cb_b = tracker()
    from repro.protocols.base import PendingStore
    from collections import deque
    l1._pending_stores[0] = deque([
        PendingStore(warp_a, 0, 1, cb_a, 0),
        PendingStore(warp_b, 0, 2, cb_b, 0),
    ])
    # version 2 was performed first at the L2 (lower wts), version 1
    # after it — acks arrive in performance order, not issue order
    l1.receive(BusWrAck(0, 0, wts=30, rts=40, epoch=0, version=2))
    l1.receive(BusWrAck(0, 0, wts=50, rts=60, epoch=0, version=1))
    machine.engine.run()
    assert done_a == [True] and done_b == [True]
    # each warp advanced to its *own* store's timestamp
    assert warp_b.ts == 30 and warp_a.ts == 50
    refreshed = l1.cache.lookup(0)
    assert refreshed.version == 1       # the logically newest write
    assert refreshed.pending_stores == 0
    by_version = {r.version: r for r in machine.log.stores}
    assert by_version[1].warp_uid == 0 and by_version[1].logical_ts == 50
    assert by_version[2].warp_uid == 1 and by_version[2].logical_ts == 30


# ---------------------------------------------------------------------------
# write acks racing newer fills
# ---------------------------------------------------------------------------

def test_old_write_ack_does_not_clobber_newer_line_state():
    """An ack whose wts is below the line's current wts (the line was
    refreshed by a newer fill meanwhile) must not regress it."""
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    line = fill_line(machine, l1, warp, 0)
    line.wts, line.rts, line.version = 90, 120, 7  # pretend newer state
    line.pending_stores = 1
    from repro.protocols.base import PendingStore
    from collections import deque
    l1._pending_stores[0] = deque([PendingStore(warp, 0, 3,
                                                lambda: None, 0)])
    l1.receive(BusWrAck(0, 0, wts=50, rts=60, epoch=0))
    machine.engine.run()
    refreshed = l1.cache.lookup(0)
    assert refreshed.wts == 90          # not regressed
    assert refreshed.version == 7
    assert refreshed.pending_stores == 0
