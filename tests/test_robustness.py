"""Robustness under extreme configurations.

Starved structural resources (single-entry MSHRs, 1-byte/cycle NoC
ports, single-line caches) must degrade performance, never correctness
or forward progress.
"""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU

from tests.conftest import random_kernel, run_and_check


def test_single_entry_l1_mshr_makes_progress():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, l1_mshr_entries=1)
    gpu, stats = run_and_check(config, random_kernel(1, warps=4,
                                                     length=40, lines=12))
    assert stats.counter("l1_mshr_stall") > 0  # pressure was real


def test_single_entry_l2_mshr_makes_progress():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, l2_mshr_entries=1)
    run_and_check(config, random_kernel(2, warps=4, length=40, lines=24))


def test_one_byte_noc_port_is_slow_but_correct():
    fast = GPUConfig.tiny(protocol=Protocol.GTSC)
    slow = fast.with_changes(noc_port_bandwidth=1)
    kernel = random_kernel(3, warps=4, length=30)
    _, fast_stats = run_and_check(fast, kernel)
    _, slow_stats = run_and_check(slow, kernel)
    assert slow_stats.cycles > fast_stats.cycles * 2


def test_minimal_l1_thrashes_but_stays_coherent():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, l1_size=256,
                            l1_assoc=1)
    gpu, stats = run_and_check(config, random_kernel(4, warps=4,
                                                     length=50, lines=16))
    assert stats.l1_hit_rate < 0.9


def test_minimal_l2_with_heavy_eviction():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            l2_bank_size=512, l2_assoc=1)
    gpu, stats = run_and_check(config, random_kernel(5, warps=4,
                                                     length=50, lines=32))
    assert stats.counter("l2_evictions") > 0
    assert stats.counter("dram_reads") > stats.counter("l2_evictions")


def test_tiny_lease_floods_renewals_but_is_correct():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, lease=1)
    run_and_check(config, random_kernel(6, warps=4, length=50))


def test_slow_dram_backpressure():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, dram_latency=500,
                            dram_bandwidth=1)
    gpu, stats = run_and_check(config, random_kernel(7, warps=4,
                                                     length=25, lines=32),
                               max_events=4_000_000)
    assert stats.counter("stall_mem_cycles") > 0


@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC,
                                      Protocol.DISABLED])
def test_every_protocol_survives_starved_machine(protocol):
    config = GPUConfig.tiny(protocol=protocol,
                            consistency=Consistency.SC,
                            l1_mshr_entries=1, l2_mshr_entries=1,
                            noc_port_bandwidth=4)
    kernel = random_kernel(8, warps=4, length=30, lines=10)
    stats = GPU(config).run(kernel, max_events=4_000_000)
    assert stats.counter("warps_retired") == kernel.num_warps


def test_many_warps_per_sm_with_tiny_cache():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, max_warps_per_sm=16)
    kernel = random_kernel(9, warps=32, length=20, lines=8)
    gpu, stats = run_and_check(config, kernel)
    assert stats.counter("warps_retired") == 32


def test_single_sm_machine():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, num_sms=1)
    run_and_check(config, random_kernel(10, warps=4, length=40))


def test_single_bank_single_partition():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, num_l2_banks=1)
    run_and_check(config, random_kernel(11, warps=4, length=40, lines=20))
