"""The calendar/bucket queue is observably identical to a pure heap.

The batch-advancing engine drains whole cycles from per-cycle FIFO
buckets and only sends far-future events through the heap.  A tiny
``horizon`` forces almost every event through the heap-and-migrate
path, so running the same schedule under ``horizon=2`` and the default
horizon compares the two dispatch mechanisms directly: same firing
order (including same-cycle FIFO ties), same clock, same stats — for
random schedules and for full simulations of all four protocols.

Also covers the bucket-specific bookkeeping: ``cancel`` of a bucketed
entry is an O(1) slot clear reclaimed for free at drain time, and
bounded ``run(until=...)`` keeps the stale-entry accounting exact so
``compact()`` can never drift ``_stale`` negative.
"""

import json
import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.sim.engine import DEFAULT_HORIZON, Engine
from repro.workloads import build_workload

HORIZONS = (2, 8, 64, DEFAULT_HORIZON)


def _random_schedule(engine, seed, events=400, cancel_every=7):
    """Drive ``engine`` with a seeded random load, logging every fire.

    Callbacks reschedule follow-ups (including zero-delay same-cycle
    appends and far-future jumps past any small horizon) and a
    deterministic subset of handles is cancelled mid-run, so the log
    exercises bucket hits, heap deferrals, migration and lazy cancel.
    """
    rng = random.Random(seed)
    log = []
    handles = []

    def fire(tag, depth):
        log.append((engine.now, tag))
        if depth > 0:
            for _ in range(rng.randrange(3)):
                delay = rng.choice((0, 1, 2, 3, 50, 700, 1500))
                handles.append(engine.schedule(
                    delay, fire, f"{tag}.{delay}", depth - 1))

    for index in range(events):
        delay = rng.randrange(2000)
        handles.append(engine.schedule(delay, fire, f"e{index}", 2))
        if index % cancel_every == 0 and handles:
            engine.cancel(handles[rng.randrange(len(handles))])
    engine.run()
    return log


@pytest.mark.parametrize("seed", range(5))
def test_firing_order_is_horizon_invariant(seed):
    """Property: bucket drain == heap order for random schedules."""
    reference = _random_schedule(Engine(), seed)
    assert reference, "schedule produced no events"
    for horizon in HORIZONS:
        log = _random_schedule(Engine(horizon=horizon), seed)
        assert log == reference, (
            f"horizon={horizon} changed the firing order for seed {seed}"
        )


@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC,
                                      Protocol.MESI, Protocol.DISABLED])
def test_protocol_runs_are_horizon_invariant(protocol, monkeypatch):
    """All four protocols simulate bit-identically under horizon=2.

    ``horizon=2`` routes essentially every event through the heap and
    the migrate-on-window-slide path — the closest living relative of
    the old pure-heap engine — so RunStats equality here is the
    same-cycle FIFO property end to end.
    """
    import repro.gpu.machine as machine_mod

    def simulate():
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=Consistency.RC)
        kernel = build_workload("BFS", scale=0.3, seed=2018)
        return GPU(config, record_accesses=False).run(kernel).to_dict()

    reference = simulate()
    # the machine resolves its engine through the backend dispatch,
    # so shrink the horizon behind that seam
    monkeypatch.setattr(machine_mod, "engine_class",
                        lambda: (lambda: Engine(horizon=2)))
    assert json.dumps(simulate(), sort_keys=True) == \
        json.dumps(reference, sort_keys=True)


def test_cancel_of_bucketed_event_is_slot_clear():
    """Cancelling an in-window event nulls the slot, nothing else."""
    engine = Engine()
    fired = []
    keep = engine.schedule(5, fired.append, "keep")
    doomed = engine.schedule(5, fired.append, "doomed")
    bucket = engine._buckets[5 & engine._mask]
    assert doomed in bucket
    engine.cancel(doomed)
    # O(1) lazy cancel: the entry stays in its bucket with the
    # callback slot cleared; no list surgery, no heap traffic
    assert doomed in bucket
    assert doomed[2] is None
    assert Engine.cancelled(doomed)
    assert engine._stale_buckets == 1
    assert engine._stale == 0
    # cancelling again is a no-op (no double counting)
    engine.cancel(doomed)
    assert engine._stale_buckets == 1
    engine.run()
    assert fired == ["keep"]
    assert keep[2] is None
    # the drain reclaimed the stale slot
    assert engine._stale_buckets == 0
    assert engine.stale_reclaimed == 1
    assert engine.pending() == 0


def test_bounded_run_keeps_stale_accounting_exact():
    """Regression: run(until=...) must not leak drained stale entries.

    The bounded path skips over cancelled entries while draining; if
    it failed to book them, a later ``compact()`` would drift
    ``_stale`` negative.  Interleave bounded runs with cancellations
    and verify the books balance against a physical count of the
    queue at every step.
    """
    engine = Engine(horizon=8)          # small window: heap traffic too
    rng = random.Random(2018)
    handles = []

    def live_entries():
        queued = sum(1 for bucket in engine._buckets for entry in bucket
                     if entry[2] is not None)
        return queued + sum(1 for entry in engine._heap
                            if entry[2] is not None)

    def fire():
        if rng.randrange(3):
            handles.append(engine.schedule(rng.randrange(40), fire))

    for _ in range(200):
        handles.append(engine.schedule(rng.randrange(120), fire))
    for until in (10, 11, 25, 60, 200, 500):
        for _ in range(20):
            if handles:
                engine.cancel(handles.pop(rng.randrange(len(handles))))
        engine.run(until=until)
        assert engine._stale >= 0
        assert engine._stale_buckets >= 0
        assert engine.pending() == live_entries()
        engine.compact()
        assert engine._stale == 0
        assert engine.pending() == live_entries()
    engine.run()
    assert engine.pending() == 0
    assert engine._stale == 0
    assert engine._stale_buckets == 0


def test_counters_report_bucket_and_heap_split():
    """Engine.counters() exposes the engine_* observability names."""
    from repro.stats.names import ENGINE_COUNTERS

    engine = Engine(horizon=4)
    engine.schedule(1, lambda: None)        # bucket-direct
    engine.schedule(1000, lambda: None)     # heap-deferred
    doomed = engine.schedule(2, lambda: None)
    engine.cancel(doomed)
    engine.run()
    counters = engine.counters()
    assert set(counters) == ENGINE_COUNTERS
    assert counters["engine_events_scheduled"] == 3
    assert counters["engine_events_fired"] == 2
    assert counters["engine_bucket_direct"] == 2
    assert counters["engine_heap_deferred"] == 1
    assert counters["engine_heap_migrated"] == 1
    assert counters["engine_cancelled"] == 1
    assert counters["engine_stale_reclaimed"] == 1
