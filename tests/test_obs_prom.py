"""Prometheus text exposition + per-job latency telemetry.

Covers the pure renderer (:mod:`repro.obs.prom`), the worker pool's
latency histograms, and the wire-level ``metrics``/``jobs`` replies
that carry both.
"""

from __future__ import annotations

import re

from repro.obs.prom import render_prometheus, split_snapshot
from repro.serve import JobStore, Scheduler, ServeClient, make_spec
from tests.test_serve_server import fake_stats, serve_test

#: the exposition-format grammar a sample line must match
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile=\"[0-9.]+\"\})? "
    r"-?[0-9.e+-]+$")


# ---------------------------------------------------------------------------
# the renderer
# ---------------------------------------------------------------------------

def test_render_counters_gauges_and_summaries():
    text = render_prometheus(
        counters={"submits": 3},
        gauges={"queue_depth": 2},
        summaries={"job_simulate_ms": {
            "count": 4, "sum_ms": 100, "mean_ms": 25.0,
            "p50_ms": 15, "p95_ms": 63, "p99_ms": 63,
            "max_ms": 60}})
    lines = text.splitlines()
    assert "# TYPE repro_serve_submits_total counter" in lines
    assert "repro_serve_submits_total 3" in lines
    assert "# TYPE repro_serve_queue_depth gauge" in lines
    assert "repro_serve_queue_depth 2" in lines
    assert "# TYPE repro_serve_job_simulate_ms summary" in lines
    assert 'repro_serve_job_simulate_ms{quantile="0.5"} 15' in lines
    assert "repro_serve_job_simulate_ms_sum 100" in lines
    assert "repro_serve_job_simulate_ms_count 4" in lines
    for line in lines:
        if not line.startswith("# "):
            assert _SAMPLE_RE.match(line), line
    assert text.endswith("\n")


def test_render_empty_inputs_is_empty():
    assert render_prometheus() == ""


def test_render_sanitises_metric_names():
    text = render_prometheus(counters={"bad-name.x": 1})
    assert "repro_serve_bad_name_x_total 1" in text


def test_split_snapshot_classifies_queue_state_as_gauges():
    split = split_snapshot({"submits": 9, "jobs_pending": 2,
                            "jobs_done": 5, "cache_bytes": 100})
    assert split["counters"] == {"submits": 9, "jobs_done": 5}
    assert split["gauges"] == {"jobs_pending": 2, "cache_bytes": 100}


# ---------------------------------------------------------------------------
# worker-pool latency histograms
# ---------------------------------------------------------------------------

def test_pool_records_latency_per_job(tmp_path):
    from repro.serve.workers import WorkerPool

    store = JobStore(str(tmp_path / "jobs.jsonl"))
    done = []
    pool = WorkerPool(store, jobs=1, execute=lambda s: fake_stats(),
                      poll_interval=0.01,
                      on_result=lambda job, stats: done.append(job))
    store.submit({"n": 1}, "k1")
    store.submit({"n": 2}, "k2")
    pool.start()
    try:
        deadline = 100
        import time
        while len(done) < 2 and deadline:
            time.sleep(0.05)
            deadline -= 1
    finally:
        pool.stop()
    summary = pool.latency_summary()
    assert set(summary) == {"job_queue_wait_ms", "job_simulate_ms"}
    for entry in summary.values():
        assert entry["count"] == 2
        assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        assert entry["max_ms"] >= 0
    # the measured wall time rides the job object to on_result
    assert all(job.wall_time_s >= 0 for job in done)


# ---------------------------------------------------------------------------
# over the wire
# ---------------------------------------------------------------------------

def test_metrics_json_reply_includes_latency(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        spec = make_spec("HS", preset="tiny", scale=0.1, seed=7)
        await call(client.submit, dict(spec))
        reply = await call(client.metrics)
        assert reply["ok"]
        assert reply["snapshot"]["executed"] == 1
        latency = reply["latency"]
        assert latency["job_simulate_ms"]["count"] == 1
        assert latency["job_queue_wait_ms"]["count"] == 1
        jobs = await call(client.jobs)
        assert jobs["latency"] == latency

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


def test_metrics_prometheus_format_over_the_wire(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        spec = make_spec("HS", preset="tiny", scale=0.1, seed=7)
        await call(client.submit, dict(spec))
        reply = await call(client.metrics, "prometheus")
        assert reply["ok"] and reply["format"] == "prometheus"
        text = reply["text"]
        assert "repro_serve_executed_total 1" in text
        assert "repro_serve_queue_depth 0" in text
        assert "# TYPE repro_serve_job_simulate_ms summary" in text
        assert "repro_serve_job_simulate_ms_count 1" in text
        # the op-level counters the collector tracks ride along
        assert "repro_serve_serve_requests_total" in text

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


def test_cli_jobs_metrics_text(tmp_path, capsys):
    async def body(server, call):
        from repro.cli import main

        code = await call(main, ["jobs", "--port", str(server.port),
                                 "--metrics-text"])
        assert code == 0

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())
    out = capsys.readouterr().out
    assert "# TYPE repro_serve_queue_depth gauge" in out
    assert "repro_serve_jobs_done_total" in out


def test_metrics_unknown_format_is_bad_request(tmp_path):
    async def body(server, call):
        import pytest

        from repro.serve import ServeError

        client = ServeClient(port=server.port, retries=1)
        with pytest.raises(ServeError, match="unknown metrics format"):
            await call(client.metrics, "xml")

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())
