"""The dispatcher + remote-worker fleet: lease protocol, dedup,
crash recovery, and bit-identity with the direct harness.

Workers here run as :class:`FleetWorker` instances on threads (the
protocol neither knows nor cares that production workers are separate
processes — ``scripts/fleet_smoke.py`` and the CI fleet-smoke job
cover the real-subprocess path), talking to a live asyncio server on
an ephemeral port exactly as ``serve worker --connect`` would.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.serve import (FleetWorker, JobStore, ResultStore,
                         Scheduler, ServeClient, ServeError,
                         ServeServer, execute_spec, make_spec)
from repro.stats.collector import RunStats

TINY = make_spec("HS", preset="tiny", scale=0.1, seed=7)


def fake_stats(cycles: int = 42) -> RunStats:
    return RunStats(config_desc="fake", cycles=cycles,
                    counters={"instructions": 1})


def fleet_test(tmp_path, body, *, jobs=0, queue_limit=64,
               lease_duration=300.0, **scheduler_options):
    """Run ``await body(server, call)`` against a live dispatcher.

    Defaults to ``jobs=0`` — the pure-dispatcher configuration whose
    only execution capacity is whatever remote workers the test
    attaches.  ``call(fn, *args)`` runs a blocking client call off
    the event loop.
    """
    async def main():
        store = JobStore(str(tmp_path / "jobs.jsonl"))
        cache = ResultStore(str(tmp_path / "results"))
        scheduler = Scheduler(store, cache=cache, jobs=jobs,
                              queue_limit=queue_limit,
                              poll_interval=0.01,
                              lease_duration=lease_duration,
                              **scheduler_options)
        # short: several tests deliberately leave leased jobs behind,
        # and teardown should not wait out their abandoned waiters
        server = ServeServer(scheduler, port=0, quiet=True,
                             drain_timeout=0.5)
        await server.start()
        loop = asyncio.get_running_loop()

        def call(fn, *args):
            return loop.run_in_executor(None, fn, *args)

        try:
            await body(server, call)
        finally:
            if not server.draining:
                await server.drain()

    asyncio.run(main())


def start_worker(port: int, name: str, **options) -> FleetWorker:
    """A FleetWorker on a daemon thread, tuned for test latency."""
    options.setdefault("poll_interval", 0.01)
    options.setdefault("quiet", True)
    worker = FleetWorker(ServeClient(port=port, retries=2,
                                     sleep=lambda s: None),
                         name=name, **options)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    worker.thread = thread
    return worker


async def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        await asyncio.sleep(0.01)


# ---------------------------------------------------------------------------
# the wire protocol, op by op
# ---------------------------------------------------------------------------

def test_lease_complete_roundtrip_resolves_the_submitter(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        accepted = await call(client.submit, dict(TINY), False)
        job = await call(client.lease, "w1")
        assert job["id"] == accepted["job_id"]
        assert job["spec"] == dict(TINY)
        assert job["attempts"] == 1
        # an empty queue leases nothing
        assert await call(client.lease, "w2") is None
        # a persistent connection is one caller's; the blocked
        # waiter gets its own
        waiter = ServeClient(port=server.port)
        pending = call(waiter.submit, dict(TINY))    # coalesces
        fresh = await call(client.complete, job["id"], "w1",
                           fake_stats(), 1.25)
        assert fresh is True
        result = await pending
        assert result["stats"]["cycles"] == 42
        metrics = await call(client.metrics)
        snapshot = metrics["snapshot"]
        assert snapshot["remote_leases"] == 1
        assert snapshot["remote_results"] == 1
        assert snapshot["executed"] == 1
        assert snapshot["jobs_done"] == 1
        # the remote wall time feeds the same latency histograms
        assert metrics["latency"]["job_simulate_ms"]["count"] == 1

    fleet_test(tmp_path, body)


def test_fail_op_retries_then_quarantines(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, dict(TINY), False)
        job = await call(client.lease, "w1")
        assert await call(client.fail, job["id"], "w1", "boom 1")
        # requeued with backoff, not terminal
        status = await call(client.status, job["id"])
        assert status["job"]["state"] == "pending"
        again = None
        while again is None:
            again = await call(client.lease, "w1")
            await asyncio.sleep(0.01)
        assert again["id"] == job["id"] and again["attempts"] == 2
        assert await call(client.fail, job["id"], "w1", "boom 2")
        assert (await call(client.status, job["id"])
                )["job"]["state"] == "failed"

        def refused():
            with pytest.raises(ServeError, match="quarantined"):
                client.submit(dict(TINY))
        await call(refused)

    fleet_test(tmp_path, body, max_attempts=2, backoff_base=0.01)


def test_stale_fail_and_unknown_job_are_harmless(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, dict(TINY), False)
        job = await call(client.lease, "w1")
        # a report from a worker that does not hold the lease
        assert await call(client.fail, job["id"], "imposter",
                          "not mine") is False
        assert (await call(client.status, job["id"])
                )["job"]["state"] == "leased"
        def missing():
            with pytest.raises(ServeError, match="not-found"):
                client.complete("j999999", "w1", fake_stats())
        await call(missing)

    fleet_test(tmp_path, body)


def test_heartbeat_extends_and_reports_lost_leases(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, dict(TINY), False)
        job = await call(client.lease, "w1", 0.15)
        first = job["deadline"]
        deadline = await call(client.heartbeat, job["id"], "w1", 60.0)
        assert deadline > first
        # let the (un-extended-after-this) short story play out: a
        # second worker steals after expiry, the first's heartbeat
        # now reports lease-lost
        server.scheduler.store.heartbeat(job["id"], "w1", 0.05)
        await asyncio.sleep(0.1)
        stolen = await call(client.lease, "w2")
        assert stolen["id"] == job["id"]
        def lost():
            with pytest.raises(ServeError, match="lease-lost"):
                client.heartbeat(job["id"], "w1", 60.0)
        await call(lost)

    fleet_test(tmp_path, body)


def test_lease_refused_while_draining(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port, retries=1,
                             sleep=lambda s: None)
        waiter = ServeClient(port=server.port)
        pending = call(waiter.submit, dict(TINY))
        await wait_until(
            lambda: server.scheduler.store.active_count() == 1)
        job = await call(client.lease, "w1")
        # drain blocks on the in-flight waiter; leases are already
        # refused while the lease we hold may still complete
        drainer = asyncio.ensure_future(server.drain())
        await asyncio.sleep(0.05)
        assert server.draining

        def refused():
            with pytest.raises(Exception) as info:
                client.lease("w2")
            assert "draining" in str(info.value)
        await call(refused)
        assert await call(client.complete, job["id"], "w1",
                          fake_stats(), 0.1) is True
        result = await pending
        assert result["stats"]["cycles"] == 42
        await drainer

    fleet_test(tmp_path, body)


# ---------------------------------------------------------------------------
# fleet-wide dedup
# ---------------------------------------------------------------------------

def test_lease_skips_keys_already_in_the_shared_store(tmp_path):
    """A job whose key was finished elsewhere (another fleet member,
    a batch run sharing the directory) is completed at lease time,
    never handed to a worker."""
    async def body(server, call):
        client = ServeClient(port=server.port)
        waiter = ServeClient(port=server.port)
        pending = call(waiter.submit, dict(TINY))
        await wait_until(
            lambda: server.scheduler.store.active_count() == 1)
        job = server.scheduler.store.jobs()[0]
        # a second fleet member publishes the result out-of-band
        server.scheduler.cache.put(job.key, fake_stats(7))
        assert await call(client.lease, "w1") is None
        result = await pending
        assert result["stats"]["cycles"] == 7
        assert server.scheduler.deduped_results == 1
        assert (await call(client.status, job.id)
                )["job"]["state"] == "done"

    fleet_test(tmp_path, body)


def test_late_result_after_requeue_is_deduplicated(tmp_path):
    """Slow worker's lease expires, the job re-runs elsewhere; the
    slow worker's eventual result answers fresh=False and changes
    nothing."""
    async def body(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, dict(TINY), False)
        slow = await call(client.lease, "slow", 0.1)
        await asyncio.sleep(0.15)                  # lease expires
        fast = await call(client.lease, "fast")
        assert fast["id"] == slow["id"]
        assert await call(client.complete, fast["id"], "fast",
                          fake_stats(1), 0.5) is True
        assert await call(client.complete, slow["id"], "slow",
                          fake_stats(1), 9.9) is False
        assert server.scheduler.remote_results == 1
        assert server.scheduler.deduped_results == 1
        assert server.scheduler.pool.executed == 1

    fleet_test(tmp_path, body)


def test_n_clients_same_spec_on_four_workers_one_execution(tmp_path):
    """The acceptance bullet: 8 clients x 1 spec x 4 workers = exactly
    one simulation, every reply byte-identical."""
    executions = []

    def execute(spec):
        executions.append(spec["workload"])
        time.sleep(0.05)               # wide enough to tempt overlap
        return fake_stats()

    async def body(server, call):
        workers = [start_worker(server.port, f"w{i}",
                                execute=execute) for i in range(4)]
        replies, errors = [], []

        def one():
            try:
                replies.append(
                    ServeClient(port=server.port).submit(dict(TINY)))
            except Exception as error:   # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=one) for _ in range(8)]
        for thread in threads:
            thread.start()
        await wait_until(lambda: not any(t.is_alive()
                                         for t in threads))
        assert not errors
        assert executions == ["HS"]                # exactly once
        payloads = {json.dumps(r["stats"], sort_keys=True)
                    for r in replies}
        assert len(payloads) == 1
        for worker in workers:
            worker.stop()

    fleet_test(tmp_path, body)


# ---------------------------------------------------------------------------
# crash recovery, bit-identical
# ---------------------------------------------------------------------------

def test_worker_killed_mid_lease_rerun_is_bit_identical(tmp_path):
    """A worker that dies mid-job never completes its lease; after
    expiry another worker re-runs the job, and the result equals a
    direct ExperimentRunner-path run byte for byte."""
    direct = execute_spec(dict(TINY)).to_dict()

    async def body(server, call):
        client = ServeClient(port=server.port)
        waiter = ServeClient(port=server.port)
        pending = call(waiter.submit, dict(TINY))
        await wait_until(
            lambda: server.scheduler.store.active_count() == 1)
        # the doomed worker leases (short lease), then "dies": it
        # simply never heartbeats, completes, or fails
        doomed = await call(client.lease, "doomed", 0.1)
        assert doomed is not None
        await asyncio.sleep(0.15)
        # a healthy real worker picks the job up after expiry
        worker = start_worker(server.port, "healthy")
        result = await pending
        assert result["stats"] == direct
        job = server.scheduler.store.get(doomed["id"])
        assert job.state == "done" and job.worker == "healthy"
        assert job.attempts == 2
        worker.stop()

    fleet_test(tmp_path, body)


def test_dispatcher_restart_requeues_remote_leases(tmp_path):
    """Kill-and-resume with a remote lease in flight: the journal
    requeues it on reopen and a fresh fleet finishes it, bit-identical
    to the direct run."""
    direct = execute_spec(dict(TINY)).to_dict()

    async def first(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, dict(TINY), False)
        leased = await call(client.lease, "doomed")
        assert leased is not None          # held across the "crash"

    fleet_test(tmp_path, first)

    async def second(server, call):
        assert server.scheduler.store.counts()["pending"] == 1
        client = ServeClient(port=server.port)
        worker = start_worker(server.port, "healthy")
        await wait_until(
            lambda: server.scheduler.store.counts()["done"] == 1)
        job = server.scheduler.store.jobs()[0]
        stats = server.scheduler.cache.get(job.key)
        assert stats.to_dict() == direct
        worker.stop()

    fleet_test(tmp_path, second)


def test_fleet_worker_timeout_and_failure_reporting(tmp_path):
    """A worker whose execution times out (or raises) reports fail;
    the dispatcher's retry policy then quarantines after the last
    attempt."""
    def hang(spec):
        time.sleep(10)
        return fake_stats()              # pragma: no cover

    async def body(server, call):
        client = ServeClient(port=server.port)
        worker = start_worker(server.port, "slow", execute=hang,
                              timeout=0.1, heartbeat_interval=0.02)
        def submit():
            with pytest.raises(ServeError, match="JobTimeout"):
                client.submit(dict(TINY))
        await call(submit)
        assert worker.failed == 1 and worker.executed == 0
        worker.stop()

    fleet_test(tmp_path, body, max_attempts=1)


def test_fleet_worker_drain_exit_and_max_jobs(tmp_path):
    done = []

    def execute(spec):
        done.append(spec["workload"])
        return fake_stats()

    async def body(server, call):
        client = ServeClient(port=server.port)
        worker = start_worker(server.port, "w1", execute=execute,
                              max_jobs=2)
        for workload in ("HS", "KM", "BP"):
            await call(client.submit,
                       make_spec(workload, preset="tiny", scale=0.1),
                       False)
        await wait_until(lambda: not worker.thread.is_alive())
        assert worker.executed == 2 and len(done) == 2
        # a second worker exits on its own once the server drains
        straggler = start_worker(server.port, "w2", execute=execute)
        await wait_until(
            lambda: server.scheduler.store.counts()["done"] == 3)
        await server.drain()
        await wait_until(lambda: not straggler.thread.is_alive())

    fleet_test(tmp_path, body)
