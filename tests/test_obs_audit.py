"""Tests for the protocol audit log and its replay checker.

Two directions: a real G-TSC run's log must replay clean (every
transition explained by the paper's equations), and a log with any
single invariant broken must be rejected — the checker is only
trustworthy if it can actually fail.
"""

import dataclasses
import json

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.obs import (AuditRecord, Observability, ProtocolAuditLog,
                       replay_audit)
from repro.validate import CoherenceViolation
from repro.workloads import build_workload

LEASE = 10


def traced_run(workload="BFS", protocol=Protocol.GTSC,
               consistency=Consistency.RC, **overrides):
    config = GPUConfig.tiny(protocol=protocol, consistency=consistency,
                            lease=LEASE, **overrides)
    obs = Observability.full(interval=500)
    kernel = build_workload(workload, scale=0.3, seed=7)
    stats = GPU(config, obs=obs).run(kernel)
    return stats, obs


# ---------------------------------------------------------------------------
# real runs replay clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["BFS", "STN", "KM"])
def test_gtsc_run_audit_replays_clean(workload):
    _, obs = traced_run(workload)
    checked = replay_audit(obs.audit.records, lease=LEASE)
    assert checked == len(obs.audit.records) > 0
    counts = obs.audit.counts()
    assert counts["l1_load"] > 0
    assert counts["fill"] > 0


def test_audit_covers_writes_and_renewals():
    _, obs = traced_run("STN")
    counts = obs.audit.counts()
    assert counts["write"] > 0
    assert counts.get("renew", 0) + counts.get("read", 0) > 0


def test_overflow_run_replays_across_epochs():
    # a tiny timestamp space forces mid-run overflow resets; the
    # replay must follow the epoch bumps instead of rejecting the
    # post-reset timestamps
    _, obs = traced_run("STN", ts_max=256)
    assert replay_audit(obs.audit.records, lease=LEASE) > 0
    assert obs.audit.counts().get("ts_reset", 0) > 0


# ---------------------------------------------------------------------------
# tampered logs are rejected
# ---------------------------------------------------------------------------


def tamper(records, kind, **changes):
    """A copy of ``records`` with the first ``kind`` record altered."""
    out = list(records)
    for index, rec in enumerate(out):
        if rec.kind == kind:
            out[index] = dataclasses.replace(rec, **changes)
            return out
    raise AssertionError(f"no {kind!r} record to tamper with")


def test_replay_rejects_backwards_cycle():
    _, obs = traced_run()
    bad = list(obs.audit.records)
    assert bad[-2].cycle > 0
    bad[-1] = dataclasses.replace(bad[-1], cycle=0)
    with pytest.raises(CoherenceViolation, match="backwards"):
        replay_audit(bad, lease=LEASE)


def test_replay_rejects_malformed_lease():
    _, obs = traced_run()
    bad = tamper(obs.audit.records, "fill", rts=0)
    with pytest.raises(CoherenceViolation, match="wts <= rts"):
        replay_audit(bad, lease=LEASE)


def test_replay_rejects_wrong_fill_timestamp():
    _, obs = traced_run()
    fill = next(r for r in obs.audit.records if r.kind == "fill")
    bad = tamper(obs.audit.records, "fill",
                 wts=fill.wts + 7, rts=fill.wts + 7 + LEASE)
    with pytest.raises(CoherenceViolation, match="mem_ts"):
        replay_audit(bad, lease=LEASE)


def test_replay_rejects_short_write_lease():
    _, obs = traced_run("STN")
    write = next(r for r in obs.audit.records if r.kind == "write")
    bad = tamper(obs.audit.records, "write", rts=write.wts + LEASE - 1)
    with pytest.raises(CoherenceViolation, match="lease"):
        replay_audit(bad, lease=LEASE)


def test_replay_rejects_load_outside_lease():
    _, obs = traced_run()
    load = next(r for r in obs.audit.records if r.kind == "l1_load")
    bad = tamper(obs.audit.records, "l1_load", warp_ts=load.rts + 1)
    with pytest.raises(CoherenceViolation, match="lease"):
        replay_audit(bad, lease=LEASE)


def test_replay_rejects_unknown_kind():
    with pytest.raises(CoherenceViolation, match="unknown"):
        replay_audit([AuditRecord(0, "mystery", "l2b0", 0, 1, 1, 1, 0)],
                     lease=LEASE)


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def test_audit_jsonl_is_one_record_per_line(tmp_path):
    _, obs = traced_run()
    path = str(tmp_path / "audit.jsonl")
    obs.audit.write_jsonl(path)
    with open(path) as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == len(obs.audit)
    first = lines[0]
    assert set(first) == {"cycle", "kind", "unit", "addr", "wts",
                          "rts", "warp_ts", "epoch", "warp"}


def test_empty_log_replays_to_zero():
    assert replay_audit(ProtocolAuditLog().records, lease=LEASE) == 0
