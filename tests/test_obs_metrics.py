"""Tests for the sampled time-series metrics registry."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.obs import DEFAULT_COUNTERS, MetricsRegistry, Observability
from repro.stats.collector import RunStats
from repro.workloads import build_workload


class FakeStats:
    def __init__(self):
        from collections import defaultdict
        self.counters = defaultdict(int)


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        MetricsRegistry(interval=0)


def test_samples_land_on_interval_boundaries():
    metrics = MetricsRegistry(interval=100, counters=["instructions"])
    stats = FakeStats()
    metrics.bind(stats)
    for now in (5, 99, 100, 101, 250, 610):
        stats.counters["instructions"] = now
        metrics.on_cycle(now)
    # one sample per crossed boundary, stamped with the actual cycle
    assert [row["cycle"] for row in metrics.samples] == [100, 250, 610]


def test_finalize_takes_a_closing_sample():
    metrics = MetricsRegistry(interval=100, counters=["instructions"])
    metrics.bind(FakeStats())
    metrics.on_cycle(150)
    metrics.finalize(175)
    assert [row["cycle"] for row in metrics.samples] == [150, 175]
    # idempotent: a second finalize at the same cycle adds nothing
    metrics.finalize(175)
    assert len(metrics.samples) == 2


def test_gauges_are_probed_at_sample_time():
    metrics = MetricsRegistry(interval=10, counters=[])
    metrics.bind(FakeStats())
    live = {"value": 3}
    metrics.add_gauge("mshr", lambda: live["value"])
    metrics.on_cycle(10)
    live["value"] = 8
    metrics.on_cycle(20)
    assert metrics.series("mshr") == [(10, 3), (20, 8)]


def test_derived_rates_use_cycle_deltas():
    metrics = MetricsRegistry(interval=100, counters=["instructions"])
    stats = FakeStats()
    metrics.bind(stats)
    stats.counters["instructions"] = 50
    metrics.on_cycle(100)
    stats.counters["instructions"] = 150   # +100 instr over 200 cycles
    metrics.on_cycle(300)
    assert metrics.derived()["ipc"] == [(300, 0.5)]


# ---------------------------------------------------------------------------
# end-to-end: a real run carries the series in RunStats
# ---------------------------------------------------------------------------


def run_stats(obs=None, **overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC, **overrides)
    kernel = build_workload("BFS", scale=0.3, seed=7)
    return GPU(config, obs=obs).run(kernel)


def test_run_timeseries_covers_the_whole_kernel():
    obs = Observability(metrics=MetricsRegistry(interval=500))
    stats = run_stats(obs=obs)
    series = stats.timeseries
    assert series["interval"] == 500
    assert set(DEFAULT_COUNTERS) <= set(series["columns"])
    assert "l1_mshr_occupancy" in series["columns"]
    cycles = [row["cycle"] for row in series["samples"]]
    assert cycles == sorted(cycles)
    # the finalize sample pins the series to the end of the run
    assert cycles[-1] == stats.cycles
    last = series["samples"][-1]
    assert last["instructions"] == stats.counter("instructions")


def test_timeseries_round_trips_through_serialization():
    obs = Observability(metrics=MetricsRegistry(interval=500))
    stats = run_stats(obs=obs)
    restored = RunStats.from_dict(stats.to_dict())
    assert restored.timeseries == stats.timeseries
    assert restored == stats


def test_disabled_runs_serialize_without_timeseries_key():
    stats = run_stats()
    assert stats.timeseries == {}
    assert "timeseries" not in stats.to_dict()
