"""Unit tests for the NoC model."""

import pytest

from repro.mem.noc import Network
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector


def make_noc(latency=10, bandwidth=32):
    engine = Engine()
    stats = StatsCollector()
    return engine, stats, Network(engine, stats, latency, bandwidth)


def test_single_message_latency():
    engine, stats, noc = make_noc(latency=10, bandwidth=32)
    arrivals = []
    noc.send("a", "b", 32, "ctrl", lambda: arrivals.append(engine.now))
    engine.run()
    # 1 cycle serialization + 10 base latency
    assert arrivals == [11]


def test_serialization_scales_with_size():
    engine, stats, noc = make_noc(latency=0, bandwidth=8)
    arrivals = []
    noc.send("a", "b", 24, "data", lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [3]  # ceil(24/8)


def test_sub_bandwidth_message_still_takes_a_cycle():
    engine, stats, noc = make_noc(latency=0, bandwidth=64)
    arrivals = []
    noc.send("a", "b", 4, "ctrl", lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [1]


def test_port_congestion_queues_messages():
    engine, stats, noc = make_noc(latency=5, bandwidth=16)
    arrivals = []
    for _ in range(3):
        noc.send("src", "dst", 32, "data",
                 lambda: arrivals.append(engine.now))
    engine.run()
    # each takes 2 cycles of the port: departures at 2, 4, 6
    assert arrivals == [7, 9, 11]


def test_distinct_ports_do_not_contend():
    engine, stats, noc = make_noc(latency=5, bandwidth=16)
    arrivals = []
    noc.send("a", "x", 32, "data", lambda: arrivals.append(engine.now))
    noc.send("b", "x", 32, "data", lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [7, 7]


def test_traffic_accounting_by_kind():
    engine, stats, noc = make_noc()
    noc.send("a", "b", 10, "ctrl", lambda: None)
    noc.send("a", "b", 140, "data", lambda: None)
    engine.run()
    assert stats.get("noc_bytes") == 150
    assert stats.get("noc_bytes_ctrl") == 10
    assert stats.get("noc_bytes_data") == 140
    assert stats.get("noc_messages") == 2


def test_average_latency():
    engine, stats, noc = make_noc(latency=10, bandwidth=32)
    noc.send("a", "b", 32, "ctrl", lambda: None)
    noc.send("a", "b", 32, "ctrl", lambda: None)  # queued: 1 extra cycle
    engine.run()
    assert noc.average_latency == pytest.approx((11 + 12) / 2)


def test_idle_port_does_not_accumulate_credit():
    engine, stats, noc = make_noc(latency=0, bandwidth=16)
    arrivals = []
    noc.send("a", "b", 16, "ctrl", lambda: arrivals.append(engine.now))
    engine.run()
    assert engine.now == 1
    # long idle gap: the port's free time must not lag behind now
    engine.schedule(100, lambda: noc.send(
        "a", "b", 16, "ctrl", lambda: arrivals.append(engine.now)))
    engine.run()
    # sent at cycle 101, one serialization cycle, zero base latency
    assert arrivals == [1, 102]


def test_rejects_nonpositive_size():
    engine, stats, noc = make_noc()
    with pytest.raises(ValueError):
        noc.send("a", "b", 0, "ctrl", lambda: None)


def test_rejects_zero_bandwidth():
    engine = Engine()
    with pytest.raises(ValueError):
        Network(engine, StatsCollector(), 1, 0)
