"""Tests for the command-line interface and the report generator."""

import pytest

from repro.cli import EXPERIMENT_FNS, main, make_parser
from repro.harness.report import EXPECTATIONS, build_report
from repro.harness.runner import ExperimentRunner


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        make_parser().parse_args(["simulate", "NOPE"])


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        make_parser().parse_args(["simulate", "BFS", "--protocol",
                                  "moesi-l3"])


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------

def test_list_shows_workloads_and_experiments(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for name in ("BH", "KM", "fig12", "table2", "ablation-tc-lease"):
        assert name in out


# ---------------------------------------------------------------------------
# simulate
# ---------------------------------------------------------------------------

def test_simulate_runs_and_prints_summary(capsys):
    code, out, _ = run_cli(capsys, "simulate", "HS", "--preset", "tiny",
                           "--scale", "0.15")
    assert code == 0
    assert "cycles:" in out
    assert "HS" in out


def test_simulate_with_check_verifies_coherence(capsys):
    code, out, _ = run_cli(capsys, "simulate", "STN", "--preset", "tiny",
                           "--scale", "0.15", "--check")
    assert code == 0
    assert "verified against" in out


def test_simulate_other_protocols(capsys):
    for protocol in ("tc", "disabled"):
        code, out, _ = run_cli(capsys, "simulate", "HS", "--preset",
                               "tiny", "--scale", "0.1", "--protocol",
                               protocol)
        assert code == 0


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def test_run_single_experiment(capsys):
    code, out, _ = run_cli(capsys, "run", "fig14", "--preset", "tiny",
                           "--scale", "0.1")
    assert code == 0
    assert "fig14" in out
    assert "lease=8" in out


def test_run_unknown_experiment_fails_cleanly(capsys):
    code, _out, err = run_cli(capsys, "run", "fig99", "--preset", "tiny")
    assert code == 2
    assert "unknown experiments" in err


def test_run_without_names_or_all_fails(capsys):
    code, _out, err = run_cli(capsys, "run", "--preset", "tiny")
    assert code == 2


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def test_every_expectation_has_a_registered_function():
    assert len(EXPECTATIONS) == len(EXPERIMENT_FNS)
    for expectation in EXPECTATIONS:
        assert expectation.paper_says
        assert expectation.shape_target
        assert EXPERIMENT_FNS[expectation.experiment_id] is expectation.fn


def test_build_report_contains_every_experiment():
    runner = ExperimentRunner(preset="tiny", scale=0.1, seed=5)
    text = build_report(runner)
    for expectation in EXPECTATIONS:
        assert expectation.title in text
    assert "Paper:" in text and "Measured:" in text


def test_report_command_writes_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    code, out, _ = run_cli(capsys, "report", "--output", str(target),
                           "--preset", "tiny", "--scale", "0.1")
    assert code == 0
    assert target.exists()
    assert "paper vs. measured" in target.read_text()


def test_report_to_stdout(capsys):
    code, out, _ = run_cli(capsys, "report", "--output", "-",
                           "--preset", "tiny", "--scale", "0.1")
    assert code == 0
    assert "# EXPERIMENTS" in out


def test_simulate_json_output(capsys):
    import json
    code, out, _ = run_cli(capsys, "simulate", "HS", "--preset", "tiny",
                           "--scale", "0.1", "--json")
    assert code == 0
    data = json.loads(out)
    # the versioned result envelope shared with the serve protocol
    assert data["v"] == 1 and data["kind"] == "result"
    assert data["spec"]["workload"] == "HS"
    assert data["cached"] is False and data["coalesced"] is False
    assert len(data["key"]) == 64
    stats = data["stats"]
    assert stats["cycles"] > 0
    assert "counters" in stats and "energy_j" in stats
    assert stats["histograms"]["load_latency"]["count"] > 0


def test_simulate_json_key_matches_run_cache(capsys):
    """The envelope key IS the harness run_key: results interchange."""
    import json
    from repro.serve import schema

    code, out, _ = run_cli(capsys, "simulate", "HS", "--preset", "tiny",
                           "--scale", "0.1", "--json")
    assert code == 0
    data = json.loads(out)
    spec = schema.make_spec("HS", preset="tiny", scale=0.1,
                            overrides={"lease": 10})
    assert data["key"] == schema.spec_key(spec)


def test_simulate_set_override_changes_key(capsys):
    import json
    code, out, _ = run_cli(capsys, "simulate", "HS", "--preset", "tiny",
                           "--scale", "0.1", "--json",
                           "--set", "l1_size=2048")
    assert code == 0
    data = json.loads(out)
    assert data["spec"]["overrides"]["l1_size"] == 2048


def test_sweep_command(capsys):
    code, out, _ = run_cli(capsys, "sweep", "lease", "8", "20",
                           "--workload", "HS", "--preset", "tiny",
                           "--scale", "0.1")
    assert code == 0
    assert "lease=8" in out and "lease=20" in out


def test_sweep_rejects_non_integer_values(capsys):
    code, _out, err = run_cli(capsys, "sweep", "lease", "abc",
                              "--workload", "HS", "--preset", "tiny")
    assert code == 2
    assert "integers" in err


def test_sweep_rejects_unknown_metric(capsys):
    code, _out, err = run_cli(capsys, "sweep", "lease", "8",
                              "--workload", "HS", "--preset", "tiny",
                              "--scale", "0.1", "--metric", "vibes")
    assert code == 2


def test_profile_cprofile_prints_hotspots(capsys):
    from repro.sim.backend import backend_name

    code, out, _ = run_cli(capsys, "profile", "BFS", "--preset", "tiny",
                           "--scale", "0.3", "--cprofile", "--no-cache")
    assert code == 0
    assert "cProfile: BFS gtsc-rc" in out
    assert f"backend={backend_name()}" in out
    assert "cumulative" in out            # pstats sort header
    # the run loop shows up under whichever backend resolved
    engine_file = ("repro/sim/_fast.py" if backend_name() == "fast"
                   else "repro/sim/engine.py")
    assert engine_file in out
    assert "simulator hot modules by self time" in out
    assert "engine hot loop:" in out
    assert "engine_events_fired" in out
