"""Randomised coherence stress: hypothesis-generated kernels run on the
real machine and every recorded load is checked against timestamp
order.  This is the highest-value test in the suite — each example
discharges hundreds of proof obligations over the full protocol stack
(L1 FSM, MSHR combining, NoC reordering pressure, L2 FSM, evictions,
DRAM refills).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    CombiningPolicy,
    Consistency,
    GPUConfig,
    Protocol,
    VisibilityPolicy,
)
from repro.trace.instr import Kernel, atomic, compute, fence, load, store

from tests.conftest import run_and_check


def trace_strategy(lines: int, max_len: int):
    instr = st.one_of(
        st.integers(0, lines - 1).map(lambda a: load(a)),
        st.tuples(st.integers(0, lines - 1), st.integers(0, lines - 1))
          .map(lambda t: load(*t)),
        st.integers(0, lines - 1).map(lambda a: store(a)),
        st.integers(0, lines - 1).map(lambda a: atomic(a)),
        st.just(fence()),
        st.integers(1, 4).map(compute),
    )
    return st.lists(instr, min_size=1, max_size=max_len) \
             .map(lambda t: t + [fence()])


def kernel_strategy(warps=4, lines=6, max_len=25):
    return st.lists(trace_strategy(lines, max_len), min_size=2,
                    max_size=warps).map(
        lambda traces: Kernel("hyp", traces))


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=40, **COMMON)
@given(kernel_strategy())
def test_gtsc_rc_timestamp_order_holds(kernel):
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, kernel)


@settings(max_examples=40, **COMMON)
@given(kernel_strategy())
def test_gtsc_sc_timestamp_order_and_monotonicity_hold(kernel):
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC)
    run_and_check(config, kernel)


@settings(max_examples=25, **COMMON)
@given(kernel_strategy(lines=3, max_len=20))
def test_gtsc_hot_line_contention(kernel):
    """Tiny footprint maximises write-write and read-write races."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, kernel)


@settings(max_examples=25, **COMMON)
@given(kernel_strategy(lines=48, max_len=20))
def test_gtsc_under_heavy_eviction(kernel):
    """Footprint far beyond the tiny caches: constant refills."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, kernel)


@settings(max_examples=20, **COMMON)
@given(kernel_strategy(lines=4, max_len=30))
def test_gtsc_overflow_pressure(kernel):
    """A 255-entry timestamp space forces resets mid-run."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            ts_max=255)
    run_and_check(config, kernel)


@settings(max_examples=20, **COMMON)
@given(kernel_strategy())
def test_gtsc_old_copy_policy(kernel):
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            visibility=VisibilityPolicy.OLD_COPY)
    run_and_check(config, kernel)


@settings(max_examples=20, **COMMON)
@given(kernel_strategy())
def test_gtsc_forward_all_combining(kernel):
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            combining=CombiningPolicy.FORWARD_ALL)
    run_and_check(config, kernel)


@settings(max_examples=15, **COMMON)
@given(kernel_strategy(), st.sampled_from([Consistency.SC,
                                           Consistency.RC]))
def test_tc_and_baselines_always_complete(kernel, consistency):
    """The baselines have no logical-time invariant to check, but they
    must never hang or drop operations."""
    from repro.gpu.gpu import GPU
    for protocol in (Protocol.TC, Protocol.DISABLED):
        config = GPUConfig.tiny(protocol=protocol, consistency=consistency)
        stats = GPU(config).run(kernel, max_events=2_000_000)
        assert stats.counter("warps_retired") == kernel.num_warps


@settings(max_examples=20, **COMMON)
@given(kernel_strategy(), st.sampled_from([Consistency.SC,
                                           Consistency.RC]))
def test_every_coherent_protocol_preserves_per_location_order(
        kernel, consistency):
    """Differential coherence fuzz: CoRR (per-observer write-order
    monotonicity) and atomic tear-freedom hold for every coherent
    protocol on the same random kernel."""
    from repro.gpu.gpu import GPU
    from repro.validate.checker import (
        check_atomicity,
        check_per_location_monotonic,
    )
    for protocol in (Protocol.GTSC, Protocol.TC, Protocol.MESI,
                     Protocol.DISABLED):
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=consistency)
        gpu = GPU(config)
        gpu.run(kernel, max_events=2_000_000)
        log, versions = gpu.machine.log, gpu.machine.versions
        assert check_per_location_monotonic(log, versions) \
            == len(log.loads)
        assert check_atomicity(log, versions) == len(log.atomics)


@settings(max_examples=10, **COMMON)
@given(st.integers(0, 10_000))
def test_runs_are_deterministic(seed):
    """Same kernel + same config = bit-identical statistics."""
    rng = random.Random(seed)
    from tests.conftest import random_kernel, run_gpu
    kernel = random_kernel(seed, warps=4, length=30)
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    _, a = run_gpu(config, kernel)
    _, b = run_gpu(config, kernel)
    assert a.cycles == b.cycles
    assert a.counters == b.counters
