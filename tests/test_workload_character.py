"""Workload characterization: each benchmark must actually *have* the
personality the paper's analysis attributes to it (see
docs/WORKLOADS.md).  These tests pin the generators against silent
drift — a refactor that turns CC compute-bound or CCP memory-bound
would quietly invalidate every figure.
"""

import pytest

from repro.trace.instr import COMPUTE, FENCE, LOAD, STORE
from repro.workloads import ALL_NAMES, build_workload


def profile(name, scale=0.4):
    kernel = build_workload(name, scale=scale, seed=2018)
    counts = {LOAD: 0, STORE: 0, FENCE: 0, COMPUTE: 0}
    compute_cycles = 0
    accesses = 0
    for trace in kernel.warp_traces:
        for instr in trace:
            counts[instr.op] += 1
            if instr.op == COMPUTE:
                compute_cycles += instr.cycles
            accesses += len(instr.addrs)
    mem_instrs = counts[LOAD] + counts[STORE]
    return {
        "kernel": kernel,
        "counts": counts,
        "compute_per_access": compute_cycles / max(1, accesses),
        "store_share": counts[STORE] / max(1, mem_instrs),
    }


def test_ccp_is_compute_bound():
    prof = profile("CCP")
    assert prof["compute_per_access"] > 15
    assert prof["store_share"] < 0.3


def test_hs_is_compute_heavy():
    assert profile("HS")["compute_per_access"] > 4


def test_cc_is_memory_intensive():
    prof = profile("CC")
    assert prof["compute_per_access"] < 1.0


def test_bh_is_read_mostly():
    assert profile("BH")["store_share"] < 0.2


def test_cc_writes_every_iteration():
    assert profile("CC")["store_share"] > 0.15


def test_bfs_streams_more_than_it_writes():
    prof = profile("BFS")
    assert prof["store_share"] < 0.15
    # adjacency streaming: large unique footprint
    footprint = len(prof["kernel"].memory_footprint())
    assert footprint > 200


def test_km_has_the_largest_stream():
    km = len(profile("KM")["kernel"].memory_footprint())
    others = [len(profile(n)["kernel"].memory_footprint())
              for n in ("CCP", "HS", "GE")]
    assert km > max(others)


def test_dlp_concentrates_writes_on_hot_lines():
    kernel = profile("DLP")["kernel"]
    writes = {}
    for trace in kernel.warp_traces:
        for instr in trace:
            if instr.op == STORE:
                for addr in instr.addrs:
                    writes[addr] = writes.get(addr, 0) + 1
    top = sorted(writes.values(), reverse=True)
    # the hottest handful of lines absorb a large share of all writes
    assert sum(top[:8]) > 0.3 * sum(top)


def test_stn_halo_crosses_warp_boundaries():
    kernel = profile("STN")["kernel"]
    reads_by_warp = {}
    writes_by_warp = {}
    for index, trace in enumerate(kernel.warp_traces):
        for instr in trace:
            target = reads_by_warp if instr.op == LOAD else \
                writes_by_warp if instr.op == STORE else None
            if target is not None:
                target.setdefault(index, set()).update(instr.addrs)
    # every warp reads at least one line that a different warp writes
    for index, reads in reads_by_warp.items():
        foreign = set()
        for other, writes in writes_by_warp.items():
            if other != index:
                foreign |= writes
        assert reads & foreign, f"warp {index} has no halo reads"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_profiles_are_scale_stable(name):
    """Character must not change with scale (only magnitude).

    Scales below ~0.4 quantize the per-warp step counts hard enough
    that periodic events (e.g. CCP's every-6th-step store) can vanish,
    so stability is asserted across the range the harness uses.
    """
    small = profile(name, scale=0.4)
    large = profile(name, scale=1.0)
    assert abs(small["store_share"] - large["store_share"]) < 0.12
