"""Tests for the validators themselves — they must catch real
violations, not just bless everything."""

import pytest

from repro.validate.checker import (
    CoherenceViolation,
    check_gtsc_log,
    check_single_writer_logical,
    check_warp_monotonicity,
)
from repro.validate.versions import (
    AccessLog,
    LoadRecord,
    StoreRecord,
    VersionStore,
)


def make_load(warp=0, addr=0, version=0, ts=1, epoch=0, cycle=10,
              hit=False):
    return LoadRecord(warp_uid=warp, addr=addr, version=version,
                      logical_ts=ts, epoch=epoch, issue_cycle=cycle - 5,
                      complete_cycle=cycle, l1_hit=hit)


def make_store(warp=0, addr=0, version=1, ts=10, epoch=0, cycle=10):
    return StoreRecord(warp_uid=warp, addr=addr, version=version,
                       logical_ts=ts, epoch=epoch, issue_cycle=cycle - 5,
                       complete_cycle=cycle)


# ---------------------------------------------------------------------------
# VersionStore
# ---------------------------------------------------------------------------

def test_version_numbers_increase_per_address():
    store = VersionStore()
    assert store.new_version(0) == 1
    assert store.new_version(0) == 2
    assert store.new_version(1) == 1
    assert store.latest(0) == 2
    assert store.latest(99) == 0


def test_wts_bookkeeping():
    store = VersionStore()
    store.new_version(0)
    store.record_wts(0, 1, wts=12, epoch=0)
    assert store.wts_of(0, 1) == (0, 12)
    assert store.wts_of(0, 0) == (0, 0)  # initial memory
    assert store.write_order(0) == [(0, 12, 1)]


def test_wts_of_unrecorded_version_raises():
    store = VersionStore()
    store.new_version(0)
    with pytest.raises(KeyError):
        store.wts_of(0, 1)


# ---------------------------------------------------------------------------
# timestamp-order value check
# ---------------------------------------------------------------------------

def _store_with_wts(versions, addr, version, wts, epoch=0):
    assert versions.new_version(addr) == version
    versions.record_wts(addr, version, wts, epoch)


def test_value_check_accepts_correct_window():
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=10)
    log = AccessLog()
    log.record_load(make_load(version=0, ts=5))    # before the store
    log.record_load(make_load(version=1, ts=10))   # at the store
    log.record_load(make_load(version=1, ts=50))   # after
    assert check_gtsc_log(log, versions) == 3


def test_value_check_rejects_future_read():
    """A load must not observe a version from its logical future."""
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=10)
    log = AccessLog()
    log.record_load(make_load(version=1, ts=5))  # reads v1 before wts 10
    with pytest.raises(CoherenceViolation, match="requires version 0"):
        check_gtsc_log(log, versions)


def test_value_check_rejects_stale_read():
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=10)
    log = AccessLog()
    log.record_load(make_load(version=0, ts=20))  # v1 window covers 20
    with pytest.raises(CoherenceViolation, match="requires version 1"):
        check_gtsc_log(log, versions)


def test_value_check_handles_out_of_mint_order_timestamps():
    """Versions processed at the L2 out of mint order still validate."""
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=30)   # minted first, later wts
    assert versions.new_version(0) == 2
    versions.record_wts(0, 2, wts=12)         # minted second, earlier wts
    log = AccessLog()
    log.record_load(make_load(version=2, ts=20))
    log.record_load(make_load(version=1, ts=40))
    assert check_gtsc_log(log, versions) == 2


def test_value_check_epoch_boundaries():
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=100, epoch=0)
    assert versions.new_version(0) == 2
    versions.record_wts(0, 2, wts=5, epoch=1)  # after a reset
    log = AccessLog()
    log.record_load(make_load(version=1, ts=3, epoch=1))   # pre-v2 window
    log.record_load(make_load(version=2, ts=6, epoch=1))
    assert check_gtsc_log(log, versions) == 2


# ---------------------------------------------------------------------------
# monotonicity (SC) check
# ---------------------------------------------------------------------------

def test_monotonicity_accepts_nondecreasing():
    log = AccessLog()
    log.record_load(make_load(ts=1, cycle=10))
    log.record_store(make_store(ts=5, cycle=20))
    log.record_load(make_load(ts=5, cycle=30))
    check_warp_monotonicity(log)


def test_monotonicity_rejects_backwards_clock():
    log = AccessLog()
    log.record_store(make_store(ts=50, cycle=10))
    log.record_load(make_load(ts=20, cycle=20))
    with pytest.raises(CoherenceViolation, match="backwards"):
        check_warp_monotonicity(log)


def test_monotonicity_resets_across_epochs():
    log = AccessLog()
    log.record_store(make_store(ts=500, cycle=10, epoch=0))
    log.record_load(make_load(ts=2, cycle=20, epoch=1))  # after a reset
    check_warp_monotonicity(log)


def test_monotonicity_tracks_warps_independently():
    log = AccessLog()
    log.record_store(make_store(warp=0, ts=50, cycle=10))
    log.record_load(make_load(warp=1, ts=5, cycle=20))
    check_warp_monotonicity(log)


# ---------------------------------------------------------------------------
# single-writer check
# ---------------------------------------------------------------------------

def test_single_writer_accepts_increasing_processing_order():
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=10)
    assert versions.new_version(0) == 2
    versions.record_wts(0, 2, wts=25)
    log = AccessLog()
    log.record_store(make_store(version=1))
    assert check_single_writer_logical(log, versions) == 2


def test_single_writer_rejects_equal_timestamps():
    versions = VersionStore()
    _store_with_wts(versions, 0, 1, wts=10)
    assert versions.new_version(0) == 2
    versions.record_wts(0, 2, wts=10)  # duplicate wts: forbidden
    log = AccessLog()
    log.record_store(make_store(version=1))
    with pytest.raises(CoherenceViolation, match="processing order"):
        check_single_writer_logical(log, versions)


# ---------------------------------------------------------------------------
# AccessLog plumbing
# ---------------------------------------------------------------------------

def test_disabled_log_records_nothing():
    log = AccessLog(enabled=False)
    log.record_load(make_load())
    log.record_store(make_store())
    assert log.loads == [] and log.stores == []


def test_loads_of_filters_by_address():
    log = AccessLog()
    log.record_load(make_load(addr=1))
    log.record_load(make_load(addr=2))
    log.record_load(make_load(addr=1))
    assert len(log.loads_of(1)) == 2
