"""Tests for the energy model."""

import pytest

from repro.config import GPUConfig
from repro.energy.model import EnergyModel, EnergyParams


def test_components_present():
    model = EnergyModel(GPUConfig.small())
    energy = model.compute({}, cycles=1000)
    assert set(energy) == {"l1", "l2", "noc", "dram", "core", "static"}


def test_event_energies_scale_linearly():
    model = EnergyModel(GPUConfig.small())
    one = model.compute({"l1_access": 1}, cycles=0)
    ten = model.compute({"l1_access": 10}, cycles=0)
    assert ten["l1"] == pytest.approx(10 * one["l1"])


def test_static_energy_scales_with_cycles_and_sms():
    small = EnergyModel(GPUConfig.small())     # 4 SMs
    paper = EnergyModel(GPUConfig.paper())     # 16 SMs
    e_small = small.compute({}, cycles=1000)["static"]
    e_paper = paper.compute({}, cycles=1000)["static"]
    assert e_paper > e_small
    assert small.compute({}, cycles=2000)["static"] == \
        pytest.approx(2 * e_small)


def test_dram_reads_and_writes_both_count():
    model = EnergyModel(GPUConfig.small())
    energy = model.compute({"dram_reads": 3, "dram_writes": 2}, cycles=0)
    per = model.params.dram_access_j
    assert energy["dram"] == pytest.approx(5 * per)


def test_noc_energy_per_byte():
    model = EnergyModel(GPUConfig.small())
    energy = model.compute({"noc_bytes": 1000}, cycles=0)
    assert energy["noc"] == pytest.approx(1000 * model.params.noc_byte_j)


def test_custom_params():
    params = EnergyParams(l1_access_j=1.0)
    model = EnergyModel(GPUConfig.small(), params)
    assert model.compute({"l1_access": 2}, cycles=0)["l1"] == 2.0


def test_magnitudes_are_physically_plausible():
    """A millisecond-scale kernel should land in the millijoule-to-
    joule range for a small GPU — sanity against unit slips."""
    model = EnergyModel(GPUConfig.paper())
    counters = {
        "l1_access": 1_000_000,
        "l2_access": 300_000,
        "noc_bytes": 50_000_000,
        "dram_reads": 100_000,
        "instructions": 2_000_000,
    }
    total = sum(model.compute(counters, cycles=1_000_000).values())
    assert 1e-4 < total < 10.0
