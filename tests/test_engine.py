"""Unit tests for the event engine."""

import pytest

from repro.sim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_schedule_and_run_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "b")
    engine.schedule(2, fired.append, "a")
    engine.schedule(9, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 9


def test_same_cycle_events_fire_in_scheduling_order():
    engine = Engine()
    fired = []
    for tag in range(10):
        engine.schedule(3, fired.append, tag)
    engine.run()
    assert fired == list(range(10))


def test_zero_delay_fires_after_current_event():
    engine = Engine()
    order = []

    def outer():
        order.append("outer")
        engine.schedule(0, lambda: order.append("inner"))

    engine.schedule(1, outer)
    engine.schedule(1, lambda: order.append("sibling"))
    engine.run()
    # the zero-delay event was scheduled later, so it fires last
    assert order == ["outer", "sibling", "inner"]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Engine().schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(4, fired.append, "x")
    engine.schedule(1, fired.append, "y")
    engine.cancel(event)
    engine.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.cancel(event)
    engine.cancel(event)
    engine.run()


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(3, fired.append, "early")
    engine.schedule(10, fired.append, "late")
    engine.run(until=5)
    assert fired == ["early"]
    assert engine.now == 5
    engine.run()
    assert fired == ["early", "late"]


def test_at_schedules_absolute_time():
    engine = Engine()
    times = []
    engine.schedule(4, lambda: engine.at(7, lambda: times.append(engine.now)))
    engine.run()
    assert times == [7]


def test_peek_skips_cancelled():
    engine = Engine()
    event = engine.schedule(2, lambda: None)
    engine.schedule(5, lambda: None)
    engine.cancel(event)
    assert engine.peek() == 5


def test_step_returns_false_on_empty():
    assert Engine().step() is False


def test_max_events_guard():
    engine = Engine()

    def rearm():
        engine.schedule(1, rearm)

    engine.schedule(1, rearm)
    with pytest.raises(RuntimeError, match="exceeded"):
        engine.run(max_events=50)


def test_events_nested_scheduling_keeps_clock_monotone():
    engine = Engine()
    seen = []

    def at_time(t):
        seen.append(engine.now)
        if t < 5:
            engine.schedule(1, at_time, t + 1)

    engine.schedule(0, at_time, 0)
    engine.run()
    assert seen == sorted(seen)


def test_pending_counts_live_events():
    engine = Engine()
    keep = engine.schedule(1, lambda: None)
    drop = engine.schedule(2, lambda: None)
    engine.cancel(drop)
    assert engine.pending() == 1
    assert keep[0] == 1
    assert Engine.cancelled(drop) and not Engine.cancelled(keep)


def test_mass_cancellation_compacts_the_heap():
    """Cancelled entries must be reclaimed, not accumulate forever."""
    engine = Engine()
    fired = []
    doomed = [engine.schedule(i + 1, fired.append, i) for i in range(10_000)]
    keep = engine.schedule(50_000, fired.append, "keep")
    for event in doomed:
        engine.cancel(event)
    # compaction kicked in: far fewer entries than were scheduled
    assert len(engine._heap) < 1_000
    assert engine.pending() == 1
    engine.run()
    assert fired == ["keep"]
    assert engine.now == 50_000
    assert not engine._heap
    assert Engine.cancelled(keep)  # fired events read as no-longer-pending


def test_cancel_after_fire_is_a_noop():
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.run()
    engine.cancel(event)
    assert engine.pending() == 0


def test_determinism_of_interleaved_schedules():
    def build():
        engine = Engine()
        log = []
        for i in range(20):
            engine.schedule(i % 4, log.append, i)
        engine.run()
        return log

    assert build() == build()
