"""Tests for the two non-protocol baselines (BL and Baseline W/L1)."""

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.trace.instr import Kernel, fence, load, store


def make_machine(protocol, **overrides):
    config = GPUConfig.tiny(protocol=protocol, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


def tracker():
    done = []
    return done, lambda: done.append(True)


# ---------------------------------------------------------------------------
# BL: L1 disabled
# ---------------------------------------------------------------------------

def test_disabled_forwards_every_load_to_l2():
    machine = make_machine(Protocol.DISABLED)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    for _ in range(3):
        l1.load(warp, 0, cb)
    machine.engine.run()
    assert done == [True] * 3
    # no combining: three separate L2 accesses
    assert machine.stats.get("l2_access") == 3
    # and no L1 counters at all
    assert machine.stats.get("l1_access") == 0


def test_disabled_store_acknowledged_by_l2():
    machine = make_machine(Protocol.DISABLED)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.store(warp, 0, cb)
    machine.engine.run()
    assert done == [True]
    assert machine.log.stores[0].version == 1


def test_disabled_reads_see_latest_l2_value():
    """The BL is trivially coherent: L2 serializes everything."""
    config = GPUConfig.tiny(protocol=Protocol.DISABLED,
                            consistency=Consistency.SC)
    kernel = Kernel("bl", [
        [store(0), fence(), load(0), fence()],
        [store(0), fence(), load(0), fence()],
    ])
    gpu = GPU(config)
    gpu.run(kernel)
    log = gpu.machine.log
    # each warp's own load happens after its own (acknowledged) store,
    # so it must observe its own version or a later one
    for record in log.loads:
        own_store = next(s for s in log.stores
                         if s.warp_uid == record.warp_uid)
        assert record.version >= own_store.version


def test_disabled_every_access_crosses_noc():
    config = GPUConfig.tiny(protocol=Protocol.DISABLED)
    kernel = Kernel("bl", [[load(0), load(0), load(0), fence()]])
    stats = GPU(config).run(kernel)
    # 3 requests + 3 fills
    assert stats.counter("noc_messages") == 6


# ---------------------------------------------------------------------------
# Baseline W/L1: non-coherent
# ---------------------------------------------------------------------------

def test_noncoherent_caches_and_hits():
    machine = make_machine(Protocol.NONCOHERENT)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    l1.load(warp, 0, cb)
    machine.engine.run()
    assert machine.stats.get("l1_hit") == 1
    assert machine.stats.get("dram_reads") == 1


def test_noncoherent_lines_never_expire():
    machine = make_machine(Protocol.NONCOHERENT)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    # eons later it still hits: no lease of any kind
    done, cb = tracker()
    machine.engine.schedule(1_000_000, lambda: l1.load(warp, 0, cb))
    machine.engine.run()
    assert machine.stats.get("l1_hit") == 1
    assert done == [True]


def test_noncoherent_own_sm_sees_own_store():
    machine = make_machine(Protocol.NONCOHERENT)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    l1.store(warp, 0, lambda: None)
    machine.engine.run()
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    assert machine.log.loads[-1].version == 1


def test_noncoherent_is_indeed_incoherent_across_sms():
    """The defining property: remote stores are NOT observed while a
    stale local copy exists.  (This is why the W/L1 bar only appears
    for the second benchmark group in Figure 12.)"""
    machine = make_machine(Protocol.NONCOHERENT)
    l1_a, l1_b = machine.l1s[0], machine.l1s[1]
    wa, wb = Warp(0, []), Warp(1, [])
    l1_a.load(wa, 0, lambda: None)   # SM0 caches version 0
    machine.engine.run()
    l1_b.store(wb, 0, lambda: None)  # SM1 writes version 1
    machine.engine.run()
    l1_a.load(wa, 0, lambda: None)   # SM0 still reads version 0
    machine.engine.run()
    assert machine.log.loads[-1].version == 0


def test_noncoherent_combines_misses_in_mshr():
    machine = make_machine(Protocol.NONCOHERENT)
    l1 = machine.l1s[0]
    for uid in range(3):
        l1.load(Warp(uid, []), 0, lambda: None)
    machine.engine.run()
    assert machine.stats.get("l2_access") == 1


def test_plain_l2_evicts_dirty_lines_with_writeback():
    machine = make_machine(Protocol.DISABLED)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    sets = machine.config.l2_sets
    stride = sets * machine.config.num_l2_banks
    l1.store(warp, 0, lambda: None)
    machine.engine.run()
    for k in range(1, machine.config.l2_assoc + 1):
        l1.load(warp, k * stride, lambda: None)
        machine.engine.run()
    assert machine.memory_image.get(0) == 1
    # refetch returns the written-back version
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    assert machine.log.loads[-1].version == 1
