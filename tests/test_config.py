"""Unit tests for GPUConfig."""

import pytest

from repro.config import (
    CombiningPolicy,
    Consistency,
    GPUConfig,
    Protocol,
    VisibilityPolicy,
)


def test_paper_preset_matches_section_vi_a():
    config = GPUConfig.paper()
    assert config.num_sms == 16
    assert config.max_warps_per_sm == 48
    assert config.threads_per_warp == 32
    assert config.l1_size == 16 * 1024
    assert config.num_l2_banks == 8
    assert config.total_l2_size == 1024 * 1024  # 1MB overall


def test_default_protocol_is_gtsc_rc():
    config = GPUConfig()
    assert config.protocol is Protocol.GTSC
    assert config.consistency is Consistency.RC
    assert config.visibility is VisibilityPolicy.DELAY
    assert config.combining is CombiningPolicy.MSHR


def test_derived_geometry():
    config = GPUConfig.paper()
    assert config.l1_sets * config.l1_assoc * config.line_size \
        == config.l1_size
    assert config.l2_sets * config.l2_assoc * config.line_size \
        == config.l2_bank_size


def test_bank_interleaving_covers_all_banks():
    config = GPUConfig.paper()
    banks = {config.bank_of(addr) for addr in range(64)}
    assert banks == set(range(config.num_l2_banks))


def test_sixteen_bit_timestamps_by_default():
    assert GPUConfig().ts_max == 65535


def test_invalid_l1_geometry_rejected():
    with pytest.raises(ValueError):
        GPUConfig(l1_size=1000)  # not a multiple of assoc*line


def test_invalid_l2_geometry_rejected():
    with pytest.raises(ValueError):
        GPUConfig(l2_bank_size=1000)


def test_nonpositive_lease_rejected():
    with pytest.raises(ValueError):
        GPUConfig(lease=0)


def test_ts_max_must_exceed_lease():
    with pytest.raises(ValueError):
        GPUConfig(lease=100, ts_max=150)


def test_with_changes_returns_new_frozen_instance():
    base = GPUConfig.small()
    changed = base.with_changes(lease=16)
    assert changed.lease == 16
    assert base.lease != 16 or base.lease == 10
    with pytest.raises(Exception):
        base.lease = 99  # frozen dataclass


def test_presets_accept_overrides():
    config = GPUConfig.small(protocol=Protocol.TC,
                             consistency=Consistency.SC)
    assert config.protocol is Protocol.TC
    assert config.consistency is Consistency.SC


def test_tiny_preset_is_smaller_than_small():
    tiny, small = GPUConfig.tiny(), GPUConfig.small()
    assert tiny.num_sms < small.num_sms
    assert tiny.l1_size < small.l1_size


def test_describe_mentions_protocol_and_lease():
    text = GPUConfig.small(lease=12).describe()
    assert "gtsc" in text
    assert "lease=12" in text
