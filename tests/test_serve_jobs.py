"""The durable job store: journal, leases, expiry, crash replay."""

from __future__ import annotations

import json

import pytest

from repro.serve.jobs import (DONE, FAILED, LEASED, PENDING, JobStore)

SPEC = {"workload": "HS", "protocol": "gtsc", "consistency": "rc",
        "preset": "tiny", "scale": 0.1, "seed": 7, "overrides": {}}


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path, clock):
    s = JobStore(str(tmp_path / "jobs.jsonl"), clock=clock)
    yield s
    s.close()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def test_submit_lease_complete(store):
    job = store.submit(SPEC, "key-a")
    assert job.state == PENDING and job.id == "j000001"
    leased = store.lease("w0", duration=60)
    assert leased.id == job.id
    assert leased.state == LEASED and leased.attempts == 1
    store.complete(job.id)
    assert store.get(job.id).state == DONE
    assert store.counts() == {"pending": 0, "leased": 0,
                              "done": 1, "failed": 0}


def test_submit_deduplicates_active_key(store):
    first = store.submit(SPEC, "key-a")
    second = store.submit(SPEC, "key-a")
    assert second.id == first.id
    assert store.active_count() == 1
    # a *finished* job no longer blocks a resubmit
    store.lease("w0", duration=60)
    store.complete(first.id)
    third = store.submit(SPEC, "key-a")
    assert third.id != first.id


def test_lease_order_is_submission_order(store):
    a = store.submit(SPEC, "key-a")
    b = store.submit(SPEC, "key-b")
    assert store.lease("w0", duration=60).id == a.id
    assert store.lease("w1", duration=60).id == b.id
    assert store.lease("w2", duration=60) is None


def test_fail_is_terminal_and_frees_the_key(store):
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=60)
    store.fail(job.id, "boom")
    failed = store.get(job.id)
    assert failed.state == FAILED and failed.error == "boom"
    assert store.active_for("key-a") is None


def test_requeue_honours_not_before(store, clock):
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=60)
    store.requeue(job.id, not_before=clock.now + 30)
    assert store.lease("w0", duration=60) is None     # backing off
    clock.advance(31)
    assert store.lease("w0", duration=60).id == job.id


def test_finish_requires_a_lease(store):
    job = store.submit(SPEC, "key-a")
    with pytest.raises(ValueError):
        store.complete(job.id)
    with pytest.raises(ValueError):
        store.fail(job.id, "nope")


# ---------------------------------------------------------------------------
# lease expiry
# ---------------------------------------------------------------------------

def test_expired_lease_is_requeued_to_another_worker(store, clock):
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=60)
    clock.advance(30)
    assert store.lease("w1", duration=60) is None     # still held
    clock.advance(31)                                 # deadline passed
    taken = store.lease("w1", duration=60)
    assert taken.id == job.id
    assert taken.worker == "w1" and taken.attempts == 2


def test_completing_after_expiry_reassignment_is_refused(store, clock):
    """The slow first worker cannot complete a job it lost."""
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=10)
    clock.advance(11)
    store.lease("w1", duration=60)
    store.complete(job.id)            # w1's completion wins
    assert store.get(job.id).state == DONE
    with pytest.raises(ValueError):
        store.complete(job.id)        # w0 waking up late


# ---------------------------------------------------------------------------
# durability: journal replay
# ---------------------------------------------------------------------------

def test_replay_restores_every_state(tmp_path, clock):
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    done = store.submit(SPEC, "key-done")
    store.lease("w0", duration=60)
    store.complete(done.id)
    failed = store.submit(SPEC, "key-failed")
    store.lease("w0", duration=60)
    store.fail(failed.id, "exploded")
    pending = store.submit(SPEC, "key-pending")
    store.close()

    reopened = JobStore(path, clock=clock)
    assert reopened.get(done.id).state == DONE
    assert reopened.get(failed.id).state == FAILED
    assert reopened.get(failed.id).error == "exploded"
    assert reopened.get(pending.id).state == PENDING
    assert reopened.get(pending.id).spec == SPEC
    # ids keep counting from where the journal left off
    assert reopened.submit(SPEC, "key-new").id == "j000004"
    reopened.close()


def test_killed_workers_job_is_requeued_on_reopen(tmp_path, clock):
    """A process killed mid-execution loses no jobs: the LEASED entry
    is requeued at the next open, even before its deadline."""
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=3600)
    store.close()                      # "kill -9" between lease+done

    reopened = JobStore(path, clock=clock)
    recovered = reopened.get(job.id)
    assert recovered.state == PENDING
    assert reopened.lease("w1", duration=60).id == job.id
    reopened.close()


def test_torn_trailing_line_is_tolerated(tmp_path, clock):
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    job = store.submit(SPEC, "key-a")
    store.close()
    with open(path, "a") as handle:
        handle.write('{"op": "lease", "id": "j0000')   # torn write
    with pytest.warns(RuntimeWarning, match="unreadable record"):
        reopened = JobStore(path, clock=clock)
    assert reopened.get(job.id).state == PENDING
    reopened.close()


def test_replay_loses_and_duplicates_nothing(tmp_path, clock):
    """Crash-at-any-point invariant, exhaustively over journal
    prefixes: replaying the first N lines always yields a queue whose
    jobs are exactly the submitted ones (no loss, no duplicates) in a
    legal state."""
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    for index in range(4):
        store.submit(SPEC, f"key-{index}")
    for _ in range(3):
        job = store.lease("w0", duration=60)
        store.complete(job.id)
    store.close()
    lines = open(path).read().splitlines()

    for cut in range(len(lines) + 1):
        partial = tmp_path / f"cut-{cut}.jsonl"
        partial.write_text("\n".join(lines[:cut]) + "\n")
        replayed = JobStore(str(partial), clock=clock)
        jobs = replayed.jobs()
        assert len(jobs) == len({j.id for j in jobs})   # no dupes
        submitted = sum(1 for line in lines[:cut]
                        if json.loads(line)["op"] == "submit")
        assert len(jobs) == submitted                   # no loss
        assert all(j.state in (PENDING, DONE) for j in jobs)
        replayed.close()


def test_compact_shrinks_and_preserves(tmp_path, clock):
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    for index in range(5):
        store.submit(SPEC, f"key-{index}")
        job = store.lease("w0", duration=60)
        store.complete(job.id)
    before = store.jobs()
    lines_before = len(open(path).read().splitlines())
    store.compact()
    lines_after = len(open(path).read().splitlines())
    assert lines_after == 5 < lines_before
    assert [j.to_dict() for j in store.jobs()] == \
        [j.to_dict() for j in before]
    # the compacted journal replays identically
    store.close()
    reopened = JobStore(path, clock=clock)
    assert [j.to_dict() for j in reopened.jobs()] == \
        [j.to_dict() for j in before]
    reopened.close()


# ---------------------------------------------------------------------------
# heartbeats
# ---------------------------------------------------------------------------

def test_heartbeat_extends_the_deadline(store, clock):
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=60)
    clock.advance(50)
    store.heartbeat(job.id, "w0", duration=60)
    clock.advance(50)                       # past the original deadline
    assert store.lease("w1", duration=60) is None     # still held
    clock.advance(61)
    assert store.lease("w1", duration=60).id == job.id


def test_heartbeat_rejects_lost_or_foreign_leases(store, clock):
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=10)
    with pytest.raises(ValueError, match="not leased by"):
        store.heartbeat(job.id, "w1", duration=10)    # wrong worker
    clock.advance(11)
    store.lease("w1", duration=60)                    # stolen
    with pytest.raises(ValueError, match="not leased by"):
        store.heartbeat(job.id, "w0", duration=10)    # lost lease
    with pytest.raises(KeyError):
        store.heartbeat("j999999", "w0", duration=10)


def test_heartbeats_are_not_journalled(tmp_path, clock):
    """A dispatcher restart requeues leases regardless, so deadline
    extensions have nothing to survive into — and the journal should
    not grow by one line per heartbeat of a long simulation."""
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(path, clock=clock)
    job = store.submit(SPEC, "key-a")
    store.lease("w0", duration=60)
    lines_before = len(open(path).read().splitlines())
    for _ in range(100):
        store.heartbeat(job.id, "w0", duration=60)
    assert len(open(path).read().splitlines()) == lines_before
    store.close()


# ---------------------------------------------------------------------------
# atomic backpressure
# ---------------------------------------------------------------------------

def test_submit_limit_refuses_then_admits(store):
    assert store.submit(SPEC, "key-a", limit=2) is not None
    assert store.submit(SPEC, "key-b", limit=2) is not None
    assert store.submit(SPEC, "key-c", limit=2) is None   # full
    # dedup wins over the limit: attaching costs no capacity
    assert store.submit(SPEC, "key-a", limit=2).id == "j000001"
    # finishing a job frees its slot
    job = store.lease("w0", duration=60)
    store.complete(job.id)
    assert store.submit(SPEC, "key-c", limit=2) is not None


# ---------------------------------------------------------------------------
# startup auto-compaction
# ---------------------------------------------------------------------------

def _churn(path, clock, jobs: int) -> None:
    store = JobStore(path, clock=clock, compact_threshold=None)
    for index in range(jobs):
        store.submit(SPEC, f"key-{index}")
        job = store.lease("w0", duration=60)
        store.complete(job.id)
    store.close()


def test_startup_compaction_over_threshold(tmp_path, clock, capsys):
    path = str(tmp_path / "jobs.jsonl")
    _churn(path, clock, jobs=6)            # 18 records, 6 live jobs
    reopened = JobStore(path, clock=clock, compact_threshold=10)
    message = capsys.readouterr().err
    assert "compacted" in message and "12 stale record(s)" in message
    assert len(open(path).read().splitlines()) == 6
    assert len(reopened.jobs()) == 6       # nothing lost
    reopened.close()


def test_startup_compaction_below_threshold_is_skipped(tmp_path,
                                                       clock, capsys):
    path = str(tmp_path / "jobs.jsonl")
    _churn(path, clock, jobs=2)            # only 4 stale records
    lines = len(open(path).read().splitlines())
    reopened = JobStore(path, clock=clock, compact_threshold=10)
    assert "compacted" not in capsys.readouterr().err
    assert len(open(path).read().splitlines()) == lines
    reopened.close()
