"""Unit tests for the DRAM partition model."""

import pytest

from repro.mem.dram import DRAMPartition
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector


def make_dram(latency=100, bandwidth=16, line=128):
    engine = Engine()
    stats = StatsCollector()
    dram = DRAMPartition(engine, stats, latency, bandwidth, line)
    return engine, stats, dram


def test_single_read_latency():
    engine, stats, dram = make_dram(latency=100, bandwidth=16, line=128)
    done = []
    dram.read(0, lambda: done.append(engine.now))
    engine.run()
    # 8 cycles transfer + 100 latency
    assert done == [108]
    assert stats.get("dram_reads") == 1


def test_back_to_back_reads_serialize_on_bandwidth():
    engine, stats, dram = make_dram(latency=100, bandwidth=16, line=128)
    done = []
    dram.read(0, lambda: done.append(engine.now))
    dram.read(1, lambda: done.append(engine.now))
    engine.run()
    assert done == [108, 116]


def test_write_consumes_bandwidth_only():
    engine, stats, dram = make_dram(latency=100, bandwidth=16, line=128)
    done = []
    dram.write(5)
    dram.read(0, lambda: done.append(engine.now))
    engine.run()
    # the write occupied the first 8 transfer cycles
    assert done == [116]
    assert stats.get("dram_writes") == 1


def test_idle_gap_resets_service_point():
    engine, stats, dram = make_dram(latency=10, bandwidth=128, line=128)
    done = []
    dram.read(0, lambda: done.append(engine.now))
    engine.run()
    assert engine.now == 11
    engine.schedule(50, lambda: dram.read(
        1, lambda: done.append(engine.now)))
    engine.run()
    # issued at cycle 61: one transfer cycle + 10 latency
    assert done == [11, 72]


def test_completion_order_matches_issue_order():
    engine, stats, dram = make_dram()
    done = []
    for i in range(4):
        dram.read(i, lambda i=i: done.append(i))
    engine.run()
    assert done == [0, 1, 2, 3]


def test_bandwidth_must_be_positive():
    with pytest.raises(ValueError):
        DRAMPartition(Engine(), StatsCollector(), 10, 0, 128)
