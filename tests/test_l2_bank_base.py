"""Tests for the shared L2-bank plumbing (service pipeline, miss path,
MSHR back-pressure) that every protocol inherits."""

import pytest

from repro.config import GPUConfig, Protocol
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.protocols.plain import MemRd


def make_machine(**overrides):
    config = GPUConfig.tiny(protocol=Protocol.DISABLED, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


class Capture:
    def __init__(self):
        self.times = []

    def receive(self, msg):
        self.times.append(msg)


def test_bank_pipeline_serializes_by_service_time():
    machine = make_machine(l2_service=4)
    bank = machine.l2_banks[0]
    cap = Capture()
    machine.l1s[0] = cap
    arrivals = []

    # bank controllers use __slots__, so trace _process on the class
    cls = type(bank)
    original = cls._process

    def traced(self, msg):
        arrivals.append(machine.engine.now)
        original(self, msg)

    cls._process = traced
    try:
        for _ in range(3):
            bank.receive(MemRd(0, 0))
        machine.engine.run()
    finally:
        cls._process = original
    # processing instants are spaced by the service occupancy
    assert arrivals[1] - arrivals[0] == 4
    assert arrivals[2] - arrivals[1] == 4


def test_bank_access_latency_applied():
    machine = make_machine(l2_latency=17)
    bank = machine.l2_banks[0]
    processed = []
    cls = type(bank)
    original = cls._process
    cls._process = lambda self, msg: (processed.append(machine.engine.now),
                                      original(self, msg))
    try:
        machine.l1s[0] = Capture()
        bank.receive(MemRd(0, 0))
        machine.engine.run()
    finally:
        cls._process = original
    assert processed[0] >= 17


def test_concurrent_misses_to_one_line_fetch_once():
    machine = make_machine()
    bank = machine.l2_banks[0]
    machine.l1s[0] = Capture()
    for _ in range(4):
        bank.receive(MemRd(0, 0))
    machine.engine.run()
    assert machine.stats.get("dram_reads") == 1
    assert len(machine.l1s[0].times) == 4  # all four got fills


def test_l2_mshr_backpressure_retries():
    machine = make_machine(l2_mshr_entries=2)
    bank = machine.l2_banks[0]
    machine.l1s[0] = Capture()
    # 6 distinct lines on one bank: misses exceed the 2-entry MSHR
    for k in range(6):
        bank.receive(MemRd(k * machine.config.num_l2_banks, 0))
    machine.engine.run()
    assert machine.stats.get("l2_mshr_stall") > 0
    assert len(machine.l1s[0].times) == 6  # everyone eventually served


def test_miss_path_counts():
    machine = make_machine()
    bank = machine.l2_banks[0]
    machine.l1s[0] = Capture()
    bank.receive(MemRd(0, 0))
    machine.engine.run()
    assert machine.stats.get("l2_access") == 1
    assert machine.stats.get("l2_miss") == 1
    # the miss is replayed through the hit path after the DRAM fill
    assert machine.stats.get("l2_hit") == 1
    bank.receive(MemRd(0, 0))
    machine.engine.run()
    assert machine.stats.get("l2_hit") == 2
    assert machine.stats.get("l2_miss") == 1
