"""Unit tests for instruction and kernel records."""

import pytest

from repro.trace.instr import (
    COMPUTE,
    FENCE,
    LOAD,
    STORE,
    Instr,
    Kernel,
    compute,
    fence,
    load,
    store,
)


def test_constructors_set_opcodes():
    assert load(1).op == LOAD
    assert store(2).op == STORE
    assert fence().op == FENCE
    assert compute(3).op == COMPUTE


def test_load_carries_multiple_coalesced_addresses():
    instr = load(4, 5, 6)
    assert instr.addrs == (4, 5, 6)
    assert instr.is_memory


def test_fence_and_compute_are_not_memory():
    assert not fence().is_memory
    assert not compute(1).is_memory


def test_memory_instr_requires_addresses():
    with pytest.raises(ValueError):
        Instr(LOAD)
    with pytest.raises(ValueError):
        Instr(STORE)


def test_compute_requires_positive_cycles():
    with pytest.raises(ValueError):
        compute(0)


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError):
        Instr("jump")


def test_instr_is_immutable():
    instr = load(1)
    with pytest.raises(Exception):
        instr.op = STORE


def test_kernel_counts():
    kernel = Kernel("k", [[load(0), store(1)], [compute(2)]])
    assert kernel.num_warps == 2
    assert kernel.total_instructions == 3


def test_kernel_footprint():
    kernel = Kernel("k", [[load(0, 3), store(3)], [load(7)]])
    assert kernel.memory_footprint() == {0, 3, 7}


def test_kernel_validate_rejects_empty():
    with pytest.raises(ValueError):
        Kernel("k", []).validate()
    with pytest.raises(ValueError):
        Kernel("k", [[load(0)], []]).validate()


def test_kernel_validate_accepts_wellformed():
    Kernel("k", [[load(0)], [fence()]]).validate()
