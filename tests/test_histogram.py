"""Tests for the latency histogram machinery."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.stats.histogram import Histogram, HistogramSet

from tests.conftest import random_kernel, run_gpu


def test_bucket_of():
    assert Histogram.bucket_of(0) == 0
    assert Histogram.bucket_of(1) == 1
    assert Histogram.bucket_of(2) == 2
    assert Histogram.bucket_of(3) == 2
    assert Histogram.bucket_of(4) == 3
    assert Histogram.bucket_of(1023) == 10


def test_bucket_range_roundtrip():
    for value in (0, 1, 2, 5, 17, 100, 9999):
        low, high = Histogram.bucket_range(Histogram.bucket_of(value))
        assert low <= value <= high


def test_negative_values_rejected():
    with pytest.raises(ValueError):
        Histogram("x").add(-1)


def test_mean_and_max():
    histogram = Histogram("lat")
    for value in (10, 20, 30):
        histogram.add(value)
    assert histogram.mean == pytest.approx(20.0)
    assert histogram.max_value == 30
    assert histogram.count == 3


def test_weighted_add():
    histogram = Histogram("lat")
    histogram.add(8, count=5)
    assert histogram.count == 5
    assert histogram.total == 40


def test_percentile_bounds():
    histogram = Histogram("lat")
    for _ in range(99):
        histogram.add(4)
    histogram.add(1000)
    assert histogram.percentile(0.5) >= 4
    assert histogram.percentile(1.0) >= 1000
    with pytest.raises(ValueError):
        histogram.percentile(0.0)


def test_empty_histogram():
    histogram = Histogram("lat")
    assert histogram.mean == 0.0
    assert histogram.percentile(0.9) == 0
    assert "empty" in histogram.render()


def test_render_contains_buckets():
    histogram = Histogram("lat")
    histogram.add(3)
    histogram.add(100)
    text = histogram.render()
    assert "2-3" in text
    assert "#" in text


def test_histogram_set_lazily_creates():
    hists = HistogramSet()
    assert "x" not in hists
    hists.add("x", 5)
    assert "x" in hists
    assert hists.get("x").count == 1
    assert hists.names() == ["x"]


def test_runs_expose_latency_histograms():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    _, stats = run_gpu(config, random_kernel(1, warps=4, length=40))
    loads = stats.histogram("load_latency")
    stores = stats.histogram("store_latency")
    assert loads.count > 0 and stores.count > 0
    assert loads.mean > 0


def test_tc_strong_store_latency_tail_exceeds_gtsc():
    """TC-Strong's lease waits show up as a store-latency tail that
    G-TSC simply does not have."""
    kernel = random_kernel(2, warps=4, length=40, lines=4)
    config_g = GPUConfig.tiny(protocol=Protocol.GTSC,
                              consistency=Consistency.SC)
    config_t = GPUConfig.tiny(protocol=Protocol.TC,
                              consistency=Consistency.SC)
    _, gtsc = run_gpu(config_g, kernel)
    _, tc = run_gpu(config_t, kernel)
    g_tail = gtsc.histogram("store_latency").percentile(0.95)
    t_tail = tc.histogram("store_latency").percentile(0.95)
    assert t_tail > g_tail
