"""The canonical counter registry must cover everything emitted.

A smoke run of every protocol is driven end to end and each counter
the simulator bumped is checked against :mod:`repro.stats.names` —
so a typo'd or undocumented ``stats.add("new_counter")`` anywhere in
the code base fails here instead of silently fragmenting the stats
vocabulary.
"""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.stats import names
from repro.workloads import build_workload


def smoke(protocol, consistency=Consistency.RC, **overrides):
    config = GPUConfig.tiny(protocol=protocol, consistency=consistency,
                            **overrides)
    kernel = build_workload("STN", scale=0.3, seed=7)
    return GPU(config).run(kernel)


@pytest.mark.parametrize("protocol", list(Protocol))
def test_every_emitted_counter_is_registered(protocol):
    stats = smoke(protocol)
    rogue = names.unregistered(stats.counters)
    assert not rogue, (f"{protocol.value} emitted unregistered "
                       f"counter(s): {sorted(rogue)}")


def test_overflow_counters_are_registered():
    stats = smoke(Protocol.GTSC, ts_max=256)
    assert stats.counter("ts_overflows") > 0
    assert not names.unregistered(stats.counters)


def test_every_emitted_histogram_is_registered():
    stats = smoke(Protocol.GTSC)
    assert set(stats.histograms) <= names.HISTOGRAMS


def test_dynamic_noc_families_are_recognised():
    assert names.is_registered("noc_bytes_data")
    assert names.is_registered("noc_bytes_ctrl")
    # the bare prefix is not itself a counter in the family
    assert not names.is_registered("noc_bytes_")


def test_unknown_names_are_flagged():
    assert names.unregistered(["l1_hit", "totally_made_up"]) == \
        {"totally_made_up"}


def test_registry_matches_the_sampled_defaults():
    from repro.obs import DEFAULT_COUNTERS
    assert not names.unregistered(DEFAULT_COUNTERS)
