"""Cross-protocol equivalence on race-free kernels.

When a kernel has no data races (every line is written by at most one
warp, and readers are ordered by fences or don't overlap writers), the
final memory state is uniquely determined — so every coherent
protocol, and even the non-coherent L1 for the private-data cases,
must produce identical final versions.  Timing may differ wildly;
values may not.
"""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.trace.instr import Kernel, compute, fence, load, store
from repro.workloads import INDEPENDENT_NAMES, build_workload

ALL = [Protocol.GTSC, Protocol.TC, Protocol.DISABLED,
       Protocol.NONCOHERENT]
COHERENT = [Protocol.GTSC, Protocol.TC, Protocol.DISABLED]


def final_state(protocol, consistency, kernel, lines):
    config = GPUConfig.tiny(protocol=protocol, consistency=consistency)
    gpu = GPU(config)
    gpu.run(kernel)
    return [gpu.machine.versions.latest(addr) for addr in range(lines)]


def private_kernel():
    """Each warp owns a disjoint line range: zero sharing."""
    traces = []
    for w in range(4):
        base = w * 4
        trace = []
        for step in range(6):
            trace.append(load(base + step % 4))
            trace.append(compute(2))
            trace.append(store(base + step % 4))
        trace.append(fence())
        traces.append(trace)
    return Kernel("private", traces), 16


def single_writer_kernel():
    """One producer, three consumers: shared but race-free writes."""
    producer = []
    for step in range(8):
        producer.append(store(step))
        producer.append(fence())
    consumers = [[load(i % 8), compute(3), load((i + 2) % 8), fence()]
                 for i in range(3)]
    return Kernel("spsc", [producer] + consumers), 8


@pytest.mark.parametrize("consistency", [Consistency.SC, Consistency.RC])
def test_private_kernel_final_state_identical_everywhere(consistency):
    kernel, lines = private_kernel()
    states = [final_state(p, consistency, kernel, lines) for p in ALL]
    assert all(state == states[0] for state in states[1:])
    # 6 stores round-robin over each warp's 4 lines: 2,2,1,1 versions
    assert states[0] == [2, 2, 1, 1] * 4


@pytest.mark.parametrize("consistency", [Consistency.SC, Consistency.RC])
def test_single_writer_final_state_identical_for_coherent(consistency):
    kernel, lines = single_writer_kernel()
    states = [final_state(p, consistency, kernel, lines)
              for p in COHERENT]
    assert all(state == states[0] for state in states[1:])
    assert states[0] == [1] * 8


@pytest.mark.parametrize("name", INDEPENDENT_NAMES)
def test_independent_workloads_same_final_state_across_protocols(name):
    kernel = build_workload(name, scale=0.1, seed=3)
    lines = sorted(kernel.memory_footprint())
    states = []
    for protocol in ALL:
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=Consistency.RC)
        gpu = GPU(config)
        gpu.run(kernel)
        states.append([gpu.machine.versions.latest(a) for a in lines])
    assert all(state == states[0] for state in states[1:])


def test_store_counts_conserved_across_protocols():
    """Every protocol performs exactly the stores the trace contains."""
    kernel, lines = private_kernel()
    expected = sum(1 for t in kernel.warp_traces for i in t
                   if i.op == "store")
    for protocol in ALL:
        config = GPUConfig.tiny(protocol=protocol)
        gpu = GPU(config)
        gpu.run(kernel)
        assert len(gpu.machine.log.stores) == expected
