"""Tests for the extension features: adaptive leases, multi-kernel
sequences, the coalescing unit, and the IRIW litmus shape."""

import random

import pytest

from repro.config import Consistency, GPUConfig, LeasePolicy, Protocol
from repro.gpu.coalescer import (
    coalesce,
    coalesced_load,
    coalesced_store,
    strided_access,
    unit_stride_access,
)
from repro.gpu.gpu import GPU
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.trace.instr import Kernel, compute, fence, load, store
from repro.workloads import build_workload
from repro.workloads.litmus import iriw, iriw_outcome

from tests.conftest import random_kernel, run_and_check


# ---------------------------------------------------------------------------
# adaptive leases (Tardis-2.0-inspired extension)
# ---------------------------------------------------------------------------

def _renewal_machine(policy):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, lease_policy=policy,
                            lease_max_factor=8)
    machine = Machine(config)
    build_protocol(machine)
    return machine


@pytest.mark.parametrize("policy", [LeasePolicy.FIXED,
                                    LeasePolicy.ADAPTIVE])
def test_lease_policies_grant_coverage(policy):
    machine = _renewal_machine(policy)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    warp.ts = 100
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    assert l1.cache.lookup(0).rts >= 100


def test_adaptive_lease_grows_with_renewal_streak():
    machine = _renewal_machine(LeasePolicy.ADAPTIVE)
    l1 = machine.l1s[0]
    bank = machine.l2_banks[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    grants = []
    for step in range(4):
        warp.ts = l1.cache.lookup(0).rts + 1   # force a renewal
        l1.load(warp, 0, lambda: None)
        machine.engine.run()
        grants.append(l1.cache.lookup(0).rts - warp.ts)
    # the granted slack grows as the streak builds, up to the cap
    assert grants[-1] > grants[0]
    assert grants[-1] <= machine.config.lease * \
        machine.config.lease_max_factor


def test_adaptive_streak_resets_on_write():
    machine = _renewal_machine(LeasePolicy.ADAPTIVE)
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    for _ in range(3):
        warp.ts = l1.cache.lookup(0).rts + 1
        l1.load(warp, 0, lambda: None)
        machine.engine.run()
    line = machine.l2_banks[0].cache.lookup(0)
    assert line.renewals >= 3
    l1.store(warp, 0, lambda: None)
    machine.engine.run()
    assert machine.l2_banks[0].cache.lookup(0).renewals == 0


def test_adaptive_lease_reduces_renewals_on_read_mostly_workload():
    def renewals(policy):
        config = GPUConfig.small(protocol=Protocol.GTSC,
                                 consistency=Consistency.RC,
                                 lease_policy=policy)
        kernel = build_workload("BH", scale=0.4, seed=2018)
        stats = GPU(config, record_accesses=False).run(kernel)
        return stats.counter("l2_renewals"), stats.cycles

    fixed_renewals, fixed_cycles = renewals(LeasePolicy.FIXED)
    adaptive_renewals, adaptive_cycles = renewals(LeasePolicy.ADAPTIVE)
    assert adaptive_renewals < fixed_renewals
    # and it must not cost performance
    assert adaptive_cycles <= fixed_cycles * 1.05


def test_adaptive_lease_stays_coherent():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            lease_policy=LeasePolicy.ADAPTIVE)
    for seed in (1, 4):
        run_and_check(config, random_kernel(seed, warps=4, length=60))


def test_adaptive_lease_coherent_under_overflow():
    config = GPUConfig.tiny(protocol=Protocol.GTSC, ts_max=2047,
                            lease_policy=LeasePolicy.ADAPTIVE)
    kernel = random_kernel(7, warps=4, length=100, lines=4, p_store=0.5)
    gpu, stats = run_and_check(config, kernel)


# ---------------------------------------------------------------------------
# multi-kernel sequences
# ---------------------------------------------------------------------------

def test_sequence_returns_per_kernel_stats():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    kernels = [
        Kernel("k1", [[load(0), store(0), fence()]]),
        Kernel("k2", [[load(0), fence()]]),
    ]
    results = gpu.run_sequence(kernels)
    assert len(results) == 2
    assert all(r.cycles > 0 for r in results)
    assert "k1" in results[0].config_desc
    assert "k2" in results[1].config_desc


def test_sequence_flushes_l1_between_kernels():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    kernels = [
        Kernel("k1", [[load(0), fence()]]),
        Kernel("k2", [[load(0), fence()]]),
    ]
    results = gpu.run_sequence(kernels)
    # the second kernel's load must MISS (L1 was flushed) but be
    # served from the L2, not DRAM (the L2 keeps its data)
    assert results[1].counter("l1_hit") == 0
    assert results[1].counter("dram_reads") == 0


def test_sequence_resets_timestamps_at_boundaries():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    writer = [store(0) for _ in range(5)] + [fence()]
    kernels = [Kernel("k1", [list(writer)]), Kernel("k2", [list(writer)])]
    results = gpu.run_sequence(kernels)
    domain = gpu.machine.timestamp_domain
    assert domain.epoch == 2  # one reset per kernel boundary
    assert sum(r.counter("kernel_ts_resets") for r in results) == 2


def test_sequence_values_persist_across_kernels():
    """Data written by kernel 1 is visible to kernel 2."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    kernels = [
        Kernel("producer", [[store(0), fence()]]),
        Kernel("consumer", [[load(0), fence()]]),
    ]
    gpu.run_sequence(kernels)
    final_load = gpu.machine.log.loads[-1]
    assert final_load.version == 1


def test_sequence_warp_uids_do_not_collide():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    kernels = [Kernel("k1", [[load(0), fence()]] * 2),
               Kernel("k2", [[load(1), fence()]] * 2)]
    gpu.run_sequence(kernels)
    uids = {r.warp_uid for r in gpu.machine.log.loads}
    assert len(uids) == 4


# ---------------------------------------------------------------------------
# coalescing unit
# ---------------------------------------------------------------------------

def test_unit_stride_coalesces_perfectly():
    result = unit_stride_access(base=0, threads=32, element_size=4,
                                line_size=128)
    assert result.line_addrs == [0]
    assert result.degree == 32.0


def test_unit_stride_across_line_boundary():
    result = unit_stride_access(base=64, threads=32, element_size=4,
                                line_size=128)
    assert result.line_addrs == [0, 1]
    assert result.transactions == 2


def test_large_stride_is_fully_divergent():
    result = strided_access(base=0, threads=8, stride=256, line_size=128)
    assert result.transactions == 8
    assert result.degree == 1.0


def test_duplicate_thread_addresses_merge():
    result = coalesce([0, 4, 8, 0, 4], line_size=128)
    assert result.line_addrs == [0]
    assert result.thread_count == 5


def test_coalesced_instructions():
    instr = coalesced_load([0, 4, 200], line_size=128)
    assert instr.addrs == (0, 1)
    instr = coalesced_store([500], line_size=128)
    assert instr.addrs == (3,)


def test_coalesce_rejects_bad_line_size():
    with pytest.raises(ValueError):
        coalesce([0], line_size=0)


def test_coalesced_trace_runs_end_to_end():
    line = 128
    trace = [
        coalesced_load([i * 4 for i in range(32)], line),
        compute(3),
        coalesced_store([4096 + i * 4 for i in range(32)], line),
        fence(),
    ]
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    run_and_check(config, Kernel("coal", [trace]))


# ---------------------------------------------------------------------------
# IRIW litmus
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC,
                                      Protocol.DISABLED])
def test_iriw_forbidden_under_sc(protocol):
    """Write atomicity under SC: readers never disagree on the order
    of two independent writes."""
    for seed in range(12):
        kernel = iriw(random.Random(seed))
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(kernel)
        (r2_x, r2_y), (r3_y, r3_x) = iriw_outcome(gpu.machine.log)
        r2_split = r2_x >= 1 and r2_y == 0   # R2: X before Y
        r3_split = r3_y >= 1 and r3_x == 0   # R3: Y before X
        assert not (r2_split and r3_split), (
            f"{protocol} seed {seed}: IRIW violation"
        )
