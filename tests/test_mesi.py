"""Tests for the conventional MSI directory protocol (Section II-C).

Controller-level checks of the directory state machine plus
system-level coherence: MESI is the paper's motivating strawman, but
it still has to be *correct* to make the traffic comparison honest.
"""

import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.protocols.mesi import _MODIFIED, _SHARED
from repro.trace.instr import Kernel, atomic, compute, fence, load, store
from repro.workloads.litmus import (
    iriw,
    iriw_outcome,
    message_passing,
    mp_outcomes,
    observed_versions,
    single_location,
    store_buffering,
)

from tests.conftest import random_kernel


def make_machine(**overrides):
    config = GPUConfig.tiny(protocol=Protocol.MESI, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


def tracker():
    done = []
    return done, lambda: done.append(True)


# ---------------------------------------------------------------------------
# controller-level
# ---------------------------------------------------------------------------

def test_load_installs_shared():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    assert done == [True]
    assert l1.cache.lookup(0).expiry == _SHARED


def test_store_acquires_ownership_then_hits_locally():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.store(warp, 0, cb)
    machine.engine.run()
    assert done == [True]
    assert l1.cache.lookup(0).expiry == _MODIFIED
    # the second store is a pure local hit: no new directory traffic
    l2_before = machine.stats.get("l2_access")
    l1.store(warp, 0, cb)
    machine.engine.run()
    assert done == [True, True]
    assert machine.stats.get("l2_access") == l2_before
    assert machine.stats.get("l1_store_hit_m") == 1


def test_write_invalidates_remote_sharers():
    machine = make_machine()
    reader_l1, writer_l1 = machine.l1s[0], machine.l1s[1]
    reader, writer = Warp(0, []), Warp(1, [])
    reader_l1.load(reader, 0, lambda: None)
    machine.engine.run()
    assert reader_l1.cache.lookup(0) is not None
    writer_l1.store(writer, 0, lambda: None)
    machine.engine.run()
    # the reader's copy is gone and the directory counted the Inv
    assert reader_l1.cache.lookup(0) is None
    assert machine.stats.get("dir_invalidations") == 1
    assert machine.stats.get("l1_invalidations_received") == 1


def test_read_recalls_modified_owner():
    machine = make_machine()
    writer_l1, reader_l1 = machine.l1s[0], machine.l1s[1]
    writer, reader = Warp(0, []), Warp(1, [])
    writer_l1.store(writer, 0, lambda: None)
    machine.engine.run()
    done, cb = tracker()
    reader_l1.load(reader, 0, cb)
    machine.engine.run()
    assert done == [True]
    assert machine.stats.get("dir_recalls") == 1
    # the reader observed the writer's value
    assert machine.log.loads[-1].version == 1
    # and the owner's copy was downgraded out of M
    owner_line = writer_l1.cache.lookup(0)
    assert owner_line is None or owner_line.expiry != _MODIFIED


def test_silent_share_eviction_gets_harmless_invalidation():
    machine = make_machine()
    l1_a, l1_b = machine.l1s[0], machine.l1s[1]
    wa, wb = Warp(0, []), Warp(1, [])
    l1_a.load(wa, 0, lambda: None)
    machine.engine.run()
    l1_a.cache.invalidate(0)          # silent S eviction
    l1_b.store(wb, 0, lambda: None)   # directory still thinks A shares
    machine.engine.run()
    assert machine.stats.get("l1_stale_invalidations") == 1


def test_modified_eviction_writes_back():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.store(warp, 0, lambda: None)
    machine.engine.run()
    # force the M line out with conflicting fills
    sets = machine.config.l1_sets
    for k in range(1, machine.config.l1_assoc + 1):
        l1.load(warp, k * sets, lambda: None)
        machine.engine.run()
    # the writeback landed at the L2
    bank = machine.l2_banks[0]
    line = bank.cache.lookup(0)
    assert line is not None and line.version == 1


def test_directory_eviction_recalls_copies():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    l1.load(warp, 0, lambda: None)
    machine.engine.run()
    sets = machine.config.l2_sets
    stride = sets * machine.config.num_l2_banks
    for k in range(1, machine.config.l2_assoc + 1):
        l1.load(warp, k * stride, lambda: None)
        machine.engine.run()
    assert machine.stats.get("dir_recall_invalidations") >= 1
    assert l1.cache.lookup(0) is None  # recalled


# ---------------------------------------------------------------------------
# system-level coherence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("consistency", [Consistency.SC, Consistency.RC])
def test_random_mixes_complete_and_stay_per_location_coherent(
        consistency):
    from repro.validate.checker import check_per_location_monotonic
    for seed in (1, 2, 3, 4):
        config = GPUConfig.tiny(protocol=Protocol.MESI,
                                consistency=consistency)
        kernel = random_kernel(seed, warps=4, length=50, lines=6)
        gpu = GPU(config)
        stats = gpu.run(kernel, max_events=2_000_000)
        assert stats.counter("warps_retired") == kernel.num_warps
        # per-location: no reader ever sees the write order backwards
        checked = check_per_location_monotonic(gpu.machine.log,
                                               gpu.machine.versions)
        assert checked == len(gpu.machine.log.loads)


def test_message_passing_forbidden_outcome_never_occurs():
    for seed in range(8):
        config = GPUConfig.tiny(protocol=Protocol.MESI,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(message_passing(random.Random(seed)))
        for flag, data in mp_outcomes(gpu.machine.log):
            assert not (flag >= 1 and data == 0)


def test_store_buffering_forbidden_under_sc():
    for seed in range(8):
        config = GPUConfig.tiny(protocol=Protocol.MESI,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(store_buffering(random.Random(seed)))
        log = gpu.machine.log
        r0 = observed_versions(log, warp_uid=0, addr=10)
        r1 = observed_versions(log, warp_uid=1, addr=3)
        assert not (r0[0] == 0 and r1[0] == 0)


def test_iriw_forbidden_under_sc():
    for seed in range(8):
        config = GPUConfig.tiny(protocol=Protocol.MESI,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(iriw(random.Random(seed)))
        (r2_x, r2_y), (r3_y, r3_x) = iriw_outcome(gpu.machine.log)
        assert not ((r2_x >= 1 and r2_y == 0)
                    and (r3_y >= 1 and r3_x == 0))


def test_atomics_never_tear():
    from repro.validate.checker import check_atomicity
    traces = []
    for _ in range(4):
        traces.append([atomic(0) for _ in range(5)] + [fence()])
    config = GPUConfig.tiny(protocol=Protocol.MESI,
                            consistency=Consistency.RC)
    gpu = GPU(config)
    gpu.run(Kernel("atm", traces))
    assert check_atomicity(gpu.machine.log, gpu.machine.versions) == 20
    assert gpu.machine.versions.latest(0) == 20


def test_atomic_recalls_requesters_own_modified_copy():
    """Regression: an atomic racing its own SM's store-ownership grant.

    Two warps on one SM: one stores to a line (GetM in flight), the
    other issues an atomic to the same line.  The DataM grant lands
    first, so the store completes *locally* in M — the newest data sits
    in the requester's own L1 when the directory performs the RMW.  The
    directory must recall the owner's copy even though the owner is the
    requesting SM, or the atomic reads the stale L2 version (a tear).
    """
    from repro.validate.checker import check_atomicity
    kernel = Kernel("own", [
        [load(0), load(1), atomic(2), fence()],
        [load(0), fence()],
        [load(0), store(2), fence()],
    ])
    for consistency in (Consistency.SC, Consistency.RC):
        config = GPUConfig.tiny(protocol=Protocol.MESI,
                                consistency=consistency)
        gpu = GPU(config)
        gpu.run(kernel)
        log, versions = gpu.machine.log, gpu.machine.versions
        assert check_atomicity(log, versions) == len(log.atomics) == 1


def test_final_state_matches_other_protocols_on_race_free_kernel():
    kernel = Kernel("spsc", [
        [store(0), fence(), store(1), fence()],
        [load(0), compute(3), load(1), fence()],
    ])
    finals = []
    for protocol in (Protocol.MESI, Protocol.GTSC, Protocol.DISABLED):
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(kernel)
        finals.append([gpu.machine.versions.latest(a) for a in (0, 1)])
    assert finals[0] == finals[1] == finals[2] == [1, 1]


def test_write_locality_is_mesis_one_advantage():
    """A warp re-writing its own line pays the directory once."""
    trace = [store(0) for _ in range(10)] + [fence()]
    mesi = GPUConfig.tiny(protocol=Protocol.MESI,
                          consistency=Consistency.RC)
    gtsc = GPUConfig.tiny(protocol=Protocol.GTSC,
                          consistency=Consistency.RC)
    mesi_stats = GPU(mesi).run(Kernel("w", [list(trace)]))
    gtsc_stats = GPU(gtsc).run(Kernel("w", [list(trace)]))
    # MESI: one GetM + local hits; G-TSC: ten write-throughs
    assert mesi_stats.noc_bytes < gtsc_stats.noc_bytes


def test_sharing_costs_mesi_invalidation_traffic():
    """Cross-SM read-write sharing is where the directory pays."""
    kernel = Kernel("pingpong", [
        [store(0), fence(), load(1), fence()] * 4,
        [store(1), fence(), load(0), fence()] * 4,
    ])
    mesi = GPUConfig.tiny(protocol=Protocol.MESI,
                          consistency=Consistency.SC)
    stats = GPU(mesi).run(kernel)
    assert stats.counter("dir_invalidations") \
        + stats.counter("dir_recalls") > 0
