"""Unit tests for the set-associative cache array."""

import pytest

from repro.mem.cache import CacheArray, CacheLine


def test_empty_cache_misses():
    cache = CacheArray(num_sets=4, assoc=2)
    assert cache.lookup(0) is None
    assert cache.occupancy() == 0


def test_allocate_then_hit():
    cache = CacheArray(4, 2)
    line, evicted = cache.allocate(12)
    assert evicted is None
    assert line.valid and line.addr == 12
    assert cache.lookup(12) is line


def test_allocate_existing_returns_same_line():
    cache = CacheArray(4, 2)
    first, _ = cache.allocate(5)
    first.version = 7
    again, evicted = cache.allocate(5)
    assert again is first
    assert evicted is None
    assert again.version == 7  # existing state is preserved


def test_set_mapping_isolates_addresses():
    cache = CacheArray(4, 1)
    cache.allocate(0)   # set 0
    cache.allocate(1)   # set 1
    assert cache.lookup(0) is not None
    assert cache.lookup(1) is not None


def test_conflict_evicts_lru():
    cache = CacheArray(num_sets=1, assoc=2)
    cache.allocate(10)
    cache.allocate(20)
    cache.lookup(10)               # 10 becomes MRU; 20 is LRU
    line, evicted = cache.allocate(30)
    assert evicted is not None and evicted.addr == 20
    assert cache.lookup(20) is None
    assert cache.lookup(10) is not None
    assert line.addr == 30


def test_eviction_snapshot_preserves_metadata():
    cache = CacheArray(1, 1)
    line, _ = cache.allocate(1)
    line.version, line.dirty, line.wts, line.rts = 3, True, 9, 15
    _, evicted = cache.allocate(2)
    assert (evicted.addr, evicted.version, evicted.dirty) == (1, 3, True)
    assert (evicted.wts, evicted.rts) == (9, 15)


def test_pinned_lines_are_not_victimised():
    cache = CacheArray(1, 2)
    a, _ = cache.allocate(1)
    b, _ = cache.allocate(2)
    a.pending_stores = 1
    line, evicted = cache.allocate(3,
                                   evictable=lambda l: l.pending_stores == 0)
    assert evicted.addr == 2
    assert cache.lookup(1) is not None


def test_all_ways_pinned_returns_none():
    cache = CacheArray(1, 2)
    a, _ = cache.allocate(1)
    b, _ = cache.allocate(2)
    a.pending_stores = b.pending_stores = 1
    line, evicted = cache.allocate(3,
                                   evictable=lambda l: l.pending_stores == 0)
    assert line is None and evicted is None
    # the pinned lines survive
    assert cache.lookup(1) is not None and cache.lookup(2) is not None


def test_invalidate():
    cache = CacheArray(2, 2)
    cache.allocate(4)
    assert cache.invalidate(4) is True
    assert cache.lookup(4) is None
    assert cache.invalidate(4) is False


def test_flush_drops_everything():
    cache = CacheArray(2, 2)
    for addr in range(4):
        cache.allocate(addr)
    assert cache.flush() == 4
    assert cache.occupancy() == 0


def test_lines_iterates_only_valid():
    cache = CacheArray(2, 2)
    cache.allocate(0)
    cache.allocate(1)
    cache.invalidate(0)
    assert [l.addr for l in cache.lines()] == [1]


def test_line_reset_clears_protocol_state():
    line = CacheLine()
    line.valid, line.wts, line.rts, line.expiry = True, 5, 9, 100
    line.pending_stores, line.dirty, line.epoch = 2, True, 3
    line.reset()
    assert not line.valid
    assert (line.wts, line.rts, line.expiry) == (0, 0, 0)
    assert (line.pending_stores, line.dirty, line.epoch) == (0, False, 0)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        CacheArray(0, 2)
    with pytest.raises(ValueError):
        CacheArray(2, 0)


def test_lru_respects_touch_order_across_many_accesses():
    cache = CacheArray(1, 4)
    for addr in range(4):
        cache.allocate(addr)
    # touch 0..2, making 3 the LRU
    for addr in (0, 1, 2):
        cache.lookup(addr)
    _, evicted = cache.allocate(99)
    assert evicted.addr == 3
