"""Smoke tests for the package's public API surface."""

import pytest

import repro
from repro import (
    Consistency,
    GPUConfig,
    Kernel,
    Protocol,
    atomic,
    compute,
    fence,
    load,
    run_kernel,
    store,
)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_run_kernel_convenience():
    kernel = Kernel("api", [[load(0), store(0), fence()]])
    stats = run_kernel(GPUConfig.tiny(), kernel)
    assert stats.cycles > 0
    assert stats.counter("warps_retired") == 1


def test_run_kernel_respects_max_events():
    from repro.trace.instr import Kernel as K
    kernel = K("big", [[compute(2)] * 50 for _ in range(4)])
    with pytest.raises(RuntimeError, match="exceeded"):
        run_kernel(GPUConfig.tiny(), kernel, max_events=10)


def test_instruction_constructors_compose_into_kernel():
    kernel = Kernel("mix", [[
        load(0, 1), compute(3), store(2), atomic(3), fence(),
    ]])
    kernel.validate()
    stats = run_kernel(GPUConfig.tiny(), kernel)
    assert stats.counter("mem_instructions") == 3


def test_histogram_accessor_raises_for_unknown():
    kernel = Kernel("h", [[load(0), fence()]])
    stats = run_kernel(GPUConfig.tiny(), kernel)
    with pytest.raises(KeyError):
        stats.histogram("no_such_histogram")
    assert stats.histogram("load_latency").count == 1


def test_quickstart_docstring_snippet_runs():
    """The package docstring's example must stay executable."""
    from repro.workloads import build_workload
    config = GPUConfig.small(protocol=Protocol.GTSC,
                             consistency=Consistency.RC)
    kernel = build_workload("BFS", scale=0.15, seed=7)
    stats = run_kernel(config, kernel)
    assert "BFS" in stats.config_desc
    assert "cycles" in stats.summary()
