"""Consistency litmus tests across protocols and memory models.

Each shape runs across many random timing seeds; forbidden outcomes
must never appear.
"""

import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.workloads.litmus import (
    X_LINE,
    message_passing,
    mp_outcomes,
    observed_versions,
    single_location,
    store_buffering,
)

SEEDS = range(8)

COHERENT_CONFIGS = [
    (Protocol.GTSC, Consistency.SC),
    (Protocol.GTSC, Consistency.RC),
    (Protocol.TC, Consistency.SC),
    (Protocol.TC, Consistency.RC),
    (Protocol.DISABLED, Consistency.SC),
    (Protocol.DISABLED, Consistency.RC),
]


def run_litmus(kernel, protocol, consistency):
    config = GPUConfig.tiny(protocol=protocol, consistency=consistency)
    gpu = GPU(config)
    gpu.run(kernel)
    return gpu.machine.log


@pytest.mark.parametrize("protocol,consistency", COHERENT_CONFIGS)
def test_message_passing_with_fences_never_reads_stale_data(
        protocol, consistency):
    """If the reader saw the flag (version 1), the fence-ordered data
    write must be visible too — in every coherent configuration."""
    for seed in SEEDS:
        kernel = message_passing(random.Random(seed), with_fences=True)
        log = run_litmus(kernel, protocol, consistency)
        for flag_version, data_version in mp_outcomes(log):
            if flag_version >= 1:
                assert data_version >= 1, (
                    f"{protocol}/{consistency} seed {seed}: saw flag "
                    f"but stale data"
                )


@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC])
def test_message_passing_under_sc_needs_no_fences(protocol):
    """SC orders the two stores by itself (one outstanding op/warp)."""
    for seed in SEEDS:
        kernel = message_passing(random.Random(seed), with_fences=False)
        log = run_litmus(kernel, protocol, Consistency.SC)
        for flag_version, data_version in mp_outcomes(log):
            if flag_version >= 1:
                assert data_version >= 1


def test_message_passing_observes_the_handoff_at_least_once():
    """Sanity: the polling reader eventually sees flag=1 (otherwise
    the stale-data assertions above would be vacuous)."""
    hits = 0
    for seed in SEEDS:
        kernel = message_passing(random.Random(seed), with_fences=True)
        log = run_litmus(kernel, Protocol.GTSC, Consistency.RC)
        hits += sum(1 for f, _ in mp_outcomes(log) if f >= 1)
    assert hits > 0


@pytest.mark.parametrize("protocol,consistency", [
    (Protocol.GTSC, Consistency.SC),
    (Protocol.TC, Consistency.SC),
    (Protocol.DISABLED, Consistency.SC),
])
def test_store_buffering_forbidden_outcome_under_sc(protocol, consistency):
    """SC forbids both warps reading 0 (each misses the other's store)."""
    for seed in SEEDS:
        kernel = store_buffering(random.Random(seed))
        log = run_litmus(kernel, protocol, consistency)
        r0 = observed_versions(log, warp_uid=0, addr=10)  # w0 reads Y
        r1 = observed_versions(log, warp_uid=1, addr=X_LINE)
        assert r0 and r1
        both_zero = r0[0] == 0 and r1[0] == 0
        assert not both_zero, f"{protocol} seed {seed}: SB violation"


@pytest.mark.parametrize("protocol,consistency", COHERENT_CONFIGS)
def test_single_location_never_goes_backwards(protocol, consistency):
    """Per-location coherence: each reader's observations follow the
    line's global write order in every coherent configuration."""
    from repro.config import GPUConfig
    from repro.gpu.gpu import GPU
    from repro.validate.checker import check_per_location_monotonic
    for seed in SEEDS:
        kernel = single_location(random.Random(seed))
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=consistency)
        gpu = GPU(config)
        gpu.run(kernel)
        checked = check_per_location_monotonic(gpu.machine.log,
                                               gpu.machine.versions)
        assert checked == len(gpu.machine.log.loads)


def test_noncoherent_l1_breaks_message_passing():
    """Negative control: the non-coherent baseline must exhibit
    staleness the real protocols forbid — this is why it cannot run
    the first benchmark group.

    With a non-coherent L1 the reader caches the flag's initial value
    on its first poll and never observes the writer's store, no matter
    how long it polls (or, if timing races the other way, reads stale
    data).  Either form is a coherence failure.
    """
    stale_seen = False
    for seed in range(16):
        kernel = message_passing(random.Random(seed), with_fences=True)
        log = run_litmus(kernel, Protocol.NONCOHERENT, Consistency.RC)
        pairs = mp_outcomes(log)
        flag_store = max((s.complete_cycle for s in log.stores
                          if s.addr == 10), default=None)
        last_poll = max(r.complete_cycle for r in log.loads
                        if r.warp_uid == 1 and r.addr == 10)
        for flag_version, data_version in pairs:
            if flag_version >= 1 and data_version == 0:
                stale_seen = True  # classic MP violation
        if (flag_store is not None and last_poll > flag_store
                and all(f == 0 for f, _ in pairs)):
            stale_seen = True      # flag itself stayed stale forever
    assert stale_seen
