"""Cross-feature integration: the extension features must compose.

Each test combines two or more independently-added features (mesh NoC,
MESI, GTO scheduling, CTAs, adaptive leases, sequences, atomics) and
checks correctness — composition is where silently-conflicting
assumptions surface.
"""

import pytest

from repro.config import (
    Consistency,
    GPUConfig,
    LeasePolicy,
    NocTopology,
    Protocol,
    SchedulerPolicy,
)
from repro.gpu.gpu import GPU
from repro.trace.instr import (
    Kernel,
    atomic,
    barrier,
    compute,
    fence,
    load,
    store,
)

from tests.conftest import random_kernel, run_and_check


def test_mesh_plus_mesi():
    config = GPUConfig.tiny(protocol=Protocol.MESI,
                            noc_topology=NocTopology.MESH,
                            consistency=Consistency.SC)
    kernel = random_kernel(1, warps=4, length=40, lines=6)
    stats = GPU(config).run(kernel, max_events=2_000_000)
    assert stats.counter("warps_retired") == kernel.num_warps
    assert stats.counter("noc_hops") > 0


def test_mesh_plus_gto_plus_adaptive_lease():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            noc_topology=NocTopology.MESH,
                            scheduler=SchedulerPolicy.GTO,
                            lease_policy=LeasePolicy.ADAPTIVE)
    run_and_check(config, random_kernel(2, warps=4, length=50))


def test_cta_barriers_with_atomics():
    kernel = Kernel("ctaatomic", [
        [atomic(0), barrier(), load(0), fence()],
        [atomic(0), barrier(), load(0), fence()],
    ], cta_size=2)
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    gpu, _ = run_and_check(config, kernel)
    # after the barrier, both warps observe both atomics
    post_barrier_loads = [r for r in gpu.machine.log.loads
                          if r.addr == 0]
    for record in post_barrier_loads:
        assert record.version == 2


def test_cta_barriers_under_tc_and_mesi():
    kernel = Kernel("ctax", [
        [store(0), barrier(), load(1), fence()],
        [store(1), barrier(), load(0), fence()],
    ], cta_size=2)
    for protocol in (Protocol.TC, Protocol.MESI):
        config = GPUConfig.tiny(protocol=protocol,
                                consistency=Consistency.SC)
        gpu = GPU(config)
        gpu.run(kernel)
        # barrier + SC: each load observes the CTA-mate's store
        for record in gpu.machine.log.loads:
            assert record.version == 1, protocol


def test_sequence_of_cta_kernels():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    kernels = [
        Kernel("k1", [[store(0), barrier(), load(0), fence()],
                      [compute(3), barrier(), load(0), fence()]],
               cta_size=2),
        Kernel("k2", [[load(0), fence()],
                      [load(0), fence()]], cta_size=2),
    ]
    results = gpu.run_sequence(kernels)
    assert all(r.counter("warps_retired") == 2 for r in results)
    # kernel 2 reads the value kernel 1 produced, via the L2
    assert gpu.machine.log.loads[-1].version == 1


def test_overflow_reset_with_adaptive_lease_and_atomics():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            ts_max=511,
                            lease_policy=LeasePolicy.ADAPTIVE)
    import random
    rng = random.Random(6)
    traces = []
    for _ in range(4):
        trace = []
        for _ in range(60):
            r = rng.random()
            if r < 0.4:
                trace.append(load(rng.randrange(3)))
            elif r < 0.7:
                trace.append(store(rng.randrange(3)))
            else:
                trace.append(atomic(rng.randrange(3)))
        trace.append(fence())
        traces.append(trace)
    gpu, stats = run_and_check(config, Kernel("stress", traces))
    assert stats.counter("ts_overflows") >= 1


def test_mesi_with_gto_and_waves():
    config = GPUConfig.tiny(protocol=Protocol.MESI,
                            consistency=Consistency.RC,
                            scheduler=SchedulerPolicy.GTO)
    kernel = random_kernel(7, warps=8, length=30, lines=8)
    stats = GPU(config).run(kernel, max_events=2_000_000)
    assert stats.counter("warps_retired") == 8
