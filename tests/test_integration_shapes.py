"""Integration tests asserting the paper's qualitative results.

These encode the *shape* targets from DESIGN.md: who wins, in which
direction, on which benchmark group.  They run the real experiment
harness at reduced scale, so they double as end-to-end coverage of the
figure pipeline.
"""

import pytest

from repro.config import Consistency, Protocol
from repro.harness.runner import ExperimentRunner
from repro.harness import experiments as exp
from repro.harness.tables import geomean
from repro.workloads import COHERENT_NAMES, INDEPENDENT_NAMES


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(preset="small", scale=0.4, seed=2018)


@pytest.fixture(scope="module")
def fig12(runner):
    return exp.fig12(runner)


def test_gtsc_rc_beats_tc_rc_on_coherent_set(fig12):
    """The abstract's headline: G-TSC outperforms TC under RC."""
    gain = fig12.summary["G-TSC-RC over TC-RC (coherent, geomean)"]
    assert gain > 1.15, f"G-TSC-RC should clearly beat TC-RC, got {gain}"


def test_gtsc_sc_beats_tc_rc_on_coherent_set(fig12):
    """Even G-TSC under SC outperforms TC under RC (paper: +26%)."""
    gain = fig12.summary["G-TSC-SC over TC-RC (coherent, geomean)"]
    assert gain > 1.05


def test_gtsc_beats_tc_per_benchmark_at_matched_consistency(fig12):
    for name in COHERENT_NAMES:
        row = fig12.row(name)
        headers = fig12.headers
        tc_rc = row[headers.index("TC-RC")]
        g_rc = row[headers.index("G-TSC-RC")]
        tc_sc = row[headers.index("TC-SC")]
        g_sc = row[headers.index("G-TSC-SC")]
        assert g_rc >= tc_rc * 0.97, f"{name}: G-TSC-RC lost to TC-RC"
        assert g_sc >= tc_sc * 0.97, f"{name}: G-TSC-SC lost to TC-SC"


def test_sc_rc_gap_much_smaller_under_gtsc(fig12):
    """G-TSC barely stalls, so SC costs it little; TC's gap is large."""
    headers = fig12.headers
    tc_gaps, gtsc_gaps = [], []
    for name in COHERENT_NAMES:
        row = fig12.row(name)
        tc_gaps.append(row[headers.index("TC-RC")]
                       / row[headers.index("TC-SC")])
        gtsc_gaps.append(row[headers.index("G-TSC-RC")]
                         / row[headers.index("G-TSC-SC")])
    assert geomean(gtsc_gaps) < geomean(tc_gaps)


def test_compute_bound_benchmarks_are_protocol_insensitive(fig12):
    """CCP/HS/KM hide memory stalls behind compute (paper §VI-B)."""
    headers = fig12.headers
    for name in ("CCP", "KM"):
        row = fig12.row(name)
        bars = [row[headers.index(bar)]
                for bar in ("TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC")]
        assert max(bars) / min(bars) < 1.15, f"{name} too sensitive"


def test_gtsc_overhead_vs_noncoherent_l1_is_moderate(fig12):
    """Paper: ~11% overhead vs the non-coherent GPU (second group)."""
    overhead = fig12.summary["G-TSC-RC overhead vs W/L1 (no-coh, geomean)"]
    assert overhead < 1.35


def test_gtsc_reduces_traffic_vs_tc(runner):
    result = exp.fig15(runner)
    reduction = result.summary[
        "G-TSC-RC traffic reduction vs TC-RC (coherent)"]
    assert reduction > 0.10, f"expected >10% traffic cut, got {reduction}"


def test_gtsc_stalls_less_than_tc(runner):
    result = exp.fig13(runner)
    ratio = result.summary[
        "TC-RC stalls / G-TSC-RC stalls (coherent, geomean)"]
    assert ratio > 1.2


def test_gtsc_lease_insensitive_in_paper_range(runner):
    """Fig. 14: flat across leases 8-20 (logical time has no physical
    meaning, so behaviour is lease-scale-invariant)."""
    result = exp.fig14(runner)
    assert result.summary["max relative spread across leases"] < 0.05


def test_tc_is_lease_sensitive(runner):
    """The §II-D3 contrast: a bad physical lease costs TC real time."""
    result = exp.ablation_tc_lease(runner, leases=[25, 100, 600],
                                   workloads=["DLP", "STN"])
    assert result.summary["max TC slowdown from a bad lease"] > 0.05


def test_gtsc_saves_energy_vs_tc(runner):
    result = exp.fig16(runner)
    saving = result.summary["G-TSC-RC energy saving vs TC-RC (coherent)"]
    assert saving > 0.0


def test_expiration_misses_drop_for_read_mostly(runner):
    result = exp.expiration(runner)
    assert result.summary["mean reduction, read-mostly (BH/VPR/BFS)"] > 0.2


def test_visibility_options_perform_similarly(runner):
    """§V-A: option 1 (delay) is essentially free — the basis of the
    paper's decision not to pay for old-copy hardware."""
    result = exp.ablation_visibility(runner)
    assert 0.9 < result.summary["geomean old_copy/delay"] < 1.1


def test_forward_all_increases_request_count(runner):
    """§V-B: forwarding all requests raises traffic (paper: 12-35%)."""
    result = exp.ablation_combining(runner)
    assert result.summary["mean request increase with forward-all"] > 0.02


def test_headline_directions(runner):
    result = exp.headline(runner)
    for _claim, _paper, reproduced in result.rows:
        assert reproduced > 0, "every headline claim must hold in sign"
