"""Unit tests for the MSHR table."""

import pytest

from repro.mem.mshr import MSHRFullError, MSHRTable


def test_allocate_creates_entry():
    table = MSHRTable(4)
    entry = table.allocate(10)
    assert entry.addr == 10
    assert not entry.issued
    assert 10 in table
    assert len(table) == 1


def test_allocate_existing_combines():
    table = MSHRTable(4)
    first = table.allocate(10)
    second = table.allocate(10)
    assert first is second
    assert len(table) == 1


def test_full_table_raises():
    table = MSHRTable(2)
    table.allocate(1)
    table.allocate(2)
    assert table.full
    with pytest.raises(MSHRFullError):
        table.allocate(3)
    # but combining with an existing entry still works when full
    assert table.allocate(1).addr == 1


def test_release_returns_entry():
    table = MSHRTable(2)
    table.allocate(5)
    entry = table.release(5)
    assert entry.addr == 5
    assert 5 not in table


def test_release_missing_raises():
    with pytest.raises(KeyError):
        MSHRTable(2).release(9)


def test_drain_all_waiters_releases_entry():
    table = MSHRTable(2)
    entry = table.allocate(7)
    entry.waiters.extend(["a", "b"])
    assert table.drain(7) == ["a", "b"]
    assert 7 not in table


def test_drain_with_keep_retains_stragglers():
    table = MSHRTable(2)
    entry = table.allocate(7)
    entry.waiters.extend([1, 5, 9])
    done = table.drain(7, keep=lambda w: w > 4)
    assert done == [1]
    assert table.get(7).waiters == [5, 9]
    # draining the rest releases the entry
    assert table.drain(7) == [5, 9]
    assert 7 not in table


def test_drain_missing_entry_is_empty():
    assert MSHRTable(2).drain(3) == []


def test_peak_occupancy_tracks_high_water_mark():
    table = MSHRTable(4)
    table.allocate(1)
    table.allocate(2)
    table.allocate(3)
    table.release(2)
    table.release(3)
    assert table.peak_occupancy == 3


def test_entries_snapshot():
    table = MSHRTable(4)
    table.allocate(1)
    table.allocate(2)
    assert sorted(e.addr for e in table.entries()) == [1, 2]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MSHRTable(0)
