"""Tests for run-result persistence and the on-disk run cache.

A cached run is only usable if (a) the RunStats<->JSON round trip is
exact, (b) the key covers every parameter that changes the result, and
(c) damaged files degrade to re-simulation, never to wrong data.
"""

import dataclasses
import enum
import json
import os

import pytest

import repro
from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.harness.cache import RunCache, run_key
from repro.harness.runner import ExperimentRunner
from repro.stats.collector import RunStats
from repro.stats.histogram import Histogram
from repro.trace.instr import Kernel, fence, load, store


def small_run() -> RunStats:
    """A real simulation small enough for a unit test, with at least
    one populated histogram."""
    config = GPUConfig.tiny()
    kernel = Kernel("rt", [
        [load(0), store(1), load(2), fence()],
        [load(1), store(0), fence()],
    ])
    return GPU(config).run(kernel)


# ---------------------------------------------------------------------------
# serialisation round trip
# ---------------------------------------------------------------------------

def test_histogram_round_trip_is_exact():
    histogram = Histogram("lat")
    for value in (0, 1, 3, 9, 100, 100, 5000):
        histogram.add(value)
    data = json.loads(json.dumps(histogram.to_dict()))
    rebuilt = Histogram.from_dict("lat", data)
    assert rebuilt == histogram
    assert rebuilt.mean == histogram.mean
    assert rebuilt.percentile(0.99) == histogram.percentile(0.99)
    assert list(rebuilt.buckets()) == list(histogram.buckets())


def test_runstats_round_trip_is_exact():
    stats = small_run()
    assert stats.histograms, "test run should populate histograms"
    data = json.loads(json.dumps(stats.to_dict()))
    rebuilt = RunStats.from_dict(data)
    assert rebuilt == stats            # dataclass equality, all fields
    assert rebuilt.total_energy == stats.total_energy


# ---------------------------------------------------------------------------
# key construction
# ---------------------------------------------------------------------------

def _perturb(value):
    """A different-but-valid value for any config field."""
    if isinstance(value, enum.Enum):
        members = list(type(value))
        return members[(members.index(value) + 1) % len(members)]
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        # doubling keeps the size-multiple invariants valid
        return value * 2 if value else 1
    if isinstance(value, float):
        return value * 2 + 1
    raise TypeError(f"unhandled field type {type(value)!r}")


def test_key_changes_when_any_config_field_changes():
    config = GPUConfig.tiny()
    base = run_key(config, "BFS", 0.5, 2018)
    for field in dataclasses.fields(config):
        old = getattr(config, field.name)
        changed = config.with_changes(**{field.name: _perturb(old)})
        assert run_key(changed, "BFS", 0.5, 2018) != base, field.name


def test_key_changes_with_workload_scale_seed_and_version(monkeypatch):
    config = GPUConfig.tiny()
    base = run_key(config, "BFS", 0.5, 2018)
    assert run_key(config, "STN", 0.5, 2018) != base
    assert run_key(config, "BFS", 0.4, 2018) != base
    assert run_key(config, "BFS", 0.5, 2019) != base
    monkeypatch.setattr(repro, "__version__",
                        repro.__version__ + "+dev")
    assert run_key(config, "BFS", 0.5, 2018) != base


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------

def test_cache_hit_returns_identical_stats(tmp_path):
    cache = RunCache(str(tmp_path))
    stats = small_run()
    cache.put("k1", stats)
    restored = cache.get("k1")
    assert restored == stats
    report = cache.stats()
    assert report["hits"] == 1 and report["misses"] == 0
    assert report["entries"] == 1 and report["bytes"] > 0


def test_corrupted_cache_file_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    cache.put("k1", small_run())
    with open(cache._path("k1"), "w") as handle:
        handle.write("{not json at all")
    assert cache.get("k1") is None
    assert cache.misses == 1


def test_missing_directory_is_a_miss_not_an_error(tmp_path):
    cache = RunCache(str(tmp_path / "never-created"))
    assert cache.get("whatever") is None


# ---------------------------------------------------------------------------
# runner integration
# ---------------------------------------------------------------------------

def test_runner_reuses_disk_cache_across_instances(tmp_path):
    cache_dir = str(tmp_path / "runcache")
    first = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                             cache_dir=cache_dir)
    cold = first.run("BFS", Protocol.GTSC, Consistency.RC)
    assert first.simulations_run == 1

    second = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=cache_dir)
    warm = second.run("BFS", Protocol.GTSC, Consistency.RC)
    assert second.simulations_run == 0      # zero simulations on hit
    assert warm == cold


def test_warm_sweep_performs_zero_simulations(tmp_path):
    from repro.harness.sweeps import sweep
    cache_dir = str(tmp_path / "runcache")

    def run_sweep(runner):
        return sweep(runner, workloads=["BFS"], parameter="lease",
                     values=[8, 12], protocol=Protocol.GTSC,
                     consistency=Consistency.RC)

    first = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                             cache_dir=cache_dir)
    cold = run_sweep(first)
    assert first.simulations_run == 2

    second = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=cache_dir)
    warm = run_sweep(second)
    assert second.simulations_run == 0
    assert warm.data == cold.data


def test_corrupt_entry_causes_resimulation(tmp_path):
    cache_dir = str(tmp_path / "runcache")
    first = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                             cache_dir=cache_dir)
    cold = first.run("BFS", Protocol.GTSC, Consistency.RC)
    # the dir also holds the traces/ subcache; corrupt the run entry
    entries = [e for e in os.listdir(cache_dir) if e.endswith(".json")]
    assert len(entries) == 1
    with open(os.path.join(cache_dir, entries[0]), "w") as handle:
        handle.write("garbage")

    second = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=cache_dir)
    again = second.run("BFS", Protocol.GTSC, Consistency.RC)
    assert second.simulations_run == 1      # quietly re-simulated
    assert again == cold

    # ... and the fresh result repaired the cache entry
    third = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                             cache_dir=cache_dir)
    third.run("BFS", Protocol.GTSC, Consistency.RC)
    assert third.simulations_run == 0


def test_cacheless_runner_still_memoises_in_memory():
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7)
    first = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    second = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    assert first is second
    assert runner.simulations_run == 1


def test_corrupt_entry_warns_with_the_offending_path(tmp_path):
    cache = RunCache(str(tmp_path))
    cache.put("k1", small_run())
    path = cache._path("k1")
    with open(path, "w") as handle:
        handle.write("{not json at all")
    with pytest.warns(RuntimeWarning,
                      match=r"corrupt run-cache entry .*k1"):
        assert cache.get("k1") is None


def test_truncated_entry_warns_too(tmp_path):
    cache = RunCache(str(tmp_path))
    cache.put("k1", small_run())
    with open(cache._path("k1"), "w") as handle:
        handle.write('{"cycles": 5}')      # valid JSON, not a RunStats
    with pytest.warns(RuntimeWarning, match="re-simulating"):
        assert cache.get("k1") is None
    report = cache.stats()
    assert report["hits"] == 0 and report["misses"] == 1


def test_ordinary_miss_does_not_warn(tmp_path, recwarn):
    cache = RunCache(str(tmp_path))
    assert cache.get("never-written") is None
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]
