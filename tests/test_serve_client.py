"""Client retry policy against a scripted (flaky) fake server.

The fake server is a real TCP listener driven by a per-connection
script, so these tests exercise the actual socket path the client
uses — refused connections, immediate hangups, transient refusals,
and terminal protocol errors — without a simulator in sight.
"""

from __future__ import annotations

import json
import random
import socket
import threading

import pytest

from repro.serve import PROTOCOL_VERSION, ServeClient, ServeError, \
    ServeUnavailable

OK_REPLY = {"v": PROTOCOL_VERSION, "ok": True, "kind": "result",
            "answer": 42}


class FakeServer:
    """Answers one connection per script entry, then keeps answering
    the last entry.  Entries:

    * ``"hangup"`` — accept and close without replying;
    * ``"garbage"`` — reply with a non-JSON line;
    * a dict — reply with that JSON object.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self.requests = []
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                              1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve,
                                        daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = min(self.connections, len(self.script) - 1)
            action = self.script[index]
            self.connections += 1
            with conn:
                if action == "hangup":
                    continue
                line = conn.makefile("rb").readline()
                if line:
                    self.requests.append(json.loads(line))
                if action == "garbage":
                    conn.sendall(b"this is not json\n")
                else:
                    conn.sendall(json.dumps(action).encode() + b"\n")

    def close(self):
        self._sock.close()


@pytest.fixture
def sleeps():
    return []


def client_for(port, sleeps, **kwargs):
    kwargs.setdefault("retries", 4)
    kwargs.setdefault("backoff_base", 0.1)
    kwargs.setdefault("timeout", 2.0)
    return ServeClient(port=port, rng=random.Random(7),
                       sleep=sleeps.append, **kwargs)


def test_retries_through_hangups_then_succeeds(sleeps):
    server = FakeServer(["hangup", "hangup", OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        reply = client.request({"op": "healthz"})
        assert reply["answer"] == 42
        assert server.connections == 3
        assert client.retries_used == 2
        assert len(sleeps) == 2
        # exponential: second wait drawn from a doubled base
        assert sleeps[0] < 0.1 and sleeps[1] < 0.2
    finally:
        server.close()


def test_busy_reply_waits_at_least_retry_after(sleeps):
    busy = {"v": PROTOCOL_VERSION, "ok": False, "error": "busy",
            "retry_after": 2.5}
    server = FakeServer([busy, OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        reply = client.request({"op": "submit"})
        assert reply["ok"]
        # the server's pacing hint is a floor under the backoff
        assert len(sleeps) == 1 and sleeps[0] >= 2.5
    finally:
        server.close()


def test_draining_is_retried_like_busy(sleeps):
    draining = {"v": PROTOCOL_VERSION, "ok": False,
                "error": "draining", "retry_after": 0.1}
    server = FakeServer([draining, draining, OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        assert client.request({"op": "submit"})["ok"]
        assert server.connections == 3
    finally:
        server.close()


def test_garbage_reply_is_retried(sleeps):
    server = FakeServer(["garbage", OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        assert client.request({"op": "healthz"})["ok"]
        assert server.connections == 2
    finally:
        server.close()


def test_protocol_errors_are_not_retried(sleeps):
    bad = {"v": PROTOCOL_VERSION, "ok": False, "error": "bad-request",
           "message": "unknown workload 'NOPE'"}
    server = FakeServer([bad, OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        with pytest.raises(ServeError, match="NOPE") as excinfo:
            client.request({"op": "submit"})
        assert excinfo.value.error == "bad-request"
        assert server.connections == 1      # no second attempt
        assert sleeps == []
    finally:
        server.close()


def test_gives_up_after_retry_budget(sleeps):
    server = FakeServer(["hangup"])
    try:
        client = client_for(server.port, sleeps, retries=3)
        with pytest.raises(ServeUnavailable, match="3 attempt"):
            client.request({"op": "healthz"})
        assert server.connections == 3
        assert len(sleeps) == 3
    finally:
        server.close()


def test_connection_refused_counts_as_transient(sleeps):
    # grab a port with no listener behind it
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    port = placeholder.getsockname()[1]
    placeholder.close()
    client = client_for(port, sleeps, retries=2)
    with pytest.raises(ServeUnavailable):
        client.request({"op": "healthz"})
    assert len(sleeps) == 2


def test_request_carries_protocol_version(sleeps):
    server = FakeServer([OK_REPLY])
    try:
        client = client_for(server.port, sleeps)
        client.request({"op": "healthz"})
        assert server.requests[0]["v"] == PROTOCOL_VERSION
    finally:
        server.close()


# ---------------------------------------------------------------------------
# persistent connections
# ---------------------------------------------------------------------------

class PersistentFakeServer:
    """Serves many requests per connection, closing each connection
    after ``per_connection`` replies (None = never) — the shape the
    real server has, plus a way to fake idle-timeout hangups."""

    def __init__(self, per_connection=None):
        self.per_connection = per_connection
        self.connections = 0
        self.requests = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET,
                              socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve,
                                        daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                stream = conn.makefile("rb")
                served = 0
                while self.per_connection is None or \
                        served < self.per_connection:
                    if not stream.readline():
                        break
                    self.requests += 1
                    served += 1
                    conn.sendall(
                        json.dumps(OK_REPLY).encode() + b"\n")

    def close(self):
        self._sock.close()


def test_requests_reuse_one_connection(sleeps):
    server = PersistentFakeServer()
    try:
        with client_for(server.port, sleeps) as client:
            for _ in range(10):
                assert client.request({"op": "healthz"})["ok"]
        assert client.connects == 1
        assert server.requests == 10
        # the server may take a beat to observe the accept
        assert server.connections == 1
        assert sleeps == []
    finally:
        server.close()


def test_stale_connection_reconnects_without_backoff(sleeps):
    """A connection the server dropped between requests is replaced
    immediately — no sleep, no retry-budget charge."""
    server = PersistentFakeServer(per_connection=2)
    try:
        client = client_for(server.port, sleeps)
        for _ in range(6):
            assert client.request({"op": "healthz"})["ok"]
        assert client.connects == 3            # 2 requests per dial
        assert client.retries_used == 0
        assert sleeps == []
        client.close()
    finally:
        server.close()


def test_close_is_idempotent_and_reopens_on_demand(sleeps):
    server = PersistentFakeServer()
    try:
        client = client_for(server.port, sleeps)
        assert client.request({"op": "healthz"})["ok"]
        client.close()
        client.close()
        assert client.request({"op": "healthz"})["ok"]
        assert client.connects == 2
        client.close()
    finally:
        server.close()
