"""Tests for the provenance-stamped results database.

The database is only trustworthy if (a) the RunStats -> rows ->
RunStats round trip is *exact* for arbitrary stats (ints stay ints,
histograms keep their buckets, time-series reassemble), (b) many
concurrent writers cannot corrupt it and the last write wins whole,
(c) historical run-cache entries backfill faithfully, and (d) a row
written by the batch runner and one written by a serve worker for the
same run key are indistinguishable at the stats level.
"""

import json
import multiprocessing
import os
import sqlite3
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Consistency, Protocol
from repro.db.ingest import ingest_runcache, parse_config_desc
from repro.db.provenance import config_hash, git_commit
from repro.db.query import comparison_rows, latest_by_point, \
    matrix_result
from repro.db.report import render_report, write_report
from repro.db.store import ResultsDB
from repro.harness.runner import ExperimentRunner
from repro.stats.collector import RunStats
from repro.stats.histogram import Histogram

KEY_A = "a" * 64
KEY_B = "b" * 64


def make_stats(counters=None, energy=None, histograms=None,
               timeseries=None, cycles=1234,
               desc="gtsc/rc 2SM x 2w") -> RunStats:
    return RunStats(config_desc=desc, cycles=cycles,
                    counters=dict(counters or {"l1_hit": 7}),
                    energy=dict(energy or {}),
                    histograms=dict(histograms or {}),
                    timeseries=dict(timeseries or {}))


# ---------------------------------------------------------------------------
# exact round trip (property-based)
# ---------------------------------------------------------------------------

_names = st.text("abcdefgh_", min_size=1, max_size=10)


def _histogram(draw_values):
    def build(item):
        name, values = item
        histogram = Histogram(name)
        for value in values:
            histogram.add(value)
        return histogram
    return st.tuples(_names, draw_values).map(build)


_stats_strategy = st.builds(
    make_stats,
    counters=st.dictionaries(
        _names, st.integers(min_value=0, max_value=2**62),
        max_size=6),
    energy=st.dictionaries(
        _names,
        st.floats(min_value=0, max_value=1e12, allow_nan=False),
        max_size=4),
    histograms=st.lists(
        _histogram(st.lists(st.integers(0, 10_000), min_size=1,
                            max_size=8)),
        max_size=3, unique_by=lambda h: h.name,
    ).map(lambda hs: {h.name: h for h in hs}),
    timeseries=st.one_of(
        st.just({}),
        st.builds(
            lambda interval, samples: {
                "interval": interval,
                "columns": ["cycle", "ipc"],
                "samples": [
                    {"cycle": i * interval, "ipc": value}
                    for i, value in enumerate(samples)
                ],
            },
            st.integers(1, 1000),
            st.lists(st.one_of(st.integers(0, 10**9),
                               st.floats(0, 1e6, allow_nan=False)),
                     min_size=1, max_size=5),
        ),
    ),
    cycles=st.integers(min_value=0, max_value=2**62),
    desc=st.text(max_size=30),
)


@settings(max_examples=60, deadline=None)
@given(stats=_stats_strategy)
def test_round_trip_is_exact_for_arbitrary_stats(stats, tmp_path_factory):
    db = ResultsDB(str(tmp_path_factory.mktemp("db") / "r.db"))
    db.record(KEY_A, stats)
    rebuilt = db.get_stats(KEY_A)
    assert rebuilt == stats
    # dataclass equality covers it, but the failure mode this guards
    # against is type coercion — make it explicit
    for name, value in stats.counters.items():
        assert type(rebuilt.counters[name]) is type(value)


def test_round_trip_preserves_real_simulation():
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7)
    stats = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    db = ResultsDB(":memory:")
    db.record(KEY_A, stats)
    assert db.get_stats(KEY_A) == stats
    assert db.get_stats(KEY_B) is None


def test_record_is_last_write_wins(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"))
    db.record(KEY_A, make_stats(counters={"x": 1}), source="first")
    db.record(KEY_A, make_stats(counters={"y": 2}), source="second")
    assert db.count() == 1
    run = db.get_run(KEY_A)
    assert run["source"] == "second"
    assert db.get_stats(KEY_A).counters == {"y": 2}


def test_provenance_is_stamped_on_every_row(tmp_path):
    from repro.config import GPUConfig

    config = GPUConfig.tiny()
    db = ResultsDB(str(tmp_path / "r.db"))
    db.record(KEY_A, make_stats(), config=config,
              wall_time_s=1.25, source="runner")
    run = db.get_run(KEY_A)
    assert run["git_commit"] == git_commit()
    assert run["config_hash"] == config_hash(config)
    assert run["host"]
    assert run["repro_version"]
    assert run["wall_time_s"] == 1.25
    # same config -> same hash; different lease -> different hash
    assert config_hash(GPUConfig.tiny()) == run["config_hash"]
    assert config_hash(GPUConfig.tiny(lease=99)) != run["config_hash"]


# ---------------------------------------------------------------------------
# concurrent writers
# ---------------------------------------------------------------------------

def _hammer(path: str, worker: int, keys, writes: int) -> None:
    db = ResultsDB(path)
    for round_no in range(writes):
        for key in keys:
            db.record(key, make_stats(
                counters={"worker": worker, "check": worker * 1000},
                cycles=worker), source=f"w{worker}")


def test_concurrent_writers_last_write_wins_no_corruption(tmp_path):
    path = str(tmp_path / "r.db")
    keys = [KEY_A, KEY_B]
    workers = 4
    procs = [
        multiprocessing.Process(target=_hammer,
                                args=(path, i, keys, 15))
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0
    db = ResultsDB(path)
    assert db.count() == len(keys)
    check = db._conn.execute("PRAGMA integrity_check").fetchone()[0]
    assert check == "ok"
    for key in keys:
        stats = db.get_stats(key)
        winner = stats.counters["worker"]
        assert winner in range(workers)
        # child rows and the runs row came from ONE transaction, not
        # an interleaving of two writers
        assert stats.counters["check"] == winner * 1000
        assert stats.cycles == winner
        assert db.get_run(key)["source"] == f"w{winner}"


# ---------------------------------------------------------------------------
# backfill from the run cache
# ---------------------------------------------------------------------------

def test_ingest_backfills_runcache_exactly(tmp_path):
    cache_dir = str(tmp_path / "cache")
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=cache_dir)
    expected = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    runner.run("BFS", Protocol.TC, Consistency.SC)

    db = ResultsDB(str(tmp_path / "r.db"))
    outcome = ingest_runcache(db, cache_dir)
    assert outcome == {"ingested": 2, "skipped": 0, "corrupt": 0}
    assert db.count() == 2

    gtsc = db.runs(protocol="gtsc", consistency="rc")
    assert len(gtsc) == 1
    assert db.get_stats(gtsc[0]["run_key"]) == expected
    assert gtsc[0]["source"] == "ingest"

    # second ingest is a no-op thanks to skip_existing
    again = ingest_runcache(db, cache_dir)
    assert again == {"ingested": 0, "skipped": 2, "corrupt": 0}


def test_ingest_survives_corrupt_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=str(cache_dir))
    runner.run("BFS", Protocol.GTSC, Consistency.RC)
    victim = next(cache_dir.glob("*.json"))
    victim.write_text("{ not json")
    db = ResultsDB(str(tmp_path / "r.db"))
    with pytest.warns(RuntimeWarning):
        outcome = ingest_runcache(db, str(cache_dir))
    assert outcome["corrupt"] == 1
    assert db.count() == 0


def test_parse_config_desc_recovers_protocol():
    assert parse_config_desc("gtsc/rc 2SM x 2w, L1 0KB") == \
        ("gtsc", "rc")
    assert parse_config_desc("tc/sc 4SM") == ("tc", "sc")
    assert parse_config_desc("nonsense") == ("", "")


# ---------------------------------------------------------------------------
# runner-written and serve-written rows agree (acceptance criterion)
# ---------------------------------------------------------------------------

def test_runner_and_serve_write_identical_stats_rows(tmp_path):
    from repro.serve import schema
    from repro.serve.jobs import JobStore
    from repro.serve.scheduler import Scheduler

    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              db=str(tmp_path / "runner.db"))
    runner.run("BFS", Protocol.GTSC, Consistency.RC)
    db_runner = runner.results_db
    row = db_runner.runs()[0]
    key = row["run_key"]
    spec = schema.validate_spec(json.loads(row["spec"]))
    assert schema.spec_key(spec) == key

    store = JobStore(str(tmp_path / "jobs.jsonl"))
    scheduler = Scheduler(store, jobs=1,
                          db=str(tmp_path / "serve.db"))
    scheduler.start()
    try:
        scheduler.submit(spec).future.result(timeout=120)
    finally:
        scheduler.stop()
    db_serve = scheduler.db

    sql = ("SELECT kind, name, value, payload FROM stats "
           "WHERE run_key = ? ORDER BY kind, name")
    assert db_runner._conn.execute(sql, (key,)).fetchall() == \
        db_serve._conn.execute(sql, (key,)).fetchall()
    serve_row = db_serve.get_run(key)
    assert serve_row["source"] == "serve"
    assert serve_row["wall_time_s"] is not None
    assert serve_row["config_hash"] == row["config_hash"]
    assert db_serve.get_stats(key) == db_runner.get_stats(key)


def test_db_failure_never_breaks_the_run(tmp_path):
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              db=str(tmp_path / "ok.db"))
    runner.results_db._conn.close()  # simulate a dead database
    with pytest.warns(RuntimeWarning, match="results-db record"):
        stats = runner.run("BFS", Protocol.GTSC, Consistency.RC)
    assert stats.cycles > 0


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------

def _seed_matrix(db: ResultsDB) -> None:
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              db=db)
    runner.matrix("BFS")
    runner.baseline("BFS")


def test_matrix_result_normalises_to_baseline(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"))
    _seed_matrix(db)
    assert db.count() == 5
    result = matrix_result(db)
    assert [row[0] for row in result.rows] == ["BFS"]
    assert result.headers == ["benchmark", "TC-SC", "TC-RC",
                              "G-TSC-SC", "G-TSC-RC", "normalised"]
    assert result.rows[0][-1] == "baseline"
    values = result.rows[0][1:-1]
    assert all(isinstance(v, float) and v > 0 for v in values)
    assert result.summary  # the geomean lines the paper quotes
    latest = latest_by_point(db)
    # points key on (workload, protocol, consistency, n_gpus) so a
    # cluster run never shadows the single-GPU point
    assert ("BFS", "gtsc", "rc", 1) in latest


def test_comparison_rows_carry_key_metrics(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"))
    _seed_matrix(db)
    rows = comparison_rows(db)
    assert len(rows) == 5
    for row in rows:
        assert row["cycles"] > 0
        assert 0.0 <= row["l1_hit_rate"] <= 1.0


def test_report_renders_from_queries_alone(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"))
    _seed_matrix(db)
    text = render_report(db, title="unit report")
    assert "unit report" in text
    assert "Fleet summary" in text
    assert "G-TSC-RC" in text
    assert "Provenance appendix" in text
    assert git_commit()[:12] in text
    path = write_report(db, str(tmp_path / "out" / "report.html"))
    assert os.path.exists(path)


def test_empty_database_report_still_renders(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"))
    text = render_report(db)
    assert "No matrix points recorded yet" in text


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

def _cli(tmp_path, *argv):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=str(tmp_path), env=env, capture_output=True, text=True,
        timeout=600)


def test_cli_db_query_and_report_smoke(tmp_path):
    db = ResultsDB(str(tmp_path / "repro.db"))
    _seed_matrix(db)
    db.close()

    proc = _cli(tmp_path, "db", "query", "--db", "repro.db")
    assert proc.returncode == 0, proc.stderr
    assert "gtsc-rc" in proc.stdout
    assert "5 run(s)" in proc.stdout

    proc = _cli(tmp_path, "db", "query", "--db", "repro.db",
                "--summary")
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["runs"] == 5

    proc = _cli(tmp_path, "db", "report", "--db", "repro.db",
                "--output", "report.html")
    assert proc.returncode == 0, proc.stderr
    html = (tmp_path / "report.html").read_text()
    assert "Provenance appendix" in html

    proc = _cli(tmp_path, "db", "query", "--db", "missing.db")
    assert proc.returncode != 0
    assert "no results database" in proc.stderr


def test_cli_db_ingest_smoke(tmp_path):
    runner = ExperimentRunner(preset="tiny", scale=0.3, seed=7,
                              cache_dir=str(tmp_path / "cache"))
    runner.run("BFS", Protocol.GTSC, Consistency.RC)
    proc = _cli(tmp_path, "db", "ingest", "--db", "repro.db",
                "--cache-dir", "cache")
    assert proc.returncode == 0, proc.stderr
    assert "ingested 1" in proc.stdout


# ---------------------------------------------------------------------------
# store plumbing
# ---------------------------------------------------------------------------

def test_db_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "r.db"
    db = ResultsDB(str(path))
    db.record(KEY_A, make_stats())
    assert path.exists()


def test_schema_version_is_stamped(tmp_path):
    from repro.db.store import SCHEMA_VERSION

    path = str(tmp_path / "r.db")
    ResultsDB(path).record(KEY_A, make_stats())
    conn = sqlite3.connect(path)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == \
        SCHEMA_VERSION
    conn.close()


# ---------------------------------------------------------------------------
# batched writes (flush_interval)
# ---------------------------------------------------------------------------

class TickClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_batched_record_lands_one_transaction_per_interval(tmp_path):
    clock = TickClock()
    db = ResultsDB(str(tmp_path / "r.db"), flush_interval=1.0,
                   clock=clock)
    db.record(KEY_A, make_stats(), source="serve")
    clock.now = 0.5
    db.record(KEY_B, make_stats(), source="serve")
    assert db.flushes == 0 and db.recorded == 0      # still buffered
    clock.now = 1.0
    db.record("c" * 64, make_stats(), source="serve")
    assert db.flushes == 1 and db.recorded == 3      # one transaction
    db.close()


def test_batched_reads_see_pending_writes(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"), flush_interval=3600,
                   clock=TickClock())
    db.record(KEY_A, make_stats(counters={"l1_hit": 9}),
              source="serve")
    # every reader flushes first: a handle always reads its writes
    assert db.count() == 1
    assert db.get_stats(KEY_A).counters["l1_hit"] == 9
    assert db.flushes == 1
    db.close()


def test_batched_rerecord_of_one_key_keeps_last_write(tmp_path):
    """Two records of one key inside one unflushed interval must not
    collide on child-table primary keys — last write wins, as it
    would across flushes."""
    db = ResultsDB(str(tmp_path / "r.db"), flush_interval=3600,
                   clock=TickClock())
    db.record(KEY_A, make_stats(counters={"l1_hit": 1}), source="a")
    db.record(KEY_A, make_stats(counters={"l1_hit": 2}), source="b")
    assert db.get_stats(KEY_A).counters["l1_hit"] == 2
    assert db.get_run(KEY_A)["source"] == "b"
    assert db.recorded == 1
    db.close()


def test_batched_close_flushes(tmp_path):
    path = str(tmp_path / "r.db")
    db = ResultsDB(path, flush_interval=3600, clock=TickClock())
    db.record(KEY_A, make_stats(), source="serve")
    db.close()
    assert ResultsDB(path).count() == 1


def test_batched_flush_max_caps_the_buffer(tmp_path):
    db = ResultsDB(str(tmp_path / "r.db"), flush_interval=3600,
                   flush_max=4, clock=TickClock())
    for index in range(10):
        db.record(f"{index:02d}" * 32, make_stats(), source="serve")
    assert db.flushes == 2 and db.recorded == 8      # 2 full batches
    assert db.flush() == 2                           # the remainder
    db.close()
