"""Timestamp overflow handling (Section V-D)."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.core.timestamps import TimestampDomain
from repro.gpu.gpu import GPU
from repro.trace.instr import Kernel, fence, load, store

from tests.conftest import random_kernel, run_and_check


# ---------------------------------------------------------------------------
# TimestampDomain unit tests
# ---------------------------------------------------------------------------

def test_domain_starts_at_epoch_zero():
    domain = TimestampDomain(ts_max=100, lease=10)
    assert domain.epoch == 0


def test_would_overflow_boundary():
    domain = TimestampDomain(ts_max=100, lease=10)
    assert not domain.would_overflow(100)
    assert domain.would_overflow(101)


def test_clamp_passes_through_in_range():
    domain = TimestampDomain(ts_max=100, lease=10)
    assert domain.clamp(55) == 55
    assert domain.epoch == 0


def test_clamp_resets_on_overflow():
    domain = TimestampDomain(ts_max=100, lease=10)
    fired = []
    domain.on_reset(lambda: fired.append(domain.epoch))
    assert domain.clamp(101) == -1
    assert domain.epoch == 1
    assert fired == [1]


def test_multiple_listeners_all_fire():
    domain = TimestampDomain(ts_max=100, lease=10)
    fired = []
    domain.on_reset(lambda: fired.append("a"))
    domain.on_reset(lambda: fired.append("b"))
    domain.overflow_reset()
    assert fired == ["a", "b"]


def test_domain_rejects_tiny_ts_max():
    with pytest.raises(ValueError):
        TimestampDomain(ts_max=15, lease=10)


# ---------------------------------------------------------------------------
# system-level overflow behaviour
# ---------------------------------------------------------------------------

def overflow_config(**overrides):
    return GPUConfig.tiny(protocol=Protocol.GTSC, ts_max=255, lease=10,
                          **overrides)


def test_store_hammering_triggers_resets_and_stays_coherent():
    """Each store advances a line's wts by ~lease; a 255-max space
    overflows quickly and must reset cleanly (and repeatedly)."""
    config = overflow_config(consistency=Consistency.RC)
    trace = []
    for _ in range(60):
        trace.append(store(0))
        trace.append(load(0))
    trace.append(fence())
    kernel = Kernel("hammer", [trace, list(trace)])
    gpu, stats = run_and_check(config, kernel)
    assert stats.counter("ts_overflows") >= 2


def test_l2_keeps_data_across_reset():
    """Resets rewrite timestamps but never lose written values."""
    config = overflow_config(consistency=Consistency.SC)
    writer = []
    for _ in range(40):
        writer.append(store(0))
    writer.append(fence())
    reader = [load(1)] * 3 + [load(0), fence()]
    kernel = Kernel("keep", [writer, reader])
    gpu, stats = run_and_check(config, kernel)
    assert stats.counter("ts_overflows") >= 1
    # the final value in the L2/memory is the last minted version
    assert gpu.machine.versions.latest(0) == 40


def test_epoch_propagates_to_l1_and_warps():
    config = overflow_config(consistency=Consistency.RC)
    trace = [store(0) for _ in range(40)] + [load(0), fence()]
    gpu, stats = run_and_check(config, Kernel("epoch", [trace]))
    domain = gpu.machine.timestamp_domain
    assert domain.epoch >= 1
    # every L1 that heard about the reset adopted the epoch
    l1 = gpu.machine.l1s[0]
    assert l1.epoch == domain.epoch


def test_random_traffic_across_many_resets_is_coherent():
    for seed in (3, 9):
        config = overflow_config(consistency=Consistency.RC)
        kernel = random_kernel(seed, warps=4, length=100, lines=4,
                               p_store=0.5, p_load=0.4)
        gpu, stats = run_and_check(config, kernel)
        assert stats.counter("ts_overflows") >= 1


def test_sixteen_bit_default_never_overflows_small_runs():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    kernel = random_kernel(1, warps=4, length=60)
    _, stats = run_and_check(config, kernel)
    assert stats.counter("ts_overflows") == 0


# ---------------------------------------------------------------------------
# shared clock across GPUs (repro.multigpu): one domain, many machines
# ---------------------------------------------------------------------------

def test_reset_snapshot_tolerates_listener_registration():
    domain = TimestampDomain(ts_max=100, lease=10)
    fired = []
    domain.on_reset(lambda: (fired.append("a"),
                             domain.on_reset(lambda: fired.append("late"))))
    domain.overflow_reset()
    assert fired == ["a"]          # the new listener waits a round
    domain.overflow_reset()
    assert fired == ["a", "a", "late"]


def test_reentrant_reset_fails_loudly():
    domain = TimestampDomain(ts_max=100, lease=10)
    domain.on_reset(domain.overflow_reset)
    with pytest.raises(RuntimeError, match="re-entrant"):
        domain.overflow_reset()
    assert domain.epoch == 1       # the outer reset completed its bump


def _hammer_kernel(warps: int) -> Kernel:
    trace = []
    for _ in range(60):
        trace.append(store(0))
        trace.append(load(0))
    trace.append(fence())
    return Kernel("hammer-x", [list(trace) for _ in range(warps)])


def test_two_gpu_shared_clock_overflow_stays_coherent():
    """A 255-wide epoch shared by two GPUs overflows repeatedly; every
    reset must rewrite both GPUs' banks plus the home directory in one
    atomic sweep, and all coherence invariants must survive."""
    config = overflow_config(consistency=Consistency.RC, n_gpus=2)
    gpu, stats = run_and_check(config, _hammer_kernel(4))
    assert stats.counter("ts_overflows") >= 2
    assert stats.counter("interlink_bytes") > 0   # traffic crossed GPUs
    # one shared clock: every machine sees the same domain object/epoch
    domains = {id(m.timestamp_domain) for m in gpu.machines}
    assert len(domains) == 1
    assert gpu.machines[0].timestamp_domain.epoch == \
        stats.counter("ts_overflows")
    # the shared home directory was reset along with the banks: its
    # rising floor restarted and cannot exceed the post-reset clock
    assert gpu.home.floor >= 1


def test_two_gpu_overflow_audit_replay_is_clean():
    """Cross-GPU audit replay (home-directory shadow + cluster-wide
    write monotonicity) stays violation-free across epoch resets."""
    from repro.obs import Observability, replay_audit
    from repro.obs.audit import ProtocolAuditLog
    from repro.gpu.gpu import make_gpu

    config = overflow_config(consistency=Consistency.RC, n_gpus=2,
                             home_ts_entries=8)
    obs = Observability(audit=ProtocolAuditLog())
    gpu = make_gpu(config, obs=obs)
    stats = gpu.run(_hammer_kernel(4))
    assert stats.counter("ts_overflows") >= 2
    replayed = replay_audit(obs.audit.records, lease=config.lease,
                            home_capacity=config.home_ts_entries)
    assert replayed == len(obs.audit.records) > 0


def test_two_gpu_overflow_is_deterministic():
    config = overflow_config(consistency=Consistency.RC, n_gpus=2)
    kernel = _hammer_kernel(4)
    from repro.gpu.gpu import make_gpu
    a = make_gpu(config, record_accesses=False).run(kernel)
    b = make_gpu(config, record_accesses=False).run(kernel)
    assert a.cycles == b.cycles
    assert a.counters == b.counters
