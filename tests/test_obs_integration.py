"""End-to-end observability guarantees.

The central contract: observability is *passive*.  A run with the full
bundle enabled must produce byte-identical statistics (minus the
time-series it adds) to a run without it, because traces that perturb
the system they observe are worthless for debugging timing protocols.
"""

import json

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.obs import Observability, replay_audit, validate_chrome_trace
from repro.workloads import build_workload


def run(workload="BFS", protocol=Protocol.GTSC, obs=None, **overrides):
    config = GPUConfig.tiny(protocol=protocol,
                            consistency=Consistency.RC, **overrides)
    kernel = build_workload(workload, scale=0.3, seed=7)
    gpu = GPU(config, obs=obs)
    return gpu.run(kernel), gpu


# ---------------------------------------------------------------------------
# the passivity contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC,
                                      Protocol.MESI,
                                      Protocol.NONCOHERENT])
def test_full_observability_never_perturbs_results(protocol):
    baseline, _ = run(protocol=protocol)
    traced, _ = run(protocol=protocol,
                    obs=Observability.full(interval=500))
    plain = baseline.to_dict()
    observed = traced.to_dict()
    observed.pop("timeseries")
    assert json.dumps(observed, sort_keys=True) == \
        json.dumps(plain, sort_keys=True)


def test_disabled_bundle_is_the_default():
    stats, gpu = run()
    assert gpu.machine.obs is None
    assert stats.timeseries == {}


# ---------------------------------------------------------------------------
# the full bundle actually observes
# ---------------------------------------------------------------------------


def test_traced_gtsc_run_produces_all_three_outputs():
    obs = Observability.full(interval=500)
    stats, _ = run(obs=obs)
    assert len(obs.tracer) > 0
    assert len(obs.audit) > 0
    assert len(obs.metrics.samples) > 0
    assert validate_chrome_trace(obs.tracer.to_chrome()) > 0
    assert replay_audit(obs.audit.records, lease=10) == len(obs.audit)


def test_trace_covers_memory_system_tracks():
    obs = Observability.full(interval=500)
    run(obs=obs)
    tracks = {event[3] for event in obs.tracer.events}
    assert "noc" in tracks
    assert any(track.startswith("dram") for track in tracks)
    assert "metrics" in tracks


def test_sm_stall_spans_are_closed_intervals():
    obs = Observability.full(interval=500)
    stats, _ = run(obs=obs)
    spans = [e for e in obs.tracer.events
             if e[0] == "X" and e[4].startswith("stall")]
    assert spans, "a memory-bound kernel must record stall windows"
    for _, start, dur, _, _, _ in spans:
        assert dur >= 0
        assert start + dur <= stats.cycles


def test_tc_write_stalls_are_traced():
    obs = Observability.full(interval=500)
    config = GPUConfig.tiny(protocol=Protocol.TC,
                            consistency=Consistency.SC, lease=40)
    kernel = build_workload("STN", scale=0.3, seed=7)
    stats = GPU(config, obs=obs).run(kernel)
    if stats.counter("l2_write_stalls") > 0:
        names = {e[4] for e in obs.tracer.events}
        assert "write_stall" in names or "atomic_stall" in names


def test_mesi_coherence_actions_are_traced():
    obs = Observability.full(interval=500)
    stats, _ = run("STN", protocol=Protocol.MESI, obs=obs)
    names = {e[4] for e in obs.tracer.events}
    if stats.counter("dir_invalidations") > 0:
        assert "invalidate" in names


def test_engine_tracing_is_opt_in_within_the_bundle():
    quiet = Observability.full(interval=500)
    run(obs=quiet)
    assert not any(e[3] == "engine" for e in quiet.tracer.events)

    verbose = Observability.full(interval=500, trace_engine=True)
    run(obs=verbose)
    assert any(e[3] == "engine" for e in verbose.tracer.events)


def test_engine_hook_absent_without_members():
    _, gpu = run(obs=Observability())
    assert gpu.machine.engine.hook is None
