"""Tests for the 2D-mesh interconnect option."""

import pytest

from repro.config import Consistency, GPUConfig, NocTopology, Protocol
from repro.mem.noc import MeshNetwork
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector

from tests.conftest import random_kernel, run_and_check


def make_mesh(num_sms=4, num_banks=2, hop_latency=2, bandwidth=16):
    engine = Engine()
    stats = StatsCollector()
    mesh = MeshNetwork(engine, stats, hop_latency, bandwidth,
                       num_sms, num_banks)
    return engine, stats, mesh


# ---------------------------------------------------------------------------
# geometry and routing
# ---------------------------------------------------------------------------

def test_grid_covers_all_nodes():
    _e, _s, mesh = make_mesh(num_sms=4, num_banks=2)
    assert mesh.cols * mesh.rows >= 6
    coords = {mesh.coords(n) for n in range(6)}
    assert len(coords) == 6


def test_route_is_xy_dimension_order():
    _e, _s, mesh = make_mesh(num_sms=4, num_banks=2)
    # node 0 at (0,0); node 5 (bank 1) at (2,1) on a 3-wide grid
    path = mesh.route(("sm", 0), ("l2", 1))
    # X moves first, then Y — never interleaved
    switched = False
    for (fx, fy), (tx, ty) in path:
        if fy != ty:
            switched = True
        if switched:
            assert fx == tx, "X hop after a Y hop breaks XY routing"


def test_route_to_self_is_empty():
    _e, _s, mesh = make_mesh()
    assert mesh.route(("sm", 0), ("sm", 0)) == []


def test_route_endpoints_connect():
    _e, _s, mesh = make_mesh(num_sms=12, num_banks=4)
    for sm in range(12):
        for bank in range(4):
            path = mesh.route(("sm", sm), ("l2", bank))
            if path:
                assert path[0][0] == mesh.coords(sm)
                assert path[-1][1] == mesh.coords(12 + bank)
            # consecutive hops chain
            for first, second in zip(path, path[1:]):
                assert first[1] == second[0]


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------

def test_latency_scales_with_distance():
    engine, _s, mesh = make_mesh(num_sms=12, num_banks=4, hop_latency=3,
                                 bandwidth=64)
    arrivals = {}

    def send(src, dst, tag):
        mesh.send(src, dst, 16, "ctrl",
                  lambda: arrivals.__setitem__(tag, engine.now))

    send(("sm", 0), ("sm", 1), "near")    # 1 hop
    send(("sm", 0), ("l2", 3), "far")     # several hops
    engine.run()
    assert arrivals["far"] > arrivals["near"]


def test_shared_link_contention():
    engine, _s, mesh = make_mesh(hop_latency=1, bandwidth=8)
    arrivals = []
    # two messages from the same source along the same first link
    for _ in range(2):
        mesh.send(("sm", 0), ("sm", 1), 32, "data",
                  lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals[1] - arrivals[0] >= 32 // 8  # serialized


def test_disjoint_paths_do_not_contend():
    engine, _s, mesh = make_mesh(num_sms=4, num_banks=2, hop_latency=1,
                                 bandwidth=8)
    arrivals = []
    mesh.send(("sm", 0), ("sm", 1), 32, "data",
              lambda: arrivals.append(engine.now))
    mesh.send(("sm", 2), ("l2", 1), 32, "data",
              lambda: arrivals.append(engine.now))
    engine.run()
    # the second did not queue behind the first (different links)
    assert abs(arrivals[0] - arrivals[1]) <= mesh.hop_latency * 3


def test_hop_statistics_counted():
    engine, stats, mesh = make_mesh()
    mesh.send(("sm", 0), ("l2", 1), 16, "ctrl", lambda: None)
    engine.run()
    assert stats.get("noc_hops") >= 1
    assert stats.get("noc_bytes") == 16


def test_rejects_bad_sizes():
    engine, _s, mesh = make_mesh()
    with pytest.raises(ValueError):
        mesh.send(("sm", 0), ("l2", 0), 0, "ctrl", lambda: None)
    with pytest.raises(ValueError):
        MeshNetwork(Engine(), StatsCollector(), 1, 0, 2, 2)


# ---------------------------------------------------------------------------
# whole-machine runs on the mesh
# ---------------------------------------------------------------------------

def test_gtsc_on_mesh_is_coherent():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            noc_topology=NocTopology.MESH)
    gpu, stats = run_and_check(config, random_kernel(1, warps=4,
                                                     length=50))
    assert stats.counter("noc_hops") > 0


def test_mesh_and_port_agree_on_values_not_timing():
    kernel = random_kernel(2, warps=4, length=40)
    states = []
    for topology in (NocTopology.PORT, NocTopology.MESH):
        config = GPUConfig.tiny(protocol=Protocol.GTSC,
                                consistency=Consistency.SC,
                                noc_topology=topology)
        gpu, _ = run_and_check(config, kernel)
        footprint = sorted(kernel.memory_footprint())
        states.append([gpu.machine.versions.latest(a)
                       for a in footprint])
    assert states[0] == states[1]


def test_paper_sized_mesh_builds():
    config = GPUConfig.paper(noc_topology=NocTopology.MESH)
    from repro.gpu.gpu import GPU
    from repro.trace.instr import Kernel, fence, load
    stats = GPU(config).run(Kernel("k", [[load(0), fence()]]))
    assert stats.cycles > 0
