"""Sliding-window rate / ETA estimation for progress heartbeats."""

from __future__ import annotations

import io
import re
from contextlib import redirect_stderr

import pytest

from repro.config import Consistency, Protocol
from repro.harness.progress import RateEstimator, format_duration
from repro.harness.runner import ExperimentRunner


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# format_duration
# ---------------------------------------------------------------------------

def test_format_duration_picks_a_sensible_unit():
    assert format_duration(0) == "0s"
    assert format_duration(42.4) == "42s"
    assert format_duration(188) == "3m08s"
    assert format_duration(2 * 3600 + 5 * 60) == "2h05m"
    assert format_duration(-3) == "0s"


# ---------------------------------------------------------------------------
# RateEstimator
# ---------------------------------------------------------------------------

def test_no_estimate_before_the_first_tick():
    estimator = RateEstimator(clock=FakeClock())
    assert estimator.rate() is None
    assert estimator.eta_seconds(10) is None
    assert estimator.suffix(10) == ""


def test_rate_and_eta_from_uniform_ticks():
    clock = FakeClock()
    estimator = RateEstimator(clock=clock)
    for _ in range(4):
        clock.now += 2.0
        estimator.tick()
    assert estimator.rate() == pytest.approx(0.5)
    assert estimator.eta_seconds(10) == pytest.approx(20.0)
    assert estimator.suffix(10) == ", 2.0s/point, eta 20s"


def test_fast_rates_render_per_second():
    clock = FakeClock()
    estimator = RateEstimator(clock=clock)
    for _ in range(5):
        clock.now += 0.25
        estimator.tick()
    assert estimator.suffix(8) == ", 4.0/s, eta 2s"


def test_window_tracks_the_recent_regime():
    clock = FakeClock()
    estimator = RateEstimator(window=4, clock=clock)
    # slow early points...
    for _ in range(6):
        clock.now += 100.0
        estimator.tick()
    # ...then a fast tail: the window must forget the slow phase
    for _ in range(4):
        clock.now += 1.0
        estimator.tick()
    assert estimator.rate() == pytest.approx(1.0)


def test_window_must_hold_two_ticks():
    with pytest.raises(ValueError):
        RateEstimator(window=1)


def test_zero_span_yields_no_estimate():
    clock = FakeClock()
    estimator = RateEstimator(clock=clock)
    estimator.tick()  # same instant as construction
    assert estimator.rate() is None
    assert estimator.suffix(3) == ""


# ---------------------------------------------------------------------------
# heartbeat integration
# ---------------------------------------------------------------------------

def test_sequential_prefetch_heartbeats_carry_eta(tmp_path):
    runner = ExperimentRunner(preset="tiny", scale=0.2, seed=7,
                              progress=True)
    points = ExperimentRunner.matrix_points(["BFS"])
    stream = io.StringIO()
    with redirect_stderr(stream):
        runner.prefetch(points)
    lines = stream.getvalue().splitlines()
    assert len(lines) == len(points)
    # the first line has only one tick of history — no estimate yet;
    # later lines must carry one
    assert re.search(r"eta \d", lines[-1])
    assert re.search(r"(/s|s/point)", lines[-1])


def test_parallel_pool_heartbeats_carry_eta(tmp_path):
    parallel = pytest.importorskip("repro.harness.parallel")
    import os
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs 2 cores for a real pool")
    runner = parallel.ParallelRunner(jobs=2, preset="tiny", scale=0.2,
                                     seed=7, progress=True)
    stream = io.StringIO()
    with redirect_stderr(stream):
        runner.prefetch(ExperimentRunner.matrix_points(["BFS", "KM"]))
    text = stream.getvalue()
    assert "worker process(es)" in text
    assert re.search(r"eta \d", text)
