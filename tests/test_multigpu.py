"""The multi-GPU cluster (repro.multigpu): correctness end to end.

Covers the HALCONE-style machine at 2 and 4 GPUs: cross-GPU litmus
outcomes under every protocol, G-TSC audit replay over the shared
home directory, the home directory's capacity summarization, the
``n_gpus=1`` identity (the cluster path never perturbs single-GPU
results), and bit-reproducibility of cluster runs.
"""

import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU, make_gpu
from repro.multigpu import HomeDirectory, MultiGpuGPU
from repro.stats import names
from repro.workloads import MULTIGPU_NAMES, build_workload
from repro.workloads.litmus import (
    X_LINE,
    Y_LINE,
    message_passing,
    mp_outcomes,
    observed_versions,
    store_buffering,
)

SEEDS = range(4)
GPU_COUNTS = (2, 4)

COHERENT_CONFIGS = [
    (Protocol.GTSC, Consistency.SC),
    (Protocol.GTSC, Consistency.RC),
    (Protocol.TC, Consistency.SC),
    (Protocol.TC, Consistency.RC),
    (Protocol.MESI, Consistency.SC),
    (Protocol.MESI, Consistency.RC),
    (Protocol.DISABLED, Consistency.SC),
    (Protocol.DISABLED, Consistency.RC),
]

SC_CONFIGS = [(p, c) for p, c in COHERENT_CONFIGS
              if c is Consistency.SC]


def cluster_config(protocol, consistency, n_gpus, **overrides):
    return GPUConfig.tiny(protocol=protocol, consistency=consistency,
                          n_gpus=n_gpus, **overrides)


def run_litmus(kernel, protocol, consistency, n_gpus):
    gpu = make_gpu(cluster_config(protocol, consistency, n_gpus))
    gpu.run(kernel)
    return gpu


# ---------------------------------------------------------------------------
# cross-GPU litmus
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", GPU_COUNTS)
@pytest.mark.parametrize("protocol,consistency", COHERENT_CONFIGS)
def test_cross_gpu_message_passing_never_reads_stale_data(
        protocol, consistency, n_gpus):
    """Writer and reader are consecutive CTAs, hence on *different*
    GPUs: a reader that saw the flag must see the fence-ordered data
    across the interlink too."""
    for seed in SEEDS:
        kernel = message_passing(random.Random(seed), with_fences=True)
        gpu = run_litmus(kernel, protocol, consistency, n_gpus)
        for flag_version, data_version in mp_outcomes(gpu.machine.log):
            if flag_version >= 1:
                assert data_version >= 1, (
                    f"{protocol}/{consistency} x{n_gpus}GPU seed "
                    f"{seed}: saw flag but stale data")


def test_cross_gpu_message_passing_handoff_crosses_the_link():
    """Sanity for the suite above: the MP handoff is really remote
    (interlink messages flow) and really observed (flag seen >= once)."""
    hits = 0
    for seed in SEEDS:
        kernel = message_passing(random.Random(seed), with_fences=True)
        gpu = run_litmus(kernel, Protocol.GTSC, Consistency.RC, 2)
        assert gpu.machine.stats.snapshot()["interlink_messages"] > 0
        hits += sum(1 for f, _ in mp_outcomes(gpu.machine.log) if f >= 1)
    assert hits > 0


@pytest.mark.parametrize("n_gpus", GPU_COUNTS)
@pytest.mark.parametrize("protocol,consistency", SC_CONFIGS)
def test_cross_gpu_store_buffering_forbidden_under_sc(
        protocol, consistency, n_gpus):
    """SC forbids both warps reading 0, even with the two warps on
    different GPUs and both lines homed remotely for one of them."""
    for seed in SEEDS:
        kernel = store_buffering(random.Random(seed))
        gpu = run_litmus(kernel, protocol, consistency, n_gpus)
        log = gpu.machine.log
        r0 = observed_versions(log, warp_uid=0, addr=Y_LINE)
        r1 = observed_versions(log, warp_uid=1, addr=X_LINE)
        assert r0 and r1
        assert r0[0] >= 1 or r1[0] >= 1, (
            f"{protocol}/{consistency} x{n_gpus}GPU seed {seed}: "
            f"both warps read 0 under SC")


@pytest.mark.parametrize("n_gpus", GPU_COUNTS)
def test_gtsc_cross_gpu_audit_replay_is_violation_free(n_gpus):
    from repro.obs import Observability, replay_audit
    from repro.obs.audit import ProtocolAuditLog

    config = cluster_config(Protocol.GTSC, Consistency.SC, n_gpus)
    obs = Observability(audit=ProtocolAuditLog())
    gpu = make_gpu(config, obs=obs)
    gpu.run(message_passing(random.Random(7), with_fences=True))
    replayed = replay_audit(obs.audit.records, lease=config.lease,
                            home_capacity=config.home_ts_entries)
    assert replayed == len(obs.audit.records) > 0
    # cluster audit units carry the per-GPU prefix
    units = {record.unit for record in obs.audit.records}
    assert any(unit.startswith("g1:") for unit in units)


# ---------------------------------------------------------------------------
# inter-GPU workloads on the cluster
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", [Protocol.GTSC, Protocol.TC,
                                      Protocol.MESI])
@pytest.mark.parametrize("name", MULTIGPU_NAMES)
def test_multigpu_workloads_complete_on_the_cluster(name, protocol):
    config = cluster_config(protocol, Consistency.RC, 2)
    kernel = build_workload(name, scale=0.15, seed=1)
    stats = make_gpu(config, record_accesses=False).run(kernel)
    assert stats.counter("warps_retired") == kernel.num_warps
    assert stats.counter("interlink_bytes") > 0


def test_cluster_emits_only_registered_stat_names():
    config = cluster_config(Protocol.GTSC, Consistency.RC, 2)
    kernel = build_workload("PCX", scale=0.15, seed=1)
    stats = make_gpu(config, record_accesses=False).run(kernel)
    assert names.unregistered(stats.counters) == set()


def test_cluster_runs_are_bit_reproducible():
    config = cluster_config(Protocol.GTSC, Consistency.RC, 4)
    kernel = build_workload("ARX", scale=0.15, seed=3)
    a = make_gpu(config, record_accesses=False).run(kernel)
    b = make_gpu(config, record_accesses=False).run(kernel)
    assert a.cycles == b.cycles
    assert a.counters == b.counters


# ---------------------------------------------------------------------------
# n_gpus = 1: the cluster path must not exist
# ---------------------------------------------------------------------------

def test_single_gpu_config_builds_the_plain_machine():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    assert isinstance(make_gpu(config), GPU)
    with pytest.raises(ValueError):
        MultiGpuGPU(config)


def test_explicit_n_gpus_1_is_stat_identical_to_the_default():
    kernel = build_workload("BFS", scale=0.15, seed=1)
    plain = GPUConfig.tiny(protocol=Protocol.GTSC)
    explicit = GPUConfig.tiny(protocol=Protocol.GTSC, n_gpus=1)
    a = make_gpu(plain, record_accesses=False).run(kernel)
    b = make_gpu(explicit, record_accesses=False).run(kernel)
    assert a.cycles == b.cycles
    assert a.counters == b.counters
    # and no interlink counters ever appear on a single GPU
    assert "interlink_bytes" not in a.counters
    assert a.counters.get("interlink_messages", 0) == 0


def test_single_gpu_units_carry_no_cluster_prefix():
    from repro.obs import Observability
    from repro.obs.audit import ProtocolAuditLog

    obs = Observability(audit=ProtocolAuditLog())
    gpu = make_gpu(GPUConfig.tiny(protocol=Protocol.GTSC), obs=obs)
    gpu.run(message_passing(random.Random(1)))
    units = {record.unit for record in obs.audit.records}
    assert units and all(":" not in unit for unit in units)


# ---------------------------------------------------------------------------
# home directory
# ---------------------------------------------------------------------------

def test_home_directory_mem_ts_starts_at_floor():
    home = HomeDirectory(capacity=8)
    assert home.mem_ts_of(123) == 1


def test_home_directory_fold_raises_per_address_mem_ts():
    home = HomeDirectory(capacity=8)
    home.fold(5, 40)
    assert home.mem_ts_of(5) == 40
    assert home.mem_ts_of(6) == 1
    home.fold(5, 12)                  # folds never lower a mem_ts
    assert home.mem_ts_of(5) == 40


def test_home_directory_summarizes_at_capacity():
    home = HomeDirectory(capacity=4)
    for addr in range(8):
        home.fold(addr, 10 + addr)
    assert len(home.entries) <= 4
    # summarization folds the dropped (smallest) values into the
    # floor: conservative, never lowers any address's mem_ts
    assert home.floor >= 10
    for addr in range(8):
        assert home.mem_ts_of(addr) >= min(10 + addr, home.floor)


def test_home_directory_summarization_is_deterministic():
    def build():
        home = HomeDirectory(capacity=4)
        for addr in (3, 1, 7, 5, 2, 8, 6, 4):
            home.fold(addr, 20 + addr)
        return home.floor, dict(home.entries)

    assert build() == build()


def test_home_directory_reset_restores_the_initial_floor():
    home = HomeDirectory(capacity=4)
    for addr in range(6):
        home.fold(addr, 50 + addr)
    home.reset()
    assert home.floor == 1
    assert not home.entries
    assert home.mem_ts_of(0) == 1


# ---------------------------------------------------------------------------
# config surface
# ---------------------------------------------------------------------------

def test_config_rejects_nonpositive_gpu_count():
    with pytest.raises(ValueError):
        GPUConfig.tiny(n_gpus=0)


def test_config_rejects_bad_interlink_knobs_for_clusters():
    with pytest.raises(ValueError):
        GPUConfig.tiny(n_gpus=2, interlink_latency=0)
    with pytest.raises(ValueError):
        GPUConfig.tiny(n_gpus=2, interlink_bandwidth=0)
    # the same knobs are ignored (and legal) on a single GPU
    GPUConfig.tiny(n_gpus=1, interlink_latency=0)


def test_describe_names_the_gpu_count():
    assert "2GPU" in GPUConfig.tiny(n_gpus=2).describe()
    assert "GPU" not in GPUConfig.tiny().describe()


def test_run_key_distinguishes_cluster_shapes():
    from repro.harness.cache import run_key

    base = GPUConfig.tiny(protocol=Protocol.GTSC)
    two = GPUConfig.tiny(protocol=Protocol.GTSC, n_gpus=2)
    slow = GPUConfig.tiny(protocol=Protocol.GTSC, n_gpus=2,
                          interlink_latency=400)
    keys = {run_key(config, "PCX", 0.2, 1)
            for config in (base, two, slow)}
    assert len(keys) == 3
