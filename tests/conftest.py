"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import make_gpu
from repro.trace.instr import Kernel, compute, fence, load, store
from repro.validate.checker import (
    check_atomicity,
    check_gtsc_log,
    check_single_writer_logical,
    check_warp_monotonicity,
)


@pytest.fixture
def tiny_config() -> GPUConfig:
    return GPUConfig.tiny()

@pytest.fixture
def small_config() -> GPUConfig:
    return GPUConfig.small()


def run_gpu(config: GPUConfig, kernel: Kernel, max_events: int = 2_000_000):
    """Run a kernel and return (GPU or MultiGpuGPU, RunStats)."""
    gpu = make_gpu(config)
    stats = gpu.run(kernel, max_events=max_events)
    return gpu, stats


def run_and_check(config: GPUConfig, kernel: Kernel,
                  max_events: int = 2_000_000):
    """Run a G-TSC kernel and verify every coherence invariant.

    Returns (GPU, RunStats).  Applies the timestamp-order value check
    always, the per-warp monotonicity check only under SC (it is an
    SC-only invariant), and the logical single-writer check always.
    """
    assert config.protocol is Protocol.GTSC
    gpu, stats = run_gpu(config, kernel, max_events)
    log, versions = gpu.machine.log, gpu.machine.versions
    assert check_gtsc_log(log, versions) == len(log.loads)
    check_single_writer_logical(log, versions)
    assert check_atomicity(log, versions) == len(log.atomics)
    if config.consistency is Consistency.SC:
        check_warp_monotonicity(log)
    return gpu, stats


def random_trace(rng: random.Random, length: int = 40, lines: int = 8,
                 p_load: float = 0.5, p_store: float = 0.3,
                 p_fence: float = 0.1):
    """A random warp trace over a small shared footprint."""
    trace = []
    for _ in range(length):
        r = rng.random()
        if r < p_load:
            trace.append(load(rng.randrange(lines)))
        elif r < p_load + p_store:
            trace.append(store(rng.randrange(lines)))
        elif r < p_load + p_store + p_fence:
            trace.append(fence())
        else:
            trace.append(compute(rng.randrange(1, 6)))
    trace.append(fence())
    return trace


def random_kernel(seed: int, warps: int = 4, **kwargs) -> Kernel:
    rng = random.Random(seed)
    return Kernel(f"rand-{seed}",
                  [random_trace(rng, **kwargs) for _ in range(warps)])
