"""Tests for the experiment harness (runner, formatters, experiments).

The experiments themselves are exercised at a very small scale so the
whole module stays fast; the shape assertions on their outputs live in
test_integration_shapes.py.
"""

import pytest

from repro.config import Consistency, Protocol
from repro.harness.runner import ExperimentRunner
from repro.harness.tables import ExperimentResult, format_result, geomean
from repro.harness import experiments as exp


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(preset="tiny", scale=0.15, seed=3)


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def test_runner_memoises_identical_points(runner):
    first = runner.run("HS", Protocol.GTSC, Consistency.RC)
    second = runner.run("HS", Protocol.GTSC, Consistency.RC)
    assert first is second


def test_runner_distinguishes_overrides(runner):
    a = runner.run("HS", Protocol.GTSC, Consistency.RC, lease=8)
    b = runner.run("HS", Protocol.GTSC, Consistency.RC, lease=20)
    assert a is not b


def test_runner_rejects_bad_preset():
    with pytest.raises(ValueError):
        ExperimentRunner(preset="huge")


def test_base_config_merges_overrides():
    runner = ExperimentRunner(preset="tiny", lease=12)
    config = runner.base_config(Protocol.GTSC, Consistency.SC)
    assert config.lease == 12
    assert config.consistency is Consistency.SC
    config2 = runner.base_config(Protocol.GTSC, Consistency.SC, lease=9)
    assert config2.lease == 9


# ---------------------------------------------------------------------------
# result container / formatting
# ---------------------------------------------------------------------------

def test_result_column_and_row_access():
    result = ExperimentResult("x", "t", ["name", "v"],
                              rows=[["a", 1], ["b", 2]])
    assert result.column("v") == [1, 2]
    assert result.row("b") == ["b", 2]
    with pytest.raises(KeyError):
        result.row("c")


def test_format_result_renders_all_rows():
    result = ExperimentResult("fig0", "demo", ["name", "val"],
                              rows=[["a", 1.25], ["b", 3]],
                              summary={"agg": 0.5}, notes="hello")
    text = format_result(result)
    assert "fig0" in text and "demo" in text
    assert "1.250" in text and "3" in text
    assert "agg: 0.500" in text
    assert "hello" in text


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


# ---------------------------------------------------------------------------
# experiments produce well-formed outputs
# ---------------------------------------------------------------------------

def test_table2_has_all_benchmarks(runner):
    result = exp.table2(runner)
    assert len(result.rows) == 12
    assert all(row[2] > 0 and row[3] > 0 for row in result.rows)


def test_fig12_structure(runner):
    result = exp.fig12(runner)
    assert len(result.rows) == 12
    # coherent rows carry no W/L1 bar
    for row in result.rows:
        if row[1] == "coherent":
            assert row[2] == "-"
        else:
            assert isinstance(row[2], float)
    assert "G-TSC-RC over TC-RC (coherent, geomean)" in result.summary


def test_fig13_normalised_stalls_positive(runner):
    result = exp.fig13(runner)
    for row in result.rows:
        for cell in row[2:]:
            assert cell >= 0


def test_fig14_rows_cover_lease_range(runner):
    result = exp.fig14(runner, leases=[8, 20])
    assert result.headers[1:] == ["lease=8", "lease=20"]
    assert len(result.rows) == 6


def test_fig15_and_16_ratios_positive(runner):
    for fn in (exp.fig15, exp.fig16):
        result = fn(runner)
        for row in result.rows:
            assert all(isinstance(c, float) and c > 0 for c in row[2:])


def test_fig17_l1_energy_nonnegative(runner):
    result = exp.fig17(runner)
    for row in result.rows:
        assert all(c >= 0 for c in row[2:])


def test_expiration_reports_reduction(runner):
    result = exp.expiration(runner)
    assert len(result.rows) == 6
    assert "mean expiration-miss reduction" in result.summary


def test_headline_has_three_claims(runner):
    result = exp.headline(runner)
    assert len(result.rows) == 3
    assert [row[1] for row in result.rows] == [0.38, 0.26, 0.20]


def test_ablations_run(runner):
    for fn in (exp.ablation_visibility, exp.ablation_combining,
               exp.ablation_inclusion):
        result = fn(runner)
        assert result.rows
    lease_result = exp.ablation_tc_lease(runner, leases=[50, 200],
                                         workloads=["DLP"])
    assert lease_result.rows[0][0] == "DLP"
