"""CTA placement and intra-CTA barriers (__syncthreads)."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.trace.instr import (
    Kernel,
    barrier,
    compute,
    fence,
    load,
    store,
)

from tests.conftest import run_and_check


def run(kernel, **overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, **overrides)
    gpu = GPU(config)
    stats = gpu.run(kernel)
    return gpu, stats


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

def test_cta_warps_land_on_one_sm():
    kernel = Kernel("place", [[compute(2)] for _ in range(4)],
                    cta_size=2)
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    # inspect placement before the run drains the queues
    gpu._execute(kernel, max_events=None)
    # CTA 0 -> SM0, CTA 1 -> SM1; each SM saw exactly 2 warps retire
    assert gpu.sms[0].retired == 2
    assert gpu.sms[1].retired == 2


def test_cta_larger_than_sm_capacity_rejected():
    kernel = Kernel("big", [[compute(1)] for _ in range(4)], cta_size=4)
    config = GPUConfig.tiny(protocol=Protocol.GTSC)  # 2 warps/SM
    with pytest.raises(ValueError, match="cta_size"):
        GPU(config).run(kernel)


def test_ctas_activate_in_waves_as_units():
    # 4 CTAs of 2 warps on a 2-SM, 2-warp/SM machine: two waves
    kernel = Kernel("waves", [[compute(5)] for _ in range(8)],
                    cta_size=2)
    _, stats = run(kernel)
    assert stats.counter("warps_retired") == 8


def test_kernel_validate_rejects_barrier_without_cta():
    kernel = Kernel("oops", [[barrier()], [barrier()]])
    with pytest.raises(ValueError, match="cta_size"):
        kernel.validate()


def test_num_ctas():
    kernel = Kernel("n", [[compute(1)] for _ in range(5)], cta_size=2)
    assert kernel.num_ctas == 3


# ---------------------------------------------------------------------------
# barrier semantics
# ---------------------------------------------------------------------------

def test_barrier_waits_for_all_cta_warps():
    """The fast warp must wait at the barrier for the slow warp."""
    kernel = Kernel("sync", [
        [compute(2), barrier(), compute(1)],     # fast
        [compute(50), barrier(), compute(1)],    # slow
    ], cta_size=2)
    _, stats = run(kernel)
    # the fast warp could not retire before the slow one arrived
    assert stats.cycles >= 50
    assert stats.counter("barriers") == 2
    assert stats.counter("barrier_releases") == 1


def test_barrier_orders_producer_consumer_within_cta():
    """The classic __syncthreads pattern: warp 0 writes, both sync,
    warp 1 reads — the read must observe the write, every time."""
    for _ in range(3):
        kernel = Kernel("prodcons", [
            [store(0), barrier(), compute(1), fence()],
            [compute(3), barrier(), load(0), fence()],
        ], cta_size=2)
        gpu, _ = run_and_check(
            GPUConfig.tiny(protocol=Protocol.GTSC,
                           consistency=Consistency.SC), kernel)
        read = next(r for r in gpu.machine.log.loads if r.addr == 0)
        assert read.version == 1


def test_multiple_barrier_rounds():
    kernel = Kernel("rounds", [
        [compute(2), barrier(), compute(2), barrier(), compute(2)],
        [compute(3), barrier(), compute(3), barrier(), compute(3)],
    ], cta_size=2)
    _, stats = run(kernel)
    assert stats.counter("barrier_releases") == 2
    assert stats.counter("warps_retired") == 2


def test_retiring_warp_releases_waiting_cta_mates():
    """A warp whose trace ends without reaching the next barrier must
    not deadlock its CTA (forgiving semantics, documented)."""
    kernel = Kernel("uneven", [
        [compute(2), barrier(), compute(2), barrier(), compute(1)],
        [compute(2), barrier()],   # stops after the first barrier
    ], cta_size=2)
    _, stats = run(kernel)
    assert stats.counter("warps_retired") == 2


def test_independent_ctas_do_not_synchronise_with_each_other():
    # two CTAs; CTA 0's barrier must not wait for CTA 1
    kernel = Kernel("indep", [
        [compute(2), barrier(), compute(1)],
        [compute(2), barrier(), compute(1)],
        [compute(200), barrier(), compute(1)],
        [compute(200), barrier(), compute(1)],
    ], cta_size=2)
    gpu, stats = run(kernel)
    # CTA 0 (SM0) finished long before CTA 1 (SM1): check via retire
    assert stats.counter("barrier_releases") == 2


def test_barrier_drains_memory_before_arrival():
    """Arrival requires the warp's stores to be globally performed."""
    kernel = Kernel("drain", [
        [store(0), store(1), barrier(), compute(1)],
        [compute(1), barrier(), load(0), load(1), fence()],
    ], cta_size=2)
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    gpu, _ = run_and_check(config, kernel)
    for record in gpu.machine.log.loads:
        assert record.version == 1  # both writes visible post-barrier


def test_barriers_serialize_round_trip():
    from repro.trace.serialize import kernel_from_dict, kernel_to_dict
    kernel = Kernel("ser", [
        [compute(1), barrier(), load(0), fence()],
        [compute(1), barrier(), store(0), fence()],
    ], cta_size=2)
    rebuilt = kernel_from_dict(kernel_to_dict(kernel))
    assert rebuilt.cta_size == 2
    assert rebuilt.warp_traces == kernel.warp_traces


def test_barrier_heavy_random_kernel_is_coherent():
    import random
    rng = random.Random(5)
    traces = []
    for w in range(4):
        trace = []
        for _round in range(6):
            for _ in range(4):
                r = rng.random()
                if r < 0.5:
                    trace.append(load(rng.randrange(4)))
                elif r < 0.8:
                    trace.append(store(rng.randrange(4)))
                else:
                    trace.append(compute(rng.randrange(1, 4)))
            trace.append(barrier())
        trace.append(fence())
        traces.append(trace)
    kernel = Kernel("brand", traces, cta_size=2)
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, kernel)
