"""Warp scheduler policies: round-robin vs greedy-then-oldest."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol, SchedulerPolicy
from repro.gpu.gpu import GPU
from repro.trace.instr import Kernel, compute, fence, load

from tests.conftest import random_kernel, run_and_check


def run(policy, kernel, **overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, scheduler=policy,
                            **overrides)
    gpu = GPU(config)
    stats = gpu.run(kernel)
    return gpu, stats


def test_both_policies_complete_and_agree_on_work():
    kernel = random_kernel(1, warps=4, length=40)
    _, rr = run(SchedulerPolicy.RR, kernel)
    _, gto = run(SchedulerPolicy.GTO, kernel)
    assert rr.counter("warps_retired") == gto.counter("warps_retired")
    assert rr.counter("instructions") == gto.counter("instructions")


def test_gto_keeps_issuing_from_one_warp():
    """With pure compute, GTO finishes warp 0 before starting warp 2
    (both on SM0); RR interleaves them."""
    kernel = Kernel("greedy", [
        [compute(2)] * 8,   # warp 0 -> SM0
        [compute(2)] * 8,   # warp 1 -> SM1
        [compute(2)] * 8,   # warp 2 -> SM0
        [compute(2)] * 8,   # warp 3 -> SM1
    ])
    gpu_gto, _ = run(SchedulerPolicy.GTO, kernel)
    # under GTO each SM drained one warp at a time; measurable via the
    # retire order: warp 0 retires before warp 2 ever ... both retire,
    # so check cycles instead: both policies take similar total time
    gpu_rr, rr_stats = run(SchedulerPolicy.RR, kernel)
    gto_stats = gpu_gto.machine.stats
    assert gto_stats.get("warps_retired") == 4


def test_gto_improves_or_matches_intra_warp_locality():
    """A kernel with per-warp streaming reuse: GTO's bursts keep each
    warp's lines warm, so its L1 hit rate is at least RR's."""
    traces = []
    for w in range(4):
        base = w * 4
        trace = []
        for step in range(12):
            trace.append(load(base + step % 2))
            trace.append(compute(1))
        trace.append(fence())
        traces.append(trace)
    kernel = Kernel("locality", traces)
    _, rr = run(SchedulerPolicy.RR, kernel)
    _, gto = run(SchedulerPolicy.GTO, kernel)
    assert gto.l1_hit_rate >= rr.l1_hit_rate - 0.02


def test_gto_is_coherent():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            scheduler=SchedulerPolicy.GTO)
    run_and_check(config, random_kernel(5, warps=4, length=50))


def test_gto_makes_progress_for_every_warp():
    """Greedy must not starve: all warps retire even when one warp has
    far more work than the rest."""
    kernel = Kernel("starve", [
        [compute(2)] * 40,
        [compute(2)] * 3,
        [compute(2)] * 40,
        [compute(2)] * 3,
    ])
    _, stats = run(SchedulerPolicy.GTO, kernel)
    assert stats.counter("warps_retired") == 4


def test_policies_are_deterministic():
    kernel = random_kernel(9, warps=4, length=30)
    for policy in (SchedulerPolicy.RR, SchedulerPolicy.GTO):
        _, a = run(policy, kernel)
        _, b = run(policy, kernel)
        assert a.cycles == b.cycles
        assert a.counters == b.counters
