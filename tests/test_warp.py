"""Unit tests for warp state."""

from repro.gpu.warp import Warp
from repro.trace.instr import compute, fence, load, store


def test_initial_state():
    warp = Warp(3, [load(0)])
    assert warp.uid == 3
    assert warp.pc == 0
    assert warp.ts == 1          # logical clocks start at 1 (§III-B)
    assert warp.gwct == 0
    assert not warp.done
    assert warp.drained()


def test_next_instr_and_finished():
    warp = Warp(0, [load(0), fence()])
    assert warp.next_instr().op == "load"
    warp.pc = 1
    assert warp.at_fence()
    warp.pc = 2
    assert warp.finished_trace
    assert warp.next_instr() is None


def test_drained_tracks_all_outstanding_state():
    warp = Warp(0, [])
    assert warp.drained()
    warp.outstanding_loads = 1
    assert not warp.drained()
    warp.outstanding_loads = 0
    warp.outstanding_stores = 2
    assert not warp.drained()
    warp.outstanding_stores = 0
    warp.pending_addrs = [4]
    assert not warp.drained()
    warp.pending_addrs = None
    assert warp.drained()


def test_at_fence_only_on_fence():
    warp = Warp(0, [compute(1), fence()])
    assert not warp.at_fence()
    warp.pc = 1
    assert warp.at_fence()


def test_empty_trace_is_finished():
    warp = Warp(0, [])
    assert warp.finished_trace
