"""Controller-level tests for the G-TSC L2 bank (Figures 4, 5, 6)."""

from repro.config import GPUConfig, Protocol
from repro.core.messages import BusFill, BusRd, BusRnw, BusWr, BusWrAck
from repro.gpu.machine import Machine
from repro.protocols.factory import build_protocol


def make_machine(**overrides):
    config = GPUConfig.tiny(protocol=Protocol.GTSC, **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


class CaptureL1:
    """Stands in for an L1 to capture the bank's responses."""

    def __init__(self):
        self.messages = []

    def receive(self, msg):
        self.messages.append(msg)


def drive(machine, msg):
    """Inject a request at the bank and run to quiescence."""
    bank = machine.l2_banks[machine.config.bank_of(msg.addr)]
    bank.receive(msg)
    machine.engine.run()


def capture(machine):
    cap = CaptureL1()
    machine.l1s[0] = cap
    return cap


def test_miss_fetches_from_dram_with_mem_ts_lease():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusRd(0, 0, wts=0, warp_ts=1, epoch=0))
    assert machine.stats.get("dram_reads") == 1
    (msg,) = cap.messages
    assert isinstance(msg, BusFill)
    assert msg.wts == 1                          # mem_ts
    assert msg.rts >= 1 + machine.config.lease
    assert msg.version == 0                      # initial memory


def test_matching_wts_gets_renewal_without_data():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusRd(0, 0, wts=0, warp_ts=1, epoch=0))
    fill = cap.messages[-1]
    drive(machine, BusRd(0, 0, wts=fill.wts, warp_ts=30, epoch=0))
    renewal = cap.messages[-1]
    assert isinstance(renewal, BusRnw)
    assert renewal.rts >= 30 + machine.config.lease
    # a renewal is much smaller than a fill (no data payload)
    assert renewal.size(machine.config) < fill.size(machine.config)


def test_mismatched_wts_gets_full_fill():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusRd(0, 0, wts=0, warp_ts=1, epoch=0))
    # pretend the requester holds a stale version (wts that no longer
    # matches after a store)
    drive(machine, BusWr(0, 0, warp_ts=1, version=1, epoch=0))
    drive(machine, BusRd(0, 0, wts=1, warp_ts=1, epoch=0))
    response = cap.messages[-1]
    assert isinstance(response, BusFill)
    assert response.version == 1


def test_write_is_scheduled_after_outstanding_leases():
    """Figure 5: wts = max(rts + 1, warp_ts); no waiting, ever."""
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusRd(0, 0, wts=0, warp_ts=40, epoch=0))
    granted_rts = cap.messages[-1].rts
    start = machine.engine.now
    drive(machine, BusWr(0, 0, warp_ts=2, version=1, epoch=0))
    ack = cap.messages[-1]
    assert isinstance(ack, BusWrAck)
    assert ack.wts == granted_rts + 1
    assert ack.rts == ack.wts + machine.config.lease
    # the write completed in NoC+service time — no lease stall
    assert machine.engine.now - start < machine.config.tc_lease


def test_write_with_large_warp_ts_uses_warp_ts():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusRd(0, 0, wts=0, warp_ts=1, epoch=0))
    drive(machine, BusWr(0, 0, warp_ts=200, version=1, epoch=0))
    assert cap.messages[-1].wts == 200


def test_consecutive_writes_get_increasing_timestamps():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusWr(0, 0, warp_ts=1, version=1, epoch=0))
    first = cap.messages[-1].wts
    drive(machine, BusWr(0, 0, warp_ts=1, version=2, epoch=0))
    second = cap.messages[-1].wts
    assert second > first


def test_write_records_version_timestamp_for_validation():
    machine = make_machine()
    capture(machine)
    drive(machine, BusWr(0, 0, warp_ts=5, version=1, epoch=0))
    epoch, wts = machine.versions.wts_of(0, 1)
    assert epoch == 0 and wts >= 5


def test_write_miss_fetches_line_first():
    machine = make_machine()
    cap = capture(machine)
    drive(machine, BusWr(0, 0, warp_ts=1, version=1, epoch=0))
    assert machine.stats.get("dram_reads") == 1
    assert isinstance(cap.messages[-1], BusWrAck)


def test_eviction_folds_rts_into_mem_ts():
    machine = make_machine()
    cap = capture(machine)
    bank = machine.l2_banks[0]
    sets, assoc = machine.config.l2_sets, machine.config.l2_assoc
    # fill one set beyond capacity: same set index, one bank
    stride = sets * machine.config.num_l2_banks
    addrs = [k * stride for k in range(assoc + 1)]
    big_ts = 90
    drive(machine, BusRd(addrs[0], 0, wts=0, warp_ts=big_ts, epoch=0))
    victim_rts = cap.messages[-1].rts
    for addr in addrs[1:]:
        drive(machine, BusRd(addr, 0, wts=0, warp_ts=1, epoch=0))
    assert machine.stats.get("l2_evictions") >= 1
    assert bank.mem_ts >= victim_rts
    # a refetch of the evicted line starts at mem_ts
    drive(machine, BusRd(addrs[0], 0, wts=0, warp_ts=1, epoch=0))
    refill = cap.messages[-1]
    assert refill.wts >= victim_rts


def test_dirty_eviction_writes_back_to_memory_image():
    machine = make_machine()
    capture(machine)
    sets = machine.config.l2_sets
    stride = sets * machine.config.num_l2_banks
    assoc = machine.config.l2_assoc
    drive(machine, BusWr(0, 0, warp_ts=1, version=1, epoch=0))
    for k in range(1, assoc + 1):
        drive(machine, BusRd(k * stride, 0, wts=0, warp_ts=1, epoch=0))
    assert machine.memory_image.get(0) == 1
    assert machine.stats.get("dram_writes") == 1
    # the refetched line carries the written-back version
    cap = machine.l1s[0]
    drive(machine, BusRd(0, 0, wts=0, warp_ts=1, epoch=0))
    assert cap.messages[-1].version == 1


def test_non_inclusive_l2_always_finds_a_victim():
    """Section V-C: G-TSC never pins L2 lines, unlike TC."""
    machine = make_machine()
    capture(machine)
    sets = machine.config.l2_sets
    stride = sets * machine.config.num_l2_banks
    # far more lines than one set holds, all with huge outstanding
    # leases — every fill must still succeed immediately
    for k in range(3 * machine.config.l2_assoc):
        drive(machine, BusRd(k * stride, 0, wts=0, warp_ts=1000, epoch=0))
    assert machine.stats.get("l2_evict_stall") == 0
