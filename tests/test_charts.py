"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.charts import render_chart
from repro.harness.tables import ExperimentResult


def sample_result():
    return ExperimentResult(
        "figX", "demo figure",
        ["benchmark", "group", "A", "B"],
        rows=[
            ["BH", "coherent", 1.5, 0.8],
            ["CC", "coherent", 2.0, 1.2],
        ],
    )


def test_chart_contains_all_groups_and_series():
    text = render_chart(sample_result())
    for token in ("BH", "CC", "A", "B", "figX"):
        assert token in text


def test_chart_skips_non_numeric_columns():
    text = render_chart(sample_result())
    assert "coherent" not in text


def test_bar_lengths_scale_with_values():
    text = render_chart(sample_result(), width=40)
    lines = [l for l in text.splitlines() if "#" in l]
    # CC's A bar (2.0, the peak) is longer than BH's A bar (1.5)
    bh = next(l for l in lines if l.lstrip().startswith("BH"))
    cc = next(l for l in lines if l.lstrip().startswith("CC"))
    assert cc.count("#") > bh.count("#")


def test_unit_marker_when_values_straddle_one():
    text = render_chart(sample_result())
    assert "1.0" in text  # the legend mentions the baseline marker


def test_no_unit_marker_when_all_above_one():
    result = sample_result()
    result.rows = [["BH", "coherent", 1.5, 1.2]]
    text = render_chart(result)
    assert "normalisation baseline" not in text


def test_explicit_column_selection():
    text = render_chart(sample_result(), columns=["A"])
    assert "A" in text and " B " not in text


def test_chart_rejects_all_text_results():
    result = ExperimentResult("x", "t", ["name", "words"],
                              rows=[["a", "hello"]])
    with pytest.raises(ValueError):
        render_chart(result)


def test_chart_of_real_experiment():
    from repro.harness.runner import ExperimentRunner
    from repro.harness import experiments
    runner = ExperimentRunner(preset="tiny", scale=0.1)
    result = experiments.fig14(runner, leases=[8, 20])
    text = render_chart(result)
    assert "lease=8" in text and "lease=20" in text
