"""SM scheduler behaviour: issue rules, consistency models, stalls,
occupancy waves."""

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU, SimulationHang
from repro.trace.instr import Kernel, compute, fence, load, store

import pytest


def run(config, kernel):
    return GPU(config).run(kernel)


def test_pure_compute_kernel_takes_sum_of_cycles():
    config = GPUConfig.tiny()
    kernel = Kernel("c", [[compute(10), compute(5)]])
    stats = run(config, kernel)
    # 1 issue cycle + 10, then 1 + 5 (issue overlaps the first cycle)
    assert 15 <= stats.cycles <= 18
    assert stats.counter("instructions") == 2


def test_two_warps_interleave_on_one_sm():
    config = GPUConfig.tiny()
    # both warps land on SM0 and SM1 (round-robin): give each SM one
    kernel = Kernel("i", [[compute(50)], [compute(50)]])
    stats = run(config, kernel)
    # they run in parallel on different SMs, not 100 serial cycles
    assert stats.cycles < 70


def test_warps_beyond_capacity_run_in_waves():
    config = GPUConfig.tiny()  # 2 SMs x 2 warps = 4 slots
    kernel = Kernel("waves", [[compute(20)] for _ in range(8)])
    stats = run(config, kernel)
    assert stats.counter("warps_retired") == 8
    # 8 warps over 4 slots: at least two waves of ~20 cycles
    assert stats.cycles >= 40


def test_sc_allows_single_outstanding_memory_op():
    config = GPUConfig.tiny(consistency=Consistency.SC,
                            protocol=Protocol.GTSC)
    kernel = Kernel("sc", [[store(0), store(1), store(2), fence()]])
    sc_cycles = run(config, kernel).cycles
    rc = GPUConfig.tiny(consistency=Consistency.RC, protocol=Protocol.GTSC)
    rc_cycles = run(rc, Kernel("rc", [[store(0), store(1), store(2),
                                       fence()]])).cycles
    # RC overlaps the three store round trips; SC serializes them
    assert sc_cycles > rc_cycles


def test_memory_stalls_counted_when_warps_wait():
    config = GPUConfig.tiny()
    kernel = Kernel("m", [[load(0), fence()]])
    stats = run(config, kernel)
    assert stats.counter("stall_mem_cycles") > 0


def test_compute_blocking_not_counted_as_memory_stall():
    config = GPUConfig.tiny()
    kernel = Kernel("c", [[compute(100)]])
    stats = run(config, kernel)
    assert stats.counter("stall_mem_cycles") == 0


def test_fence_with_nothing_outstanding_is_free():
    config = GPUConfig.tiny()
    kernel = Kernel("f", [[fence(), fence(), fence()]])
    stats = run(config, kernel)
    assert stats.cycles <= 6
    assert stats.counter("fences") == 3


def test_multi_line_load_issues_all_accesses():
    config = GPUConfig.tiny()
    kernel = Kernel("coal", [[load(0, 1, 2, 3), fence()]])
    stats = run(config, kernel)
    assert stats.counter("l1_access") == 4
    assert stats.counter("mem_instructions") == 1


def test_mshr_backpressure_retries_and_completes():
    # 4-entry L1 MSHR, one instruction touching 6 distinct lines
    config = GPUConfig.tiny()
    kernel = Kernel("bp", [[load(0, 2, 4, 6, 8, 10), fence()]])
    stats = run(config, kernel)
    assert stats.counter("l1_mshr_stall") >= 1
    assert stats.counter("warps_retired") == 1


def test_hang_detection_reports_stuck_warps():
    """A protocol that drops a message must fail loudly, not silently."""
    from repro.gpu.machine import Machine
    from repro.protocols.factory import build_protocol
    config = GPUConfig.tiny()
    gpu = GPU(config)

    # sabotage: disconnect the L1 from its SM completions
    class SwallowingL1:
        def __init__(self, inner):
            self._inner = inner

        def load(self, warp, addr, cb):
            return True  # accepted, but the callback never fires

        def __getattr__(self, name):
            return getattr(self._inner, name)

    sabotaged = SwallowingL1(gpu.machine.l1s[0])
    gpu.machine.l1s[0] = sabotaged
    gpu.sms[0].l1 = sabotaged
    with pytest.raises(SimulationHang, match="never finished"):
        gpu.run(Kernel("stuck", [[load(0), fence()]]))


def test_round_robin_gives_every_warp_progress():
    config = GPUConfig.tiny()
    # two warps per SM slot on SM0: uid 0 and uid 2 land on SM0
    kernel = Kernel("rr", [
        [compute(3)] * 10,
        [compute(3)] * 10,
        [compute(3)] * 10,
        [compute(3)] * 10,
    ])
    stats = run(config, kernel)
    assert stats.counter("warps_retired") == 4


def test_instructions_counted_once_despite_retries():
    config = GPUConfig.tiny()
    kernel = Kernel("cnt", [[load(0, 2, 4, 6, 8, 10), fence()]])
    stats = run(config, kernel)
    # 2 instructions: the load and the fence (retries don't recount)
    assert stats.counter("instructions") == 2


def test_schedule_issue_treats_dead_handle_as_absent():
    """A cancelled or already-fired issue-event handle (callback slot
    nulled) must never suppress scheduling a needed issue event, no
    matter what stale fire time it still carries."""
    gpu = GPU(GPUConfig.tiny())
    sm = gpu.sms[0]
    engine = gpu.machine.engine

    dead = engine.schedule(1000, lambda: None)
    engine.cancel(dead)                   # callback slot is now None
    sm._issue_event = dead
    sm._schedule_issue(5)
    assert sm._issue_event is not dead    # fresh event was scheduled
    assert sm._issue_event[2] is not None
    assert sm._issue_event[0] == engine.now + 5


def test_schedule_issue_keeps_a_live_earlier_event():
    gpu = GPU(GPUConfig.tiny())
    sm = gpu.sms[0]
    sm._schedule_issue(2)
    live = sm._issue_event
    sm._schedule_issue(10)                # later: the live one wins
    assert sm._issue_event is live
    sm._schedule_issue(1)                 # earlier: reschedules
    assert sm._issue_event is not live
    assert live[2] is None                # old handle was cancelled
