"""Property-based tests (hypothesis) on the core data structures."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamps import TimestampDomain
from repro.mem.cache import CacheArray
from repro.mem.mshr import MSHRFullError, MSHRTable
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# engine: scheduling order is a stable sort by time
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=60))
def test_engine_fires_in_stable_time_order(delays):
    engine = Engine()
    fired = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, fired.append, (delay, index))
    engine.run()
    assert fired == sorted(fired)  # (time, seq) lexicographic


@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), min_size=1,
                max_size=40))
def test_engine_cancellation_only_removes_cancelled(jobs):
    engine = Engine()
    fired = []
    events = []
    for delay, cancel in jobs:
        events.append((engine.schedule(delay, fired.append, len(events)),
                       cancel))
    for event, cancel in events:
        if cancel:
            engine.cancel(event)
    engine.run()
    expected = {i for i, (e, c) in enumerate(events) if not c}
    assert set(fired) == expected


# ---------------------------------------------------------------------------
# cache: model-based comparison against per-set LRU OrderedDicts
# ---------------------------------------------------------------------------

@settings(max_examples=60)
@given(
    st.integers(min_value=1, max_value=4),     # sets (power not needed)
    st.integers(min_value=1, max_value=4),     # assoc
    st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=120),
)
def test_cache_matches_reference_lru_model(num_sets, assoc, ops):
    cache = CacheArray(num_sets, assoc)
    model = [OrderedDict() for _ in range(num_sets)]

    def model_set(addr):
        return model[addr % num_sets]

    for is_alloc, addr in ops:
        mset = model_set(addr)
        if is_alloc:
            line, evicted = cache.allocate(addr)
            if addr in mset:
                assert evicted is None
                mset.move_to_end(addr)
            else:
                if len(mset) >= assoc:
                    victim, _ = mset.popitem(last=False)
                    assert evicted is not None and evicted.addr == victim
                else:
                    assert evicted is None
                mset[addr] = True
            assert line.addr == addr
        else:
            hit = cache.lookup(addr) is not None
            assert hit == (addr in mset)
            if hit:
                mset.move_to_end(addr)
    # final contents agree
    for s in range(num_sets):
        expected = set(model[s])
        actual = {l.addr for l in cache.lines() if l.addr % num_sets == s}
        assert actual == expected


# ---------------------------------------------------------------------------
# MSHR: occupancy never exceeds capacity; drain conserves waiters
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["alloc", "drain"]),
                          st.integers(0, 8)), max_size=80),
       st.integers(min_value=1, max_value=6))
def test_mshr_capacity_and_waiter_conservation(ops, capacity):
    table = MSHRTable(capacity)
    parked = 0
    completed = 0
    for op, addr in ops:
        if op == "alloc":
            try:
                entry = table.allocate(addr)
            except MSHRFullError:
                assert len(table) == capacity
                continue
            entry.waiters.append(object())
            parked += 1
        else:
            completed += len(table.drain(addr))
        assert len(table) <= capacity
    remaining = sum(len(e.waiters) for e in table.entries())
    assert completed + remaining == parked


# ---------------------------------------------------------------------------
# timestamp domain: clamp never lets a timestamp exceed ts_max
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
def test_domain_clamp_never_exceeds_max(values):
    domain = TimestampDomain(ts_max=200, lease=10)
    epochs_seen = 0
    for value in values:
        out = domain.clamp(value)
        if out == -1:
            epochs_seen += 1
            assert domain.epoch == epochs_seen
        else:
            assert out == value <= 200


@given(st.integers(min_value=1, max_value=100))
def test_domain_epoch_monotone(resets):
    domain = TimestampDomain(ts_max=1000, lease=5)
    for expected in range(1, resets + 1):
        domain.overflow_reset()
        assert domain.epoch == expected
