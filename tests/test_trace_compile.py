"""Compiled traces: format round-trips, simulated equivalence, cache.

The compiled representation is pure packaging — every workload
generator must produce a compiled kernel whose simulated
``RunStats.to_dict()`` is byte-identical to running the
authoring-level :class:`Kernel`, under every protocol.  The on-disk
trace cache must hand back the same kernel without re-running the
generator.
"""

import json
import os

import pytest

import repro.workloads as workloads
from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.trace.compiled import (
    OP_ATOMIC,
    OP_BARRIER,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    CompiledKernel,
    compile_kernel,
    compile_trace,
)
from repro.trace.instr import Instr, Kernel
from repro.workloads import ALL_NAMES, build_workload, trace_key

SCALE = 0.3
SEED = 7
PROTOCOLS = (Protocol.GTSC, Protocol.TC, Protocol.MESI,
             Protocol.DISABLED)


def _run(kernel, protocol):
    config = GPUConfig.tiny(protocol=protocol, consistency=Consistency.RC)
    stats = GPU(config, record_accesses=False).run(kernel)
    return json.dumps(stats.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# packed format
# ---------------------------------------------------------------------------

def test_opcode_range_check_invariant():
    """The memory opcodes must stay contiguous — the SM dispatches on
    ``OP_LOAD <= op <= OP_ATOMIC``."""
    assert OP_LOAD + 1 == OP_STORE
    assert OP_STORE + 1 == OP_ATOMIC
    assert OP_COMPUTE < OP_LOAD
    assert OP_ATOMIC < OP_FENCE < OP_BARRIER


def test_compile_trace_packs_every_instruction_kind():
    trace = compile_trace([
        Instr("compute", cycles=3),
        Instr("load", addrs=(64, 128)),
        Instr("store", addrs=(64,)),
        Instr("atomic", addrs=(192,)),
        Instr("fence"),
        Instr("barrier"),
    ])
    assert trace.ops == [OP_COMPUTE, OP_LOAD, OP_STORE, OP_ATOMIC,
                         OP_FENCE, OP_BARRIER]
    assert trace.args == [3, (64, 128), (64,), (192,), None, None]
    assert len(trace) == 6


def test_compiled_trace_decompiles_to_the_same_instructions():
    instrs = [Instr("load", addrs=(64,)), Instr("compute", cycles=2),
              Instr("fence")]
    assert compile_trace(instrs).instructions() == instrs


def test_compiled_kernel_mirrors_kernel_surface():
    kernel = Kernel(name="k", warp_traces=[
        [Instr("load", addrs=(64,)), Instr("store", addrs=(128,))],
        [Instr("compute", cycles=1)],
    ])
    compiled = compile_kernel(kernel)
    assert compiled.name == kernel.name
    assert compiled.cta_size == kernel.cta_size
    assert compiled.num_warps == kernel.num_warps
    assert compiled.total_instructions == kernel.total_instructions
    assert compiled.num_ctas == kernel.num_ctas
    assert compiled.memory_footprint() == kernel.memory_footprint()


def test_compiled_kernel_dict_round_trip():
    kernel = Kernel(name="rt", cta_size=2, warp_traces=[
        [Instr("load", addrs=(64, 128)), Instr("barrier"),
         Instr("atomic", addrs=(256,))],
        [Instr("compute", cycles=5), Instr("barrier"), Instr("fence")],
    ])
    compiled = compile_kernel(kernel)
    rebuilt = CompiledKernel.from_dict(
        json.loads(json.dumps(compiled.to_dict())))
    assert rebuilt.to_dict() == compiled.to_dict()
    assert rebuilt.decompile() == kernel


def test_from_dict_rejects_unknown_format_and_opcodes():
    with pytest.raises(ValueError, match="format"):
        CompiledKernel.from_dict({"format": 99, "name": "x",
                                  "cta_size": 1, "warps": [[["load", [0]]]]})
    with pytest.raises(ValueError, match="opcode"):
        CompiledKernel.from_dict({"format": 1, "name": "x",
                                  "cta_size": 1, "warps": [[["jump"]]]})


def test_compiled_validate_matches_kernel_validate():
    with pytest.raises(ValueError, match="barriers"):
        CompiledKernel("b", [
            compile_trace([Instr("barrier")]),
            compile_trace([Instr("barrier")]),
        ], cta_size=1).validate()
    with pytest.raises(ValueError, match="no warps"):
        CompiledKernel("e", []).validate()


# ---------------------------------------------------------------------------
# simulated equivalence: every generator, every protocol
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS,
                         ids=[p.value for p in PROTOCOLS])
@pytest.mark.parametrize("name", ALL_NAMES)
def test_compiled_path_is_byte_identical(name, protocol, tmp_path):
    plain = build_workload(name, scale=SCALE, seed=SEED)
    compiled = build_workload(name, scale=SCALE, seed=SEED,
                              cache_dir=str(tmp_path))
    assert isinstance(plain, Kernel)
    assert isinstance(compiled, CompiledKernel)
    assert _run(compiled, protocol) == _run(plain, protocol)


# ---------------------------------------------------------------------------
# the on-disk trace cache
# ---------------------------------------------------------------------------

def test_second_build_reads_from_disk(tmp_path):
    cache_dir = str(tmp_path / "traces")
    first = build_workload("BFS", scale=SCALE, seed=SEED,
                           cache_dir=cache_dir)
    cache = workloads._trace_caches[cache_dir]
    assert cache.misses == 1 and cache.hits == 0
    entry = os.path.join(cache_dir,
                         trace_key("BFS", SCALE, SEED) + ".json")
    assert os.path.exists(entry)

    second = build_workload("BFS", scale=SCALE, seed=SEED,
                            cache_dir=cache_dir)
    assert cache.hits == 1
    assert second is not first            # decoded from the file
    assert second.to_dict() == first.to_dict()


def test_cached_kernel_survives_a_fresh_cache_object(tmp_path):
    """A second process sees the entry too (fresh TraceCache)."""
    cache_dir = str(tmp_path / "traces")
    first = build_workload("STN", scale=SCALE, seed=SEED,
                           cache_dir=cache_dir)
    workloads._trace_caches.pop(cache_dir)
    second = build_workload("STN", scale=SCALE, seed=SEED,
                            cache_dir=cache_dir)
    assert workloads._trace_caches[cache_dir].hits == 1
    assert second.to_dict() == first.to_dict()


def test_trace_key_varies_on_every_parameter():
    base = trace_key("BFS", 0.5, 2018)
    assert trace_key("STN", 0.5, 2018) != base
    assert trace_key("BFS", 0.4, 2018) != base
    assert trace_key("BFS", 0.5, 2019) != base


def test_trace_key_covers_generator_version(monkeypatch):
    base = trace_key("BFS", 0.5, 2018)
    monkeypatch.setattr(workloads, "GENERATOR_VERSION",
                        workloads.GENERATOR_VERSION + 1)
    assert trace_key("BFS", 0.5, 2018) != base


def test_corrupt_trace_entry_regenerates(tmp_path):
    cache_dir = str(tmp_path / "traces")
    first = build_workload("KM", scale=SCALE, seed=SEED,
                           cache_dir=cache_dir)
    entry = os.path.join(cache_dir,
                         trace_key("KM", SCALE, SEED) + ".json")
    with open(entry, "w") as handle:
        handle.write("garbage")
    workloads._trace_caches.pop(cache_dir)
    with pytest.warns(RuntimeWarning, match="trace-cache"):
        again = build_workload("KM", scale=SCALE, seed=SEED,
                               cache_dir=cache_dir)
    assert again.to_dict() == first.to_dict()
