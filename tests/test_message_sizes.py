"""Exact on-wire sizes for every message type (Table I).

Traffic results (Fig. 15) are only as faithful as the message sizing,
so the byte counts are pinned here against hand-computed values for
the default geometry (8-byte header, 2-byte G-TSC timestamps, 4-byte
TC times, 128-byte lines).
"""

import pytest

from repro.config import GPUConfig
from repro.core.messages import (
    BusAtm,
    BusAtmAck,
    BusFill,
    BusInv,
    BusRd,
    BusRnw,
    BusWr,
    BusWrAck,
)
from repro.protocols.mesi import (
    DataM,
    DataS,
    GetM,
    GetS,
    Inv,
    InvAck,
    PutM,
)
from repro.protocols.plain import MemAck, MemFill, MemRd, MemWr
from repro.protocols.tc import TCAtm, TCAtmAck, TCFill, TCRd, TCWr, TCWrAck

CONFIG = GPUConfig()  # header 8, ts 2, tc-ts 4, line 128


@pytest.mark.parametrize("msg,size", [
    # G-TSC (Table I): hdr + fields
    (BusRd(0, 0, wts=1, warp_ts=2, epoch=0), 8 + 2 + 2),
    (BusWr(0, 0, warp_ts=2, version=1, epoch=0), 8 + 2 + 128),
    (BusFill(0, 0, wts=1, rts=9, version=1, epoch=0), 8 + 4 + 128),
    (BusRnw(0, 0, rts=9, epoch=0), 8 + 2),
    (BusWrAck(0, 0, wts=1, rts=9, epoch=0), 8 + 4),
    (BusAtm(0, 0, warp_ts=2, version=1, epoch=0), 8 + 2 + 8),
    (BusAtmAck(0, 0, wts=1, rts=9, old_version=0, epoch=0), 8 + 4 + 8),
    (BusInv(0, 0), 8),
    # TC: 32-bit physical times
    (TCRd(0, 0), 8),
    (TCWr(0, 0, version=1), 8 + 128),
    (TCFill(0, 0, version=1, expiry=99), 8 + 4 + 128),
    (TCWrAck(0, 0, gwct=99), 8 + 4),
    (TCAtm(0, 0, version=1), 8 + 8),
    (TCAtmAck(0, 0, old_version=0, gwct=99), 8 + 4 + 8),
    # plain baselines
    (MemRd(0, 0), 8),
    (MemWr(0, 0, version=1), 8 + 128),
    (MemFill(0, 0, version=1), 8 + 128),
    (MemAck(0, 0), 8),
    # MSI directory
    (GetS(0, 0), 8),
    (GetM(0, 0), 8),
    (PutM(0, 0, version=1), 8 + 128),
    (DataS(0, 0, version=1), 8 + 128),
    (DataM(0, 0, version=1), 8 + 128),
    (Inv(0, 0), 8),
    (InvAck(0, 0), 8),
    (InvAck(0, 0, version=1, had_data=True), 8 + 128),
])
def test_message_size(msg, size):
    assert msg.size(CONFIG) == size


def test_renewal_beats_fill_by_the_line_size():
    """The core Table-I asymmetry that powers Figure 15."""
    fill = BusFill(0, 0, wts=1, rts=9, version=1, epoch=0)
    renewal = BusRnw(0, 0, rts=9, epoch=0)
    assert fill.size(CONFIG) - renewal.size(CONFIG) \
        == CONFIG.line_size + CONFIG.timestamp_bytes


def test_gtsc_timestamps_are_half_of_tcs():
    """Section V-D: 16-bit logical vs 32-bit physical timestamps."""
    gtsc_ack = BusWrAck(0, 0, wts=1, rts=9, epoch=0)
    tc_ack = TCWrAck(0, 0, gwct=99)
    # G-TSC carries two 2-byte stamps; TC one 4-byte stamp
    assert gtsc_ack.size(CONFIG) == tc_ack.size(CONFIG)
    assert CONFIG.timestamp_bytes * 2 == CONFIG.tc_timestamp_bytes


def test_message_kinds_for_traffic_classes():
    assert BusRnw(0, 0, rts=1, epoch=0).kind == "ctrl"
    assert BusFill(0, 0, wts=1, rts=2, version=0, epoch=0).kind == "data"
    assert TCFill(0, 0, version=0, expiry=1).kind == "data"
    assert InvAck(0, 0).kind == "ctrl"
    assert InvAck(0, 0, version=1, had_data=True).kind == "data"
