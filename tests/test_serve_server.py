"""The asyncio TCP server: protocol, backpressure, drain, endpoints.

Each test spins a real server on an ephemeral port inside
``asyncio.run``; blocking client calls go through the default
executor so the event loop keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.harness.cache import RunCache
from repro.serve import (JobStore, Scheduler, ServeClient, ServeError,
                         ServeServer, make_spec)
from repro.stats.collector import RunStats

TINY = make_spec("HS", preset="tiny", scale=0.1, seed=7)


def fake_stats(cycles: int = 42) -> RunStats:
    return RunStats(config_desc="fake", cycles=cycles,
                    counters={"instructions": 1})


def serve_test(tmp_path, body, *, execute=None, jobs=1,
               queue_limit=64, cache=True, drain_timeout=10.0,
               **pool_options):
    """Run ``await body(server, call)`` against a live server.

    ``call(fn, *args)`` runs a blocking client call off the loop.
    """
    async def main():
        store = JobStore(str(tmp_path / "jobs.jsonl"))
        run_cache = (RunCache(str(tmp_path / "cache"))
                     if cache else None)
        options = dict(pool_options)
        options.setdefault("poll_interval", 0.01)
        if execute is not None:
            options["execute"] = execute
        scheduler = Scheduler(store, cache=run_cache, jobs=jobs,
                              queue_limit=queue_limit, **options)
        server = ServeServer(scheduler, port=0, quiet=True,
                             drain_timeout=drain_timeout)
        await server.start()
        loop = asyncio.get_running_loop()

        def call(fn, *args):
            return loop.run_in_executor(None, fn, *args)

        try:
            await body(server, call)
        finally:
            if not server.draining:
                await server.drain()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# the happy path
# ---------------------------------------------------------------------------

def test_submit_then_cache_hit(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        first = await call(client.submit, dict(TINY))
        assert first["ok"] and not first["cached"]
        assert first["stats"]["cycles"] == 42
        second = await call(client.submit, dict(TINY))
        assert second["cached"] and second["job_id"] is None
        assert second["stats"] == first["stats"]
        assert second["key"] == first["key"]

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


def test_no_wait_submit_is_accepted_then_queryable(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        reply = await call(client.submit, dict(TINY), False)
        assert reply["kind"] == "accepted"
        job_id = reply["job_id"]
        for _ in range(200):
            status = await call(client.status, job_id)
            if status["job"]["state"] == "done":
                break
            await asyncio.sleep(0.02)
        assert status["job"]["state"] == "done"
        listing = await call(client.jobs)
        assert listing["counts"]["done"] == 1

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


def test_healthz_and_metrics_shapes(tmp_path):
    async def body(server, call):
        client = ServeClient(port=server.port)
        health = await call(client.healthz)
        assert health["status"] == "serving"
        assert health["queue_limit"] == 64 and health["workers"] == 1
        await call(client.submit, dict(TINY))
        metrics = await call(client.metrics)
        snapshot = metrics["snapshot"]
        assert snapshot["submits"] == 1
        assert snapshot["executed"] == 1
        assert snapshot["jobs_done"] == 1
        # the time-series rides the repro.obs MetricsRegistry shape
        series = metrics["timeseries"]
        assert "serve_submits" in series["columns"]
        assert "queue_depth" in series["columns"]
        assert series["samples"][-1]["serve_submits"] == 1

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


# ---------------------------------------------------------------------------
# refusals
# ---------------------------------------------------------------------------

def raw_roundtrip(port: int, payload) -> dict:
    """One request with no client-side retry smoothing."""
    client = ServeClient(port=port, retries=1)
    return client._roundtrip(payload)


def test_backpressure_replies_busy_with_retry_after(tmp_path):
    gate = threading.Event()

    def execute(spec):
        gate.wait(10)
        return fake_stats()

    async def body(server, call):
        client = ServeClient(port=server.port)
        await call(client.submit, make_spec("HS", preset="tiny",
                                            scale=0.1), False)
        reply = await call(
            raw_roundtrip, server.port,
            {"v": 1, "op": "submit", "wait": False,
             "spec": make_spec("KM", preset="tiny", scale=0.1)})
        assert reply["ok"] is False and reply["error"] == "busy"
        assert reply["retry_after"] == 1.0
        # identical key still coalesces through the full queue
        dup = await call(client.submit, make_spec("HS", preset="tiny",
                                                  scale=0.1), False)
        assert dup["coalesced"]
        gate.set()

    serve_test(tmp_path, body, execute=execute, queue_limit=1)


def test_malformed_requests_get_structured_errors(tmp_path):
    async def body(server, call):
        port = server.port
        not_json = await call(raw_roundtrip, port, {"op": "submit"})
        assert not_json["error"] == "bad-request"       # missing spec
        unknown = await call(raw_roundtrip, port, {"op": "dance"})
        assert unknown["error"] == "bad-request"
        future_v = await call(raw_roundtrip, port,
                              {"v": 99, "op": "healthz"})
        assert future_v["error"] == "unsupported-version"
        bad_spec = await call(
            raw_roundtrip, port,
            {"op": "submit", "spec": {"workload": "NOPE"}})
        assert bad_spec["error"] == "bad-request"
        assert "NOPE" in bad_spec["message"]
        missing = await call(raw_roundtrip, port,
                             {"op": "status", "job_id": "j999999"})
        assert missing["error"] == "not-found"
        # the connection-level path survives raw garbage too
        def null_op():
            client = ServeClient(port=port, retries=1)
            with pytest.raises(ServeError, match="bad-request"):
                client.request({"op": None})

        await call(null_op)

    serve_test(tmp_path, body, execute=lambda spec: fake_stats())


def test_client_raises_on_quarantined_failure(tmp_path):
    def execute(spec):
        raise RuntimeError("always broken")

    async def body(server, call):
        client = ServeClient(port=server.port)

        def submit():
            with pytest.raises(ServeError, match="always broken"):
                client.submit(dict(TINY))

        await call(submit)
        reply = await call(raw_roundtrip, server.port,
                           {"v": 1, "op": "submit",
                            "spec": dict(TINY), "wait": True})
        assert reply["error"] == "quarantined"

    serve_test(tmp_path, body, execute=execute, max_attempts=1,
               backoff_base=0.01)


# ---------------------------------------------------------------------------
# drain
# ---------------------------------------------------------------------------

def test_drain_finishes_inflight_then_refuses(tmp_path):
    gate = threading.Event()

    def execute(spec):
        gate.wait(10)
        return fake_stats()

    async def body(server, call):
        client = ServeClient(port=server.port)
        pending = call(client.submit, dict(TINY))    # blocks on gate
        while not server.scheduler.inflight():
            await asyncio.sleep(0.01)
        drainer = asyncio.ensure_future(server.drain())
        await asyncio.sleep(0.05)
        assert server.draining
        health = await call(ServeClient(port=server.port).healthz)
        assert health["status"] == "draining"
        refused = await call(raw_roundtrip, server.port,
                             {"v": 1, "op": "submit",
                              "spec": dict(TINY)})
        assert refused["error"] == "draining"
        gate.set()                     # let the in-flight job finish
        result = await pending
        assert result["ok"] and result["stats"]["cycles"] == 42
        await drainer
        assert server.scheduler.store.counts()["done"] == 1

    serve_test(tmp_path, body, execute=execute)


def test_drain_journals_pending_jobs_for_the_next_process(tmp_path):
    """SIGTERM mid-sweep loses nothing: jobs not yet executed stay
    PENDING in the journal, a fresh server picks them up, and no job
    runs twice across the two processes."""
    import time as _time

    executed = []

    def execute(spec):
        _time.sleep(0.3)               # a "long" simulation
        executed.append(spec["workload"])
        return fake_stats()

    async def body(server, call):
        client = ServeClient(port=server.port)
        for workload in ("HS", "KM", "BP"):
            reply = await call(
                client.submit,
                make_spec(workload, preset="tiny", scale=0.1), False)
            assert reply["ok"]
        # drain immediately: the tiny drain_timeout abandons the
        # waiters, the single worker finishes at most its current
        # job, and the rest must survive as journalled PENDING
        await server.drain()

    serve_test(tmp_path, body, execute=execute, jobs=1,
               drain_timeout=0.05)
    store = JobStore(str(tmp_path / "jobs.jsonl"))
    counts = store.counts()
    assert counts["done"] + counts["pending"] == 3     # zero lost
    assert counts["done"] == len(executed)
    assert counts["failed"] == 0 and counts["leased"] == 0
    ids = [job.id for job in store.jobs()]
    assert len(ids) == len(set(ids)) == 3              # zero duplicated
    store.close()

    async def resume(server, call):
        while server.scheduler.store.counts()["done"] < 3:
            await asyncio.sleep(0.02)

    def finish(spec):
        executed.append(spec["workload"])
        return fake_stats()

    serve_test(tmp_path, resume, execute=finish)
    final = JobStore(str(tmp_path / "jobs.jsonl"))
    assert final.counts()["done"] == 3
    # each workload simulated exactly once across both processes
    assert sorted(executed) == ["BP", "HS", "KM"]
    final.close()


# ---------------------------------------------------------------------------
# acceptance: real simulations over the wire
# ---------------------------------------------------------------------------

def test_eight_wire_clients_one_simulation_bit_identical(tmp_path):
    from repro.serve import execute_spec

    direct = execute_spec(dict(TINY)).to_dict()

    async def body(server, call):
        replies = []
        errors = []

        def one():
            try:
                replies.append(
                    ServeClient(port=server.port).submit(dict(TINY)))
            except Exception as error:   # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=one) for _ in range(8)]
        for thread in threads:
            thread.start()
        while any(thread.is_alive() for thread in threads):
            await asyncio.sleep(0.02)
        assert not errors
        assert server.scheduler.pool.executed == 1
        payloads = {json.dumps(r["stats"], sort_keys=True)
                    for r in replies}
        assert payloads == {json.dumps(direct, sort_keys=True)}

    serve_test(tmp_path, body, jobs=2)
