"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.config import Consistency, Protocol
from repro.harness.runner import ExperimentRunner
from repro.harness.sweeps import METRICS, sweep


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(preset="tiny", scale=0.15, seed=3)


def test_sweep_shape(runner):
    series = sweep(runner, workloads=["HS", "GE"], parameter="lease",
                   values=[8, 20])
    assert series.values == [8, 20]
    assert set(series.data) == {"HS", "GE"}
    assert len(series.series("HS")) == 2


def test_sweep_l1_size_improves_hit_rate(runner):
    series = sweep(runner, workloads=["SGM"], parameter="l1_size",
                   values=[256, 4096], metric="l1_hit_rate")
    small, large = series.series("SGM")
    assert large >= small


def test_best_value(runner):
    series = sweep(runner, workloads=["DLP"], parameter="tc_lease",
                   values=[50, 5000], protocol=Protocol.TC,
                   consistency=Consistency.SC)
    # an absurdly long TC lease stalls writes: 50 must win on cycles
    assert series.best_value("DLP") == 50


def test_custom_extractor(runner):
    series = sweep(runner, workloads=["HS"], parameter="lease",
                   values=[10], extract=lambda s: float(s.counter(
                       "l2_renewals")))
    assert series.series("HS")[0] >= 0


def test_unknown_metric_rejected(runner):
    with pytest.raises(KeyError, match="unknown metric"):
        sweep(runner, ["HS"], "lease", [10], metric="nope")


def test_table_rendering(runner):
    series = sweep(runner, workloads=["HS"], parameter="lease",
                   values=[8, 20])
    text = series.table()
    assert "lease=8" in text and "lease=20" in text and "HS" in text


def test_all_builtin_metrics_extract(runner):
    for metric in METRICS:
        series = sweep(runner, ["HS"], "lease", [10], metric=metric)
        value = series.series("HS")[0]
        assert isinstance(value, float) and value >= 0
