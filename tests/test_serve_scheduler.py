"""Single-flight scheduling, retry/backoff, quarantine, backpressure.

These tests drive the scheduler + worker pool directly (no TCP), with
fake ``execute`` callables where timing matters and the real
simulator where bit-identity matters.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.harness.cache import RunCache
from repro.serve import (Busy, JobStore, Quarantined, Scheduler,
                         execute_spec, make_spec, spec_key)
from repro.serve.workers import WorkerPool
from repro.stats.collector import RunStats

TINY = make_spec("HS", preset="tiny", scale=0.1, seed=7)


def fake_stats(cycles: int = 42) -> RunStats:
    return RunStats(config_desc="fake", cycles=cycles,
                    counters={"instructions": 1})


@pytest.fixture
def store(tmp_path):
    s = JobStore(str(tmp_path / "jobs.jsonl"))
    yield s
    s.close()


def make_scheduler(store, tmp_path=None, **kwargs):
    cache = (RunCache(str(tmp_path / "cache"))
             if tmp_path is not None else None)
    kwargs.setdefault("poll_interval", 0.01)
    return Scheduler(store, cache=cache, **kwargs)


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


# ---------------------------------------------------------------------------
# single-flight dedup
# ---------------------------------------------------------------------------

def test_concurrent_identical_submits_execute_once(store):
    """Eight racing submissions of one point -> exactly one execution,
    and every caller receives the same result object."""
    gate = threading.Event()
    executions = []

    def execute(spec):
        executions.append(spec)
        gate.wait(5)
        return fake_stats()

    scheduler = make_scheduler(store, execute=execute, jobs=2)
    scheduler.start()
    try:
        submissions = []
        errors = []

        def submit():
            try:
                submissions.append(scheduler.submit(dict(TINY)))
            except Exception as error:     # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        gate.set()
        results = [s.future.result(timeout=10) for s in submissions]
        assert len(executions) == 1
        assert all(r is results[0] for r in results)
        assert sum(1 for s in submissions if s.coalesced) == 7
        assert store.counts()["done"] == 1
    finally:
        gate.set()
        scheduler.stop()


def test_distinct_specs_do_not_coalesce(store):
    executed = []

    def execute(spec):
        executed.append(spec["workload"])
        return fake_stats()

    scheduler = make_scheduler(store, execute=execute, jobs=1)
    scheduler.start()
    try:
        a = scheduler.submit(make_spec("HS", preset="tiny", scale=0.1))
        b = scheduler.submit(make_spec("KM", preset="tiny", scale=0.1))
        a.future.result(timeout=10)
        b.future.result(timeout=10)
        assert sorted(executed) == ["HS", "KM"]
    finally:
        scheduler.stop()


def test_cache_hit_skips_the_queue(store, tmp_path):
    scheduler = make_scheduler(store, tmp_path=tmp_path,
                               execute=lambda spec: fake_stats(),
                               jobs=1)
    scheduler.start()
    try:
        cold = scheduler.submit(dict(TINY))
        cold.future.result(timeout=10)
        warm = scheduler.submit(dict(TINY))
        assert warm.cached and warm.job_id is None
        assert warm.future.result(timeout=1) is not None
        assert scheduler.cache_hits == 1
        assert store.counts()["done"] == 1      # no second job
    finally:
        scheduler.stop()


# ---------------------------------------------------------------------------
# retry, quarantine, timeout
# ---------------------------------------------------------------------------

def test_flaky_execution_retries_then_succeeds(store):
    attempts = []

    def execute(spec):
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return fake_stats()

    scheduler = make_scheduler(store, execute=execute, jobs=1,
                               max_attempts=3, backoff_base=0.01,
                               rng=random.Random(7))
    scheduler.start()
    try:
        submission = scheduler.submit(dict(TINY))
        stats = submission.future.result(timeout=10)
        assert stats.cycles == 42
        assert len(attempts) == 3
        assert scheduler.pool.retried == 2
        job = store.get(submission.job_id)
        assert job.state == "done" and job.attempts == 3
    finally:
        scheduler.stop()


def test_exhausted_retries_quarantine_the_key(store):
    def execute(spec):
        raise RuntimeError("deterministic crash")

    scheduler = make_scheduler(store, execute=execute, jobs=1,
                               max_attempts=2, backoff_base=0.01,
                               quarantine_ttl=60,
                               rng=random.Random(7))
    scheduler.start()
    try:
        submission = scheduler.submit(dict(TINY))
        with pytest.raises(Quarantined, match="deterministic crash"):
            submission.future.result(timeout=10)
        assert store.get(submission.job_id).state == "failed"
        # an immediate resubmit fails fast, without a new job
        with pytest.raises(Quarantined):
            scheduler.submit(dict(TINY))
        assert store.counts()["failed"] == 1
        assert store.active_count() == 0
    finally:
        scheduler.stop()


def test_quarantine_expires(store):
    clock = [1000.0]

    def execute(spec):
        raise RuntimeError("crash")

    scheduler = make_scheduler(store, execute=execute, jobs=1,
                               max_attempts=1, quarantine_ttl=30,
                               clock=lambda: clock[0])
    scheduler.start()
    try:
        submission = scheduler.submit(dict(TINY))
        with pytest.raises(Quarantined):
            submission.future.result(timeout=10)
        with pytest.raises(Quarantined):
            scheduler.submit(dict(TINY))
        clock[0] += 31
        resubmitted = scheduler.submit(dict(TINY))   # allowed again
        with pytest.raises(Quarantined):
            resubmitted.future.result(timeout=10)
    finally:
        scheduler.stop()


def test_per_job_timeout_counts_and_retries(store):
    stalls = []

    def execute(spec):
        if not stalls:
            stalls.append(1)
            time.sleep(5)              # first attempt wedges
        return fake_stats()

    scheduler = make_scheduler(store, execute=execute, jobs=1,
                               timeout=0.1, max_attempts=2,
                               backoff_base=0.01,
                               rng=random.Random(7))
    scheduler.start()
    try:
        submission = scheduler.submit(dict(TINY))
        stats = submission.future.result(timeout=10)
        assert stats.cycles == 42
        assert scheduler.pool.timeouts == 1
        assert scheduler.pool.retried == 1
    finally:
        scheduler.stop()


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

def test_full_queue_raises_busy(store):
    gate = threading.Event()

    def execute(spec):
        gate.wait(10)
        return fake_stats()

    scheduler = make_scheduler(store, execute=execute, jobs=1,
                               queue_limit=2, retry_after=3.5)
    scheduler.start()
    try:
        scheduler.submit(make_spec("HS", preset="tiny", scale=0.1))
        scheduler.submit(make_spec("KM", preset="tiny", scale=0.1))
        with pytest.raises(Busy) as excinfo:
            scheduler.submit(make_spec("BP", preset="tiny",
                                       scale=0.1))
        assert excinfo.value.retry_after == 3.5
        assert scheduler.rejected == 1
        # identical submits still coalesce while the queue is full
        dup = scheduler.submit(make_spec("HS", preset="tiny",
                                         scale=0.1))
        assert dup.coalesced
    finally:
        gate.set()
        scheduler.stop()


# ---------------------------------------------------------------------------
# acceptance: real simulations through the service path
# ---------------------------------------------------------------------------

def test_served_result_is_bit_identical_to_direct_run(store, tmp_path):
    scheduler = make_scheduler(store, tmp_path=tmp_path, jobs=1)
    scheduler.start()
    try:
        submissions = []

        def submit():
            submissions.append(scheduler.submit(dict(TINY)))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [s.future.result(timeout=60) for s in submissions]
        assert scheduler.pool.executed == 1     # exactly one simulation
        direct = execute_spec(dict(TINY))
        for result in results:
            assert result.to_dict() == direct.to_dict()
    finally:
        scheduler.stop()


def test_pending_jobs_resume_after_restart(tmp_path):
    """A sweep interrupted by a crash resumes from the journal: no job
    is lost, none runs twice, and results land in the shared cache."""
    path = str(tmp_path / "jobs.jsonl")
    specs = [make_spec(w, preset="tiny", scale=0.1)
             for w in ("HS", "KM", "BP")]

    store = JobStore(path)
    scheduler = make_scheduler(store, tmp_path=tmp_path,
                               execute=lambda spec: fake_stats(),
                               jobs=1)
    # enqueue WITHOUT starting workers, then "crash"
    for spec in specs:
        scheduler.submit(spec)
    store.close()

    reopened = JobStore(path)
    executed = []

    def execute(spec):
        executed.append(spec["workload"])
        return fake_stats()

    resumed = make_scheduler(reopened, tmp_path=tmp_path,
                             execute=execute, jobs=1)
    resumed.start()
    try:
        wait_for(lambda: reopened.counts()["done"] == 3)
        assert sorted(executed) == ["BP", "HS", "KM"]
        assert resumed.cache is not None
        for spec in specs:
            assert resumed.cache.get(spec_key(spec)) is not None
    finally:
        resumed.stop()
        reopened.close()
