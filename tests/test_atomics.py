"""Atomic read-modify-write support across every protocol.

GPU atomics execute at the shared L2 (the point of coherence).  The
defining invariant, checked by :func:`check_atomicity`, is that each
atomic's observed old value is the immediate predecessor of its own
write in the line's global write order — concurrent atomics from many
SMs must serialize without tearing.
"""

import random

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.trace.instr import Kernel, atomic, compute, fence, load, store
from repro.validate.checker import check_atomicity, check_gtsc_log

from tests.conftest import run_and_check

COUNTER = 0


def counter_kernel(warps=4, increments=6, pad_seed=0):
    """Every warp atomically increments one shared counter line."""
    rng = random.Random(pad_seed)
    traces = []
    for _ in range(warps):
        trace = []
        for _ in range(increments):
            trace.append(compute(rng.randrange(1, 5)))
            trace.append(atomic(COUNTER))
        trace.append(fence())
        traces.append(trace)
    return Kernel("counter", traces)


ALL_PROTOCOLS = [Protocol.GTSC, Protocol.TC, Protocol.DISABLED,
                 Protocol.NONCOHERENT]


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("consistency", [Consistency.SC, Consistency.RC])
def test_concurrent_increments_never_tear(protocol, consistency):
    config = GPUConfig.tiny(protocol=protocol, consistency=consistency)
    kernel = counter_kernel()
    gpu = GPU(config)
    gpu.run(kernel)
    log, versions = gpu.machine.log, gpu.machine.versions
    assert len(log.atomics) == 4 * 6
    assert check_atomicity(log, versions) == 24
    # the counter reached exactly warps * increments
    assert versions.latest(COUNTER) == 24


def test_gtsc_atomic_full_coherence_check():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    gpu, _ = run_and_check(config, counter_kernel(pad_seed=3))
    assert len(gpu.machine.log.atomics) == 24


def test_gtsc_atomic_advances_warp_clock():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    kernel = Kernel("a", [[atomic(COUNTER), fence()]])
    gpu, _ = run_and_check(config, kernel)
    record = gpu.machine.log.atomics[0]
    assert record.logical_ts > 1  # scheduled after the initial lease


def test_gtsc_atomic_mixed_with_loads_and_stores():
    rng = random.Random(9)
    traces = []
    for w in range(4):
        trace = []
        for _ in range(20):
            r = rng.random()
            if r < 0.4:
                trace.append(load(rng.randrange(4)))
            elif r < 0.6:
                trace.append(store(rng.randrange(4)))
            elif r < 0.8:
                trace.append(atomic(rng.randrange(4)))
            else:
                trace.append(fence())
        trace.append(fence())
        traces.append(trace)
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, Kernel("mix", traces))


def test_gtsc_atomic_blocks_same_sm_reads_until_ack():
    """Update visibility applies to atomics exactly as to stores."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    kernel = Kernel("vis", [
        [load(COUNTER), atomic(COUNTER), fence()],
        [load(COUNTER), compute(2), load(COUNTER), fence()],
    ])
    gpu, stats = run_and_check(config, kernel)


def test_atomic_read_sees_latest_after_sc_sequence():
    """SC: atomic after a store by the same warp reads that store."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC)
    kernel = Kernel("seq", [[store(COUNTER), atomic(COUNTER), fence()]])
    gpu, _ = run_and_check(config, kernel)
    record = gpu.machine.log.atomics[0]
    store_rec = gpu.machine.log.stores[0]
    assert record.old_version == store_rec.version


def test_tc_strong_atomic_waits_for_leases():
    """TC-Strong parks atomics behind unexpired leases like stores."""
    config = GPUConfig.tiny(protocol=Protocol.TC,
                            consistency=Consistency.SC)
    kernel = Kernel("wait", [
        [load(COUNTER), compute(2), fence()],     # SM0 takes a lease
        [compute(10), atomic(COUNTER), fence()],  # SM1's atomic waits
    ])
    stats = GPU(config).run(kernel)
    assert stats.counter("l2_write_stalls") >= 1
    assert stats.cycles >= config.tc_lease


def test_tc_weak_atomic_returns_gwct():
    config = GPUConfig.tiny(protocol=Protocol.TC,
                            consistency=Consistency.RC)
    kernel = Kernel("gwct", [
        [load(COUNTER), compute(2), fence()],
        [compute(10), atomic(COUNTER), fence(), store(1), fence()],
    ])
    stats = GPU(config).run(kernel)
    # the fence after the atomic waited for global visibility
    assert stats.counter("fence_wait_cycles") > 0


def test_atomics_count_as_memory_instructions():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    kernel = Kernel("cnt", [[atomic(COUNTER), fence()]])
    stats = GPU(config).run(kernel)
    assert stats.counter("mem_instructions") == 1
    assert stats.counter("l1_atomic") == 1
    assert stats.counter("l2_atomics") == 1


def test_atomic_on_uncached_line_fetches_from_dram():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    kernel = Kernel("cold", [[atomic(COUNTER), fence()]])
    stats = GPU(config).run(kernel)
    assert stats.counter("dram_reads") == 1


def test_atomicity_checker_catches_torn_rmw():
    """The checker itself must reject a fabricated torn atomic."""
    from repro.validate.versions import AccessLog, AtomicRecord, VersionStore
    versions = VersionStore()
    for version in (1, 2, 3):
        assert versions.new_version(0) == version
        versions.record_wts(0, version, wts=version * 10)
    log = AccessLog()
    # claims to have read version 1 while writing version 3 — but
    # version 2 intervened
    log.record_atomic(AtomicRecord(
        warp_uid=0, addr=0, old_version=1, new_version=3,
        logical_ts=30, epoch=0, issue_cycle=0, complete_cycle=5))
    with pytest.raises(Exception, match="torn"):
        check_atomicity(log, versions)
