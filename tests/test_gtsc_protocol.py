"""End-to-end G-TSC scenarios, including the paper's worked examples."""

from repro.config import Consistency, GPUConfig, Protocol, VisibilityPolicy
from repro.gpu.gpu import GPU
from repro.trace.instr import Kernel, compute, fence, load, store
from repro.validate.checker import check_gtsc_log, check_warp_monotonicity

from tests.conftest import random_kernel, run_and_check


X, Y = 0, 1  # two lines homed on the same bank in the tiny config


def test_figure9_example_is_timestamp_consistent():
    """The Section IV worked example: two SMs cross-accessing X and Y.

    SM0: LD X;  ST Y;  LD X        SM1: LD Y;  ST X;  LD Y

    The exact timestamps depend on timing, but the defining outcome of
    the example must hold: every load's logical time falls inside the
    window of the version it returned, and each store is ordered after
    the leases it conflicted with.
    """
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC)
    kernel = Kernel("fig9", [
        [load(X), store(Y), load(X), fence()],
        [load(Y), store(X), load(Y), fence()],
    ])
    gpu, _stats = run_and_check(config, kernel)
    log = gpu.machine.log
    # both stores performed, all four loads observed
    assert len(log.stores) == 2
    assert len(log.loads) == 4
    # the store to Y was logically scheduled after Y's initial lease
    store_y = next(s for s in log.stores if s.addr == Y)
    assert store_y.logical_ts > 1


def test_own_store_visible_to_later_own_load():
    """A warp always reads its own most recent write (program order)."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    kernel = Kernel("own", [[load(X), store(X), load(X), fence()]])
    gpu, _ = run_and_check(config, kernel)
    log = gpu.machine.log
    last_load = max((r for r in log.loads if r.addr == X),
                    key=lambda r: r.complete_cycle)
    assert last_load.version == log.stores[0].version


def test_figure10_update_visibility_no_early_read():
    """Section V-A: no warp may observe a store at a logical time
    before the store's assigned timestamp.

    Warp 0 writes A while warp 1 (same SM) races to read it; under the
    delay policy the read either sees the old version (ordered before)
    or the new version at/after its timestamp — never the coherence
    violation of Figure 10.  The value checker enforces exactly this.
    """
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            visibility=VisibilityPolicy.DELAY)
    kernel = Kernel("fig10", [
        [load(X), store(X), fence()],
        [load(X), compute(2), load(X), compute(2), load(X), fence()],
    ])
    run_and_check(config, kernel)


def test_figure10_old_copy_variant_is_also_coherent():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC,
                            visibility=VisibilityPolicy.OLD_COPY)
    kernel = Kernel("fig10b", [
        [load(X), store(X), fence()],
        [load(X), compute(2), load(X), compute(2), load(X), fence()],
    ])
    run_and_check(config, kernel)


def test_write_write_race_from_two_sms():
    """Concurrent stores to one line serialize with increasing wts."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    kernel = Kernel("ww", [
        [store(X), store(X), fence()],
        [store(X), store(X), fence()],
    ])
    gpu, _ = run_and_check(config, kernel)
    versions = gpu.machine.versions
    stamps = [versions.wts_of(X, v)[1]
              for v in range(1, versions.latest(X) + 1)]
    # the L2 hands out strictly increasing timestamps per line,
    # in its processing order
    ordered = sorted(stamps)
    assert len(set(stamps)) == len(stamps)
    assert stamps == ordered or set(stamps) == set(ordered)


def test_read_write_sharing_across_many_warps():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC)
    kernel = random_kernel(seed=11, warps=4, length=50, lines=6)
    run_and_check(config, kernel)


def test_rc_and_sc_both_coherent_on_random_mixes():
    for consistency in (Consistency.SC, Consistency.RC):
        for seed in (1, 2, 3):
            config = GPUConfig.tiny(protocol=Protocol.GTSC,
                                    consistency=consistency)
            run_and_check(config, random_kernel(seed, warps=4, length=60))


def test_sc_blocks_store_until_ack():
    """Under SC a warp issues nothing past an un-acked store."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.SC)
    kernel = Kernel("scstore", [[store(X), compute(1), load(Y), fence()]])
    gpu, _ = run_and_check(config, kernel)
    log = gpu.machine.log
    store_done = log.stores[0].complete_cycle
    load_done = log.loads[0].complete_cycle
    assert load_done > store_done


def test_rc_overlaps_store_with_later_work():
    """Under RC the warp proceeds while its store is in flight."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    # X and Y: after the store to X, a load of Y can complete before
    # the store's acknowledgment returns
    kernel = Kernel("rcstore", [[load(Y), store(X), load(Y), fence()]])
    gpu, _ = run_and_check(config, kernel)
    log = gpu.machine.log
    second_load = max(r.complete_cycle for r in log.loads)
    store_done = log.stores[0].complete_cycle
    # the second Y load hits in L1 and beats the store's NoC round trip
    assert second_load < store_done


def test_fence_drains_outstanding_stores():
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    kernel = Kernel("fence", [[store(X), store(Y), fence(), load(X),
                               fence()]])
    gpu, stats = run_and_check(config, kernel)
    assert stats.counter("fences") == 2
    log = gpu.machine.log
    fence_load = max(r.complete_cycle for r in log.loads)
    assert fence_load > max(s.complete_cycle for s in log.stores)


def test_l1_eviction_pressure_stays_coherent():
    """Working set far beyond the tiny L1 forces constant evictions."""
    config = GPUConfig.tiny(protocol=Protocol.GTSC,
                            consistency=Consistency.RC)
    run_and_check(config, random_kernel(seed=5, warps=4, length=80,
                                        lines=64))


def test_stats_cycle_count_is_positive_and_kernel_flushes_l1():
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    gpu = GPU(config)
    stats = gpu.run(Kernel("k", [[load(X), fence()]]))
    assert stats.cycles > 0
    assert gpu.machine.l1s[0].cache.occupancy() == 0  # flushed
