"""Tests for the structured tracer and its export formats.

The JSONL stream doubles as a golden-file format: the byte-exact
output for a hand-built tracer is pinned here, so any accidental
change to field names, ordering or separators — which would break
downstream consumers diffing traces — fails loudly.
"""

import json

import pytest

from repro.obs import Tracer, validate_chrome_trace

# ---------------------------------------------------------------------------
# recording semantics
# ---------------------------------------------------------------------------


def make_tracer():
    tracer = Tracer()
    tracer.instant(5, "sm0", "renew_request", {"addr": 64})
    tracer.complete(10, 42, "noc", "data:0->1", {"bytes": 40})
    tracer.counter(100, "metrics", "ipc", 3)
    tracer.instant(120, "l2b0", "ts_reset")
    return tracer


def test_complete_stores_duration():
    tracer = Tracer()
    tracer.complete(7, 19, "sm1", "stall_mem")
    phase, start, dur, track, name, args = tracer.events[0]
    assert (phase, start, dur) == ("X", 7, 12)
    assert (track, name, args) == ("sm1", "stall_mem", None)


def test_len_counts_events():
    assert len(make_tracer()) == 4


def test_engine_event_uses_callback_name():
    tracer = Tracer(trace_engine=True)

    def tick():
        pass

    tracer.engine_event(3, tick)
    assert tracer.events[0][4].endswith("tick")
    assert tracer.events[0][3] == "engine"


# ---------------------------------------------------------------------------
# JSONL: golden file + exact round trip
# ---------------------------------------------------------------------------

GOLDEN_JSONL = [
    '{"args":{"addr":64},"name":"renew_request","ph":"i","track":"sm0",'
    '"ts":5}',
    '{"args":{"bytes":40},"dur":32,"name":"data:0->1","ph":"X",'
    '"track":"noc","ts":10}',
    '{"name":"ipc","ph":"C","track":"metrics","ts":100,"value":3}',
    '{"name":"ts_reset","ph":"i","track":"l2b0","ts":120}',
]


def test_jsonl_matches_golden():
    assert list(make_tracer().iter_jsonl()) == GOLDEN_JSONL


def test_jsonl_round_trip_is_exact(tmp_path):
    tracer = make_tracer()
    path = str(tmp_path / "events.jsonl")
    tracer.write_jsonl(path)
    assert Tracer.read_jsonl(path) == tracer.events


def test_jsonl_lines_are_valid_json(tmp_path):
    path = str(tmp_path / "events.jsonl")
    make_tracer().write_jsonl(path)
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            assert record["ph"] in ("i", "X", "C")


# ---------------------------------------------------------------------------
# Chrome trace export + schema validation
# ---------------------------------------------------------------------------


def test_chrome_trace_validates():
    trace = make_tracer().to_chrome()
    # 4 events + process_name + one thread_name per distinct track
    assert validate_chrome_trace(trace) == 4 + 1 + 4


def test_chrome_trace_track_names_are_stable():
    trace = make_tracer().to_chrome()
    names = [e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert names == sorted(["sm0", "noc", "metrics", "l2b0"])


def test_chrome_trace_counter_carries_value():
    trace = make_tracer().to_chrome()
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert counters == [
        {"name": "ipc", "ph": "C", "ts": 100, "pid": 0,
         "tid": counters[0]["tid"], "cat": "metrics",
         "args": {"value": 3}},
    ]


def test_write_chrome_is_loadable_json(tmp_path):
    path = str(tmp_path / "run.trace.json")
    make_tracer().write_chrome(path)
    with open(path) as handle:
        trace = json.load(handle)
    assert validate_chrome_trace(trace) > 0
    assert trace["displayTimeUnit"] == "ns"


@pytest.mark.parametrize("mutate,message", [
    (lambda t: t.pop("traceEvents"), "traceEvents"),
    (lambda t: t["traceEvents"].append({"ph": "X"}), "name"),
    (lambda t: t["traceEvents"].append(
        {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}),
     "phase"),
    (lambda t: t["traceEvents"].append(
        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0}), "dur"),
    (lambda t: t["traceEvents"].append(
        {"name": "x", "ph": "C", "pid": 0, "tid": 0, "ts": 0,
         "args": {"value": "not-a-number"}}), "numeric"),
])
def test_schema_rejects_malformed_traces(mutate, message):
    trace = make_tracer().to_chrome()
    mutate(trace)
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(trace)
