"""Tests for the twelve benchmark generators."""

import pytest

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.trace.instr import FENCE, LOAD, STORE
from repro.workloads import (
    ALL_NAMES,
    COHERENT_NAMES,
    INDEPENDENT_NAMES,
    WORKLOADS,
    build_workload,
)
from repro.workloads.patterns import AddressSpace, Region, scaled


def test_registry_has_the_papers_twelve():
    assert set(ALL_NAMES) == {
        "BH", "CC", "DLP", "VPR", "STN", "BFS",
        "CCP", "GE", "HS", "KM", "BP", "SGM",
    }
    assert set(COHERENT_NAMES) == {"BH", "CC", "DLP", "VPR", "STN", "BFS"}
    assert set(INDEPENDENT_NAMES) == {"CCP", "GE", "HS", "KM", "BP", "SGM"}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_workload_builds_and_validates(name):
    kernel = build_workload(name, scale=0.25, seed=1)
    kernel.validate()
    assert kernel.num_warps >= 1
    assert kernel.total_instructions > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workloads_are_deterministic_per_seed(name):
    a = build_workload(name, scale=0.25, seed=42)
    b = build_workload(name, scale=0.25, seed=42)
    assert a.warp_traces == b.warp_traces
    # a different seed changes the randomised workloads (some
    # generators are fully structured and legitimately seed-free)
    seed_free = {"STN", "HS", "GE", "BP", "SGM", "CCP", "KM"}
    c = build_workload(name, scale=0.25, seed=43)
    assert a.warp_traces != c.warp_traces or name in seed_free


def test_scale_changes_workload_size():
    small = build_workload("BFS", scale=0.25, seed=1)
    large = build_workload("BFS", scale=1.0, seed=1)
    assert large.num_warps > small.num_warps
    assert large.total_instructions > small.total_instructions


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        build_workload("NOPE")


def test_nonpositive_scale_rejected():
    with pytest.raises(ValueError):
        build_workload("BFS", scale=0)


def _has_cross_warp_rw_sharing(kernel):
    """Does any line get written by one warp and read by another?"""
    writers, readers = {}, {}
    for index, trace in enumerate(kernel.warp_traces):
        for instr in trace:
            if instr.op == STORE:
                for addr in instr.addrs:
                    writers.setdefault(addr, set()).add(index)
            elif instr.op == LOAD:
                for addr in instr.addrs:
                    readers.setdefault(addr, set()).add(index)
    for addr, wset in writers.items():
        rset = readers.get(addr, set())
        if rset - wset or len(wset) > 1:
            return True
    return False


@pytest.mark.parametrize("name", COHERENT_NAMES)
def test_coherent_group_really_shares_read_write_data(name):
    kernel = build_workload(name, scale=0.25, seed=1)
    assert _has_cross_warp_rw_sharing(kernel)


@pytest.mark.parametrize("name", COHERENT_NAMES)
def test_coherent_group_uses_fences(name):
    kernel = build_workload(name, scale=0.25, seed=1)
    ops = {i.op for t in kernel.warp_traces for i in t}
    assert FENCE in ops


@pytest.mark.parametrize("name", INDEPENDENT_NAMES)
def test_independent_group_runs_correctly_without_coherence(name):
    """The defining property of the second group: a non-coherent L1
    produces exactly the right values (no warp reads another's dirty
    data)."""
    config = GPUConfig.tiny(protocol=Protocol.NONCOHERENT,
                            consistency=Consistency.RC)
    kernel = build_workload(name, scale=0.15, seed=1)
    stats = GPU(config).run(kernel)
    assert stats.counter("warps_retired") == kernel.num_warps


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workloads_complete_under_gtsc(name):
    config = GPUConfig.tiny(protocol=Protocol.GTSC)
    kernel = build_workload(name, scale=0.15, seed=1)
    stats = GPU(config, record_accesses=False).run(kernel)
    assert stats.counter("warps_retired") == kernel.num_warps
    assert stats.cycles > 0


def test_specs_have_descriptions():
    for spec in WORKLOADS.values():
        assert spec.description
        assert spec.builder is not None


# ---------------------------------------------------------------------------
# pattern helpers
# ---------------------------------------------------------------------------

def test_address_space_regions_are_disjoint():
    space = AddressSpace()
    a = space.region(10)
    b = space.region(5)
    a_lines = {a.line(i) for i in range(10)}
    b_lines = {b.line(i) for i in range(5)}
    assert not (a_lines & b_lines)


def test_region_wraps_indices():
    region = Region(base=100, lines=4)
    assert region.line(0) == 100
    assert region.line(5) == 101


def test_powerlaw_favors_low_indices():
    import random
    region = Region(0, 100)
    rng = random.Random(7)
    picks = [region.powerlaw_line(rng) for _ in range(2000)]
    low = sum(1 for p in picks if p < 20)
    # alpha=1.3 puts ~29% of mass on the first fifth (uniform: 20%)
    assert low > len(picks) * 0.25


def test_scaled_floors_at_minimum():
    assert scaled(10, 0.01, minimum=2) == 2
    assert scaled(10, 2.0) == 20
