"""The hot-path overhaul changed no simulated outcome.

``tests/golden/runstats_tiny.json`` holds ``RunStats.to_dict()``
payloads captured from the simulator *before* the packed-trace /
closure-free-callback / incremental-scheduling rewrite: all four
protocols, two consistency models, both schedulers, three workloads
on the tiny preset.  Every case must still reproduce byte-identically
— serialized with ``json.dumps(..., sort_keys=True)`` — proving the
optimizations are pure perf work.

If a future PR *intends* to change simulated behaviour, regenerate
the fixture (run this file's ``_simulate`` for every key and dump the
results) and say so in the commit message.
"""

import json
import os

import pytest

from repro.config import Consistency, GPUConfig, Protocol, SchedulerPolicy
from repro.gpu.gpu import GPU
from repro.workloads import build_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "runstats_tiny.json")

with open(GOLDEN_PATH) as handle:
    GOLDEN = json.load(handle)


def _simulate(key: str) -> dict:
    workload, protocol, consistency, scheduler = key.split("|")
    config = GPUConfig.tiny(protocol=Protocol(protocol),
                            consistency=Consistency(consistency),
                            scheduler=SchedulerPolicy(scheduler))
    kernel = build_workload(workload, scale=0.3, seed=2018)
    return GPU(config, record_accesses=False).run(kernel).to_dict()


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_runstats_bit_identical_to_pre_overhaul_golden(key):
    expected = json.dumps(GOLDEN[key], sort_keys=True)
    actual = json.dumps(_simulate(key), sort_keys=True)
    assert actual == expected, f"simulated outcome changed for {key}"


def test_golden_covers_every_protocol_and_two_workloads():
    """Guard the fixture itself against accidental truncation."""
    protocols = {key.split("|")[1] for key in GOLDEN}
    workloads = {key.split("|")[0] for key in GOLDEN}
    assert protocols == {p.value for p in
                         (Protocol.GTSC, Protocol.TC, Protocol.MESI,
                          Protocol.DISABLED)}
    assert len(workloads) >= 2


# ---------------------------------------------------------------------------
# cross-backend equivalence: pure vs fast x obs on/off x every protocol
# ---------------------------------------------------------------------------
# The fast backend (repro.sim._fast) is the same algorithm whether it
# imports interpreted or as a mypyc extension, so running it here —
# with or without the compiled artifact present — proves the twin
# module stays bit-identical to the pure engine.  One golden key per
# protocol keeps the matrix (4 protocols x 2 backends x obs on/off)
# affordable.

from repro.obs import Observability, replay_audit  # noqa: E402
from repro.sim.backend import backend_name, select_backend  # noqa: E402

BACKEND_KEYS = sorted(
    {key.split("|")[1]: key for key in sorted(GOLDEN)}.values())


def _simulate_backend(key: str, backend: str, with_obs: bool):
    workload, protocol, consistency, scheduler = key.split("|")
    config = GPUConfig.tiny(protocol=Protocol(protocol),
                            consistency=Consistency(consistency),
                            scheduler=SchedulerPolicy(scheduler))
    kernel = build_workload(workload, scale=0.3, seed=2018)
    obs = Observability.full() if with_obs else None
    select_backend(backend)
    try:
        assert backend_name() == backend
        gpu = GPU(config, record_accesses=False, obs=obs)
        stats = gpu.run(kernel)
    finally:
        select_backend("auto")
    return gpu, stats, obs, config


@pytest.mark.parametrize("with_obs", [False, True],
                         ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("key", BACKEND_KEYS)
def test_fast_backend_bit_identical(key, with_obs):
    """pure and fast produce the same RunStats, audit, and goldens."""
    pure_gpu, pure_stats, pure_obs, config = \
        _simulate_backend(key, "pure", with_obs)
    fast_gpu, fast_stats, fast_obs, _ = \
        _simulate_backend(key, "fast", with_obs)
    assert pure_gpu.machine.sim_backend == "pure"
    assert fast_gpu.machine.sim_backend == "fast"
    assert json.dumps(fast_stats.to_dict(), sort_keys=True) == \
        json.dumps(pure_stats.to_dict(), sort_keys=True), \
        f"backends diverge for {key} (obs={with_obs})"
    if not with_obs:
        # both must also still match the committed golden
        assert json.dumps(pure_stats.to_dict(), sort_keys=True) == \
            json.dumps(GOLDEN[key], sort_keys=True)
    protocol = key.split("|")[1]
    if with_obs and protocol == "gtsc":
        # the G-TSC audit replay sees the identical event stream
        checked_pure = replay_audit(pure_obs.audit.records, config.lease)
        checked_fast = replay_audit(fast_obs.audit.records, config.lease)
        assert checked_pure == checked_fast > 0
    if protocol in ("gtsc", "tc"):
        # packed cache columns stayed in lockstep with the line records
        for gpu in (pure_gpu, fast_gpu):
            for l1 in gpu.machine.l1s:
                assert l1.cache.check_packed() == []
            for bank in gpu.machine.l2_banks:
                assert bank.cache.check_packed() == []


def test_backend_selection_resolution_order():
    """Flag beats environment beats the auto default."""
    import os
    select_backend("pure")
    try:
        os.environ["REPRO_BACKEND"] = "fast"
        try:
            assert backend_name() == "pure"  # flag wins
        finally:
            del os.environ["REPRO_BACKEND"]
    finally:
        select_backend("auto")
    assert backend_name() in ("pure", "fast")


# ---------------------------------------------------------------------------
# ready-mask property: the vectorized scan equals the reference loop
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

# a packed warp classification: -1 (dirty), a bare state (0..4), or a
# wake-timer entry ((wake + 1) << 3 | state)
_cls_entry = st.one_of(
    st.just(-1),
    st.integers(min_value=0, max_value=4),
    st.builds(lambda wake, state: ((wake + 1) << 3) | state,
              st.integers(min_value=0, max_value=100_000),
              st.integers(min_value=0, max_value=4)),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_cls_entry, max_size=64),
       st.integers(min_value=0, max_value=200_000))
def test_ready_mask_implementations_agree(cls_values, now):
    from repro.gpu.sm import ready_mask, ready_mask_loop
    from repro.sim import _fast

    expected = ready_mask_loop(cls_values, now)
    assert ready_mask(cls_values, now) == expected
    assert _fast.ready_mask_loop(cls_values, now) == expected
