"""The hot-path overhaul changed no simulated outcome.

``tests/golden/runstats_tiny.json`` holds ``RunStats.to_dict()``
payloads captured from the simulator *before* the packed-trace /
closure-free-callback / incremental-scheduling rewrite: all four
protocols, two consistency models, both schedulers, three workloads
on the tiny preset.  Every case must still reproduce byte-identically
— serialized with ``json.dumps(..., sort_keys=True)`` — proving the
optimizations are pure perf work.

If a future PR *intends* to change simulated behaviour, regenerate
the fixture (run this file's ``_simulate`` for every key and dump the
results) and say so in the commit message.
"""

import json
import os

import pytest

from repro.config import Consistency, GPUConfig, Protocol, SchedulerPolicy
from repro.gpu.gpu import GPU
from repro.workloads import build_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "runstats_tiny.json")

with open(GOLDEN_PATH) as handle:
    GOLDEN = json.load(handle)


def _simulate(key: str) -> dict:
    workload, protocol, consistency, scheduler = key.split("|")
    config = GPUConfig.tiny(protocol=Protocol(protocol),
                            consistency=Consistency(consistency),
                            scheduler=SchedulerPolicy(scheduler))
    kernel = build_workload(workload, scale=0.3, seed=2018)
    return GPU(config, record_accesses=False).run(kernel).to_dict()


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_runstats_bit_identical_to_pre_overhaul_golden(key):
    expected = json.dumps(GOLDEN[key], sort_keys=True)
    actual = json.dumps(_simulate(key), sort_keys=True)
    assert actual == expected, f"simulated outcome changed for {key}"


def test_golden_covers_every_protocol_and_two_workloads():
    """Guard the fixture itself against accidental truncation."""
    protocols = {key.split("|")[1] for key in GOLDEN}
    workloads = {key.split("|")[0] for key in GOLDEN}
    assert protocols == {p.value for p in
                         (Protocol.GTSC, Protocol.TC, Protocol.MESI,
                          Protocol.DISABLED)}
    assert len(workloads) >= 2
