"""Tests for the Temporal Coherence baseline (Section II-D)."""

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.protocols.tc import TCFill, TCRd, TCWr, TCWrAck
from repro.trace.instr import Kernel, compute, fence, load, store


def make_machine(consistency=Consistency.SC, **overrides):
    config = GPUConfig.tiny(protocol=Protocol.TC, consistency=consistency,
                            **overrides)
    machine = Machine(config)
    build_protocol(machine)
    return machine


def tracker():
    done = []
    return done, lambda: done.append(True)


# ---------------------------------------------------------------------------
# L1 behaviour
# ---------------------------------------------------------------------------

def test_fill_grants_physical_lease():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    line = l1.cache.lookup(0)
    assert line is not None
    assert line.expiry > machine.engine.now
    assert done == [True]


def test_hit_within_lease_miss_after_expiry():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    l1.load(warp, 0, cb)      # inside the lease: hit
    machine.engine.run()
    assert machine.stats.get("l1_hit") == 1
    # jump physical time past the lease: self-invalidation
    expiry = l1.cache.lookup(0).expiry
    machine.engine.schedule(expiry + 1, lambda: l1.load(warp, 0, cb))
    machine.engine.run()
    assert machine.stats.get("l1_expired_miss") == 1
    assert done == [True] * 3


def test_store_invalidates_local_copy():
    machine = make_machine()
    l1 = machine.l1s[0]
    warp = Warp(0, [])
    done, cb = tracker()
    l1.load(warp, 0, cb)
    machine.engine.run()
    l1.store(warp, 0, cb)
    assert l1.cache.lookup(0) is None  # write-through, no-allocate
    machine.engine.run()
    assert done == [True, True]


# ---------------------------------------------------------------------------
# TC-Strong: write stalls
# ---------------------------------------------------------------------------

def test_strong_write_waits_for_lease_expiry():
    machine = make_machine(Consistency.SC)
    l1_a, l1_b = machine.l1s[0], machine.l1s[1]
    reader, writer = Warp(0, []), Warp(1, [])
    done_r, cb_r = tracker()
    done_w, cb_w = tracker()
    # SM0 takes a lease on line 0
    l1_a.load(reader, 0, cb_r)
    machine.engine.run()
    lease_end = machine.l2_banks[0].cache.lookup(0).expiry
    # SM1 writes: must wait for SM0's lease
    l1_b.store(writer, 0, cb_w)
    machine.engine.run()
    assert done_w == [True]
    assert machine.engine.now >= lease_end
    assert machine.stats.get("l2_write_stalls") == 1
    assert machine.stats.get("l2_write_stall_cycles") > 0


def test_strong_reads_queue_behind_waiting_write():
    """Section II-D3: a delayed write delays all subsequent reads."""
    machine = make_machine(Consistency.SC)
    l1_a, l1_b = machine.l1s[0], machine.l1s[1]
    reader, writer, late = Warp(0, []), Warp(1, []), Warp(2, [])
    l1_a.load(reader, 0, lambda: None)
    machine.engine.run()
    lease_end = machine.l2_banks[0].cache.lookup(0).expiry
    late_done = []
    l1_b.store(writer, 0, lambda: None)
    # give the write a head start so it is parked before the read
    machine.engine.run(until=machine.engine.now + 15)
    l1_b.load(late, 0, lambda: late_done.append(machine.engine.now))
    machine.engine.run()
    assert late_done and late_done[0] >= lease_end
    assert machine.stats.get("l2_blocked_requests") >= 1
    # the queued read returned the *new* version (it ordered after)
    assert machine.log.loads[-1].version == 1


def test_weak_write_completes_immediately_with_gwct():
    machine = make_machine(Consistency.RC)
    l1_a, l1_b = machine.l1s[0], machine.l1s[1]
    reader, writer = Warp(0, []), Warp(1, [])
    l1_a.load(reader, 0, lambda: None)
    machine.engine.run()
    lease_end = machine.l2_banks[0].cache.lookup(0).expiry
    done_w, cb_w = tracker()
    start = machine.engine.now
    l1_b.store(writer, 0, cb_w)
    machine.engine.run()
    assert done_w == [True]
    # no lease stall: completed in a NoC round trip
    assert machine.engine.now < lease_end
    # but the GWCT records when the write becomes globally visible
    assert writer.gwct == lease_end
    assert machine.stats.get("l2_write_stalls") == 0


# ---------------------------------------------------------------------------
# system level
# ---------------------------------------------------------------------------

def test_tc_weak_fence_waits_for_gwct():
    config = GPUConfig.tiny(protocol=Protocol.TC, consistency=Consistency.RC)
    # SM0 reads line 0 (long lease); SM1 writes it and fences
    kernel = Kernel("gwct", [
        [load(0), compute(2), fence()],
        [compute(10), store(0), fence(), load(1), fence()],
    ])
    gpu = GPU(config)
    stats = gpu.run(kernel)
    assert stats.counter("fence_wait_cycles") > 0
    # the fence completed only after the writer's GWCT passed
    assert stats.cycles >= config.tc_lease


def test_tc_strong_inclusion_stalls_replacement():
    """Section II-D2: lease-pinned L2 lines block eviction."""
    config = GPUConfig.tiny(protocol=Protocol.TC, consistency=Consistency.SC,
                            tc_lease=100_000)
    machine = Machine(config)
    build_protocol(machine)
    l1 = machine.l1s[0]
    sets = config.l2_sets
    stride = sets * config.num_l2_banks
    warp = Warp(0, [])
    # lease-pin every way of one L2 set, then fetch one more line
    for k in range(config.l2_assoc):
        l1.load(warp, k * stride, lambda: None)
        machine.engine.run()
    done, cb = tracker()
    l1.load(warp, config.l2_assoc * stride, cb)
    machine.engine.run(until=machine.engine.now + 200)
    assert machine.stats.get("l2_evict_stall") > 0
    assert done == []  # still stalled behind the pinned set


def test_tc_end_to_end_mixed_kernel_completes():
    for consistency in (Consistency.SC, Consistency.RC):
        config = GPUConfig.tiny(protocol=Protocol.TC,
                                consistency=consistency)
        kernel = Kernel("mix", [
            [load(0), store(1), fence(), load(1), fence()],
            [load(1), store(0), fence(), load(0), fence()],
        ])
        stats = GPU(config).run(kernel)
        assert stats.cycles > 0


def test_tc_message_sizes_reflect_32bit_times():
    config = GPUConfig.tiny()
    rd = TCRd(0, 0)
    fill = TCFill(0, 0, version=1, expiry=50)
    ack = TCWrAck(0, 0, gwct=99)
    wr = TCWr(0, 0, version=1)
    assert rd.size(config) == config.noc_header_bytes
    assert fill.size(config) == (config.noc_header_bytes
                                 + config.tc_timestamp_bytes
                                 + config.line_size)
    assert ack.size(config) == (config.noc_header_bytes
                                + config.tc_timestamp_bytes)
    assert wr.size(config) == config.noc_header_bytes + config.line_size
