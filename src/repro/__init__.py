"""repro — a reproduction of *G-TSC: Timestamp Based Coherence for GPUs*
(Tabbakh, Qian, Annavaram; HPCA 2018).

The package provides a trace-driven GPU memory-hierarchy simulator
with four coherence configurations (G-TSC, Temporal Coherence, the
no-L1 coherent baseline, and a non-coherent L1), two consistency
models (SC and RC), workload generators for the paper's twelve
benchmarks, exact coherence validators, and a harness that regenerates
every table and figure of the paper's evaluation.

Quickstart::

    from repro import GPUConfig, Protocol, Consistency, run_kernel
    from repro.workloads import build_workload

    config = GPUConfig.small(protocol=Protocol.GTSC,
                             consistency=Consistency.RC)
    kernel = build_workload("BFS", scale=0.5, seed=7)
    stats = run_kernel(config, kernel)
    print(stats.summary())
"""

from repro.config import (
    CombiningPolicy,
    Consistency,
    GPUConfig,
    Protocol,
    VisibilityPolicy,
)
from repro.gpu.gpu import GPU, SimulationHang, run_kernel
from repro.stats.collector import RunStats
from repro.trace.instr import (
    Instr,
    Kernel,
    atomic,
    compute,
    fence,
    load,
    store,
)

__version__ = "1.0.0"

__all__ = [
    "CombiningPolicy",
    "Consistency",
    "GPU",
    "GPUConfig",
    "Instr",
    "Kernel",
    "Protocol",
    "RunStats",
    "SimulationHang",
    "VisibilityPolicy",
    "atomic",
    "compute",
    "fence",
    "load",
    "run_kernel",
    "store",
]
