"""G-TSC private (L1) cache controller — Figures 1a, 2, 3, 7, 8.

Implements, per the paper:

* the load flowchart (Fig. 2): hit requires a tag match *and*
  ``warp_ts <= rts``; a hit advances the warp's logical clock to at
  least the line's ``wts``; misses send ``BusRd`` carrying the stale
  copy's ``wts`` (0 on a cold miss) so the L2 can answer with a
  data-less renewal when possible;
* the store flowchart (Fig. 3): write-through — every store is
  performed at the L2 and acknowledged with its assigned lease;
* update visibility (Section V-A): while a store to a line is pending,
  either *all* accesses to that line are delayed until the ack
  (option 1, the paper's choice) or the old copy stays readable to
  other warps while only the writer waits (option 2);
* request combining (Section V-B, Fig. 11): replicated reads from
  different warps park in one MSHR entry; waiters whose ``warp_ts``
  the granted lease does not cover trigger a renewal request rather
  than being forwarded individually (unless the forward-all ablation
  is selected);
* timestamp overflow (Section V-D): responses carry the L2 epoch; on
  seeing a newer epoch the L1 flushes itself and resets its warps'
  logical clocks.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Set

from repro.config import CombiningPolicy, VisibilityPolicy
from repro.core.messages import (
    BusAtm,
    BusAtmAck,
    BusFill,
    BusInv,
    BusRd,
    BusRnw,
    BusWr,
    BusWrAck,
)
from repro.mem.cache import CacheArray
from repro.mem.mshr import MSHRFullError
from repro.protocols.base import (
    L1ControllerBase,
    LoadWaiter,
    Message,
    PendingAtomic,
    PendingStore,
    pop_pending,
)
from repro.validate.versions import AtomicRecord, LoadRecord, StoreRecord


def _unpinned(line) -> bool:
    """Eviction predicate for fills: a way is up for grabs only when no
    unacknowledged store is outstanding on it (module-level so the fill
    path allocates no closure)."""
    return line.pending_stores == 0

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp


class GTSCL1Controller(L1ControllerBase):
    """Per-SM L1 controller for G-TSC."""

    __slots__ = ("cache", "epoch", "_pending_stores", "_pending_atomics",
                 "_locked_waiters", "_pending_writers", "_warps",
                 "_handlers")

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        config = machine.config
        self.cache = CacheArray(config.l1_sets, config.l1_assoc)
        self.epoch = 0
        # response dispatch by concrete message class: one dict lookup
        # on the hot receive path instead of an isinstance ladder
        self._handlers = {
            BusFill: self._on_fill,
            BusRnw: self._on_renewal,
            BusWrAck: self._on_write_ack,
            BusAtmAck: self._on_atomic_ack,
            BusInv: self._on_back_inv,
        }
        # FIFO of unacknowledged stores per line (acks return in order)
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        # FIFO of unacknowledged atomics per line
        self._pending_atomics: Dict[int, Deque[PendingAtomic]] = {}
        # loads delayed by the update-visibility rule, per line
        self._locked_waiters: Dict[int, List[tuple]] = {}
        # warps with a pending store per line (for the OLD_COPY policy)
        self._pending_writers: Dict[int, Set[int]] = {}
        # every warp that ever touched this L1 (for epoch resets)
        self._warps: Set["Warp"] = set()

    # ------------------------------------------------------------------
    # SM-facing operations
    # ------------------------------------------------------------------
    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        self._warps.add(warp)
        counters = self._counters
        counters["l1_access"] += 1

        # inline _load_blocked_by_store: the common case (no pending
        # store on this line) must cost two dict probes, nothing more
        pending = (self._pending_stores.get(addr)
                   or self._pending_atomics.get(addr))
        if pending and self._blocks_load(warp, addr):
            counters["l1_locked_wait"] += 1
            self._locked_waiters.setdefault(addr, []).append(
                (warp, on_done, self.engine.now)
            )
            return True

        # tag probe + lease check over the packed columns (the Fig. 2
        # hit test, as indexed int reads — the line object is never
        # touched on this path).  The LRU touch fires on any tag
        # match, hit or expired, exactly like lookup() did.
        cache = self.cache
        slot = cache._where.get(addr)
        if slot is not None:
            cache._tick += 1
            cache._lru[slot] = cache._tick
            if warp.ts <= cache.rts_col[slot]:
                counters["l1_hit"] += 1
                wts = cache.wts_col[slot]
                if wts > warp.ts:
                    warp.ts = wts
                engine = self.engine
                if self.audit is not None:
                    self.audit.record(engine.now, "l1_load",
                                      self.track, addr, wts,
                                      cache.rts_col[slot],
                                      warp.ts, self.epoch, warp.uid)
                self._record_load(warp, addr, cache.version_col[slot],
                                  engine.now, hit=True)
                # Engine.post, inlined (one completion per L1 hit)
                time = engine.now + self._l1_latency
                seq = engine._seq
                engine._seq = seq + 1
                event = [time, seq, on_done, ()]
                if time < engine._limit:
                    bucket = time & engine._mask
                    engine._buckets[bucket].append(event)
                    engine._filled[bucket] = 1
                else:
                    heappush(engine._heap, event)
                    engine.heap_deferred += 1
                return True

        # miss: cold (no tag) or coherence (lease behind warp_ts)
        counters["l1_miss"] += 1
        stale_wts = 0
        if slot is not None:
            counters["l1_expired_miss"] += 1
            stale_wts = cache.wts_col[slot]

        waiter = LoadWaiter(warp, on_done, self.engine.now)
        entry = self.mshr.get(addr)
        combine = self.config.combining is CombiningPolicy.MSHR
        if entry is not None and combine:
            entry.waiters.append(waiter)
            return True
        if entry is None:
            if self.mshr.full:
                self._counters["l1_mshr_stall"] += 1
                if self.trace is not None:
                    self.trace.instant(self.engine.now, self.track,
                                       "mshr_stall", {"addr": addr})
                return False
            entry = self.mshr.allocate(addr)
        entry.waiters.append(waiter)
        self._send(BusRd(addr, self.sm_id, stale_wts, warp.ts, self.epoch))
        entry.issued = True
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        self._warps.add(warp)
        counters = self._counters
        counters["l1_access"] += 1
        counters["l1_store"] += 1

        version = self.machine.versions.new_version(addr)
        line = self.cache.lookup(addr)
        if line is not None:
            # block accesses to the updated line until the ack arrives
            line.pending_stores += 1
        self._pending_writers.setdefault(addr, set()).add(warp.uid)
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        self._pending_stores.setdefault(addr, deque()).append(pending)
        self._send(BusWr(addr, self.sm_id, warp.ts, version, self.epoch))
        return True

    def atomic(self, warp: "Warp", addr: int,
               on_done: Callable[[], None]) -> bool:
        """Atomic RMW: performed at the L2 via the store path; the
        updated line is unreadable locally until the ack, exactly like
        a store under the update-visibility rule."""
        self._warps.add(warp)
        counters = self._counters
        counters["l1_access"] += 1
        counters["l1_atomic"] += 1
        version = self.machine.versions.new_version(addr)
        line = self.cache.lookup(addr)
        if line is not None:
            line.pending_stores += 1
        self._pending_writers.setdefault(addr, set()).add(warp.uid)
        pending = PendingAtomic(warp, addr, version, on_done,
                                self.engine.now)
        self._pending_atomics.setdefault(addr, deque()).append(pending)
        self._send(BusAtm(addr, self.sm_id, warp.ts, version, self.epoch))
        return True

    # ------------------------------------------------------------------
    # update-visibility policy (Section V-A)
    # ------------------------------------------------------------------
    def _load_blocked_by_store(self, warp: "Warp", addr: int) -> bool:
        """Does the update-visibility rule delay this load?

        Option 1 (DELAY): any pending store to the line blocks every
        load of it from this SM.  Option 2 (OLD_COPY): only the warps
        that themselves have a pending store to the line wait (they
        must not read past their own unacknowledged write); other
        warps may keep reading the old copy.
        """
        pending = (self._pending_stores.get(addr)
                   or self._pending_atomics.get(addr))
        return bool(pending) and self._blocks_load(warp, addr)

    def _blocks_load(self, warp: "Warp", addr: int) -> bool:
        """The policy half of the rule, once a pending store/atomic on
        the line is known to exist (see :meth:`_load_blocked_by_store`;
        the existence probe is inlined in :meth:`load`)."""
        if self.config.visibility is VisibilityPolicy.DELAY:
            return True
        writers = self._pending_writers.get(addr)
        return writers is not None and warp.uid in writers

    def _release_locked(self, addr: int) -> None:
        """Replay loads that were delayed by a (now drained) store."""
        if self._pending_stores.get(addr) or self._pending_atomics.get(addr):
            return
        self._pending_stores.pop(addr, None)
        self._pending_atomics.pop(addr, None)
        self._pending_writers.pop(addr, None)
        waiters = self._locked_waiters.pop(addr, None)
        if not waiters:
            return
        for warp, on_done, _issue in waiters:
            accepted = self.load(warp, addr, on_done)
            if not accepted:
                # MSHR full: put the load back in the locked queue and
                # retry on a timer rather than losing it
                self._locked_waiters.setdefault(addr, []).append(
                    (warp, on_done, self.engine.now)
                )
                self.engine.schedule(self.config.mshr_retry_interval,
                                     self._retry_locked, addr)

    def _retry_locked(self, addr: int) -> None:
        waiters = self._locked_waiters.pop(addr, None)
        if not waiters:
            return
        for warp, on_done, _issue in waiters:
            if not self.load(warp, addr, on_done):
                self._locked_waiters.setdefault(addr, []).append(
                    (warp, on_done, self.engine.now)
                )
                self.engine.schedule(self.config.mshr_retry_interval,
                                     self._retry_locked, addr)

    # ------------------------------------------------------------------
    # responses from L2
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        epoch = getattr(msg, "epoch", self.epoch)
        if epoch > self.epoch:
            self._epoch_reset(epoch)
        handler = self._handlers.get(type(msg))
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at G-TSC L1: {msg!r}")
        handler(msg)

    def _on_back_inv(self, msg: BusInv) -> None:
        # inclusive-L2 ablation: back-invalidate (never drops a
        # line with a pending store; timestamps keep that safe)
        line = self.cache.lookup(msg.addr, touch=False)
        if line is not None and line.pending_stores == 0:
            self.cache.invalidate(msg.addr)
            self._counters["l1_back_invalidations"] += 1

    def _on_fill(self, msg: BusFill) -> None:
        if msg.epoch < self.epoch:
            # response crossed a timestamp reset: its timestamps are
            # meaningless now; refetch for whoever is still waiting
            self._refetch(msg.addr)
            return
        cache = self.cache
        line, _evicted = cache.allocate(msg.addr, _unpinned)
        if line is None:
            # every way is pinned by pending stores: serve the waiters
            # straight from the response without caching the line
            self._drain(msg.addr, msg.wts, msg.rts, msg.version,
                        installed=False)
            return
        if line.wts <= msg.wts:
            line.wts = msg.wts
            line.rts = max(line.rts, msg.rts)
            line.version = msg.version
            line.epoch = self.epoch
            slot = cache._where[msg.addr]
            cache.wts_col[slot] = line.wts
            cache.rts_col[slot] = line.rts
            cache.version_col[slot] = line.version
        self._drain(msg.addr, line.wts, line.rts, line.version,
                    installed=True)

    def _on_renewal(self, msg: BusRnw) -> None:
        if msg.epoch < self.epoch:
            self._refetch(msg.addr)
            return
        line = self.cache.lookup(msg.addr)
        if line is None:
            # renewed line was evicted while the renewal was in flight;
            # only a full fill can help now
            self._refetch(msg.addr)
            return
        line.rts = max(line.rts, msg.rts)
        self.cache.rts_col[self.cache._where[msg.addr]] = line.rts
        self._drain(msg.addr, line.wts, line.rts, line.version,
                    installed=True)

    def _on_write_ack(self, msg: BusWrAck) -> None:
        queue = self._pending_stores.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"write ack with no pending store: {msg!r}")
        pending = pop_pending(queue, msg.version)
        stale = msg.epoch < self.epoch
        line = self.cache.lookup(msg.addr, touch=False)
        if line is not None:
            if line.pending_stores > 0:
                line.pending_stores -= 1
            if not stale and msg.wts >= line.wts:
                line.wts = msg.wts
                line.rts = msg.rts
                line.version = pending.version
                line.epoch = self.epoch
                cache = self.cache
                slot = cache._where[msg.addr]
                cache.wts_col[slot] = msg.wts
                cache.rts_col[slot] = msg.rts
                cache.version_col[slot] = pending.version
        if not stale:
            pending.warp.ts = max(pending.warp.ts, msg.wts)
            if self.audit is not None:
                self.audit.record(self.engine.now, "l1_store_ack",
                                  self.track, msg.addr, msg.wts,
                                  msg.rts, pending.warp.ts, self.epoch,
                                  pending.warp.uid)
        logical = pending.warp.ts if stale else msg.wts
        hist = self._store_hist
        if hist is None:
            hist = self._store_hist = self.stats.hist.get("store_latency")
        hist.add(self.engine.now - pending.issue_cycle)
        log = self.machine.log
        if log.enabled:
            log.stores.append(StoreRecord(
                warp_uid=pending.warp.uid,
                addr=msg.addr,
                version=pending.version,
                logical_ts=logical,
                epoch=self.epoch,
                issue_cycle=pending.issue_cycle,
                complete_cycle=self.engine.now,
            ))
        self._drop_writer_if_drained(msg.addr, pending.warp.uid)
        engine = self.engine
        engine.post(engine.now, pending.on_done)
        self._release_locked(msg.addr)

    def _on_atomic_ack(self, msg: BusAtmAck) -> None:
        queue = self._pending_atomics.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"atomic ack with no pending RMW: {msg!r}")
        pending = pop_pending(queue, msg.version)
        stale = msg.epoch < self.epoch
        line = self.cache.lookup(msg.addr, touch=False)
        if line is not None:
            if line.pending_stores > 0:
                line.pending_stores -= 1
            if not stale and msg.wts >= line.wts:
                line.wts = msg.wts
                line.rts = msg.rts
                line.version = pending.version
                line.epoch = self.epoch
                cache = self.cache
                slot = cache._where[msg.addr]
                cache.wts_col[slot] = msg.wts
                cache.rts_col[slot] = msg.rts
                cache.version_col[slot] = pending.version
        if not stale:
            pending.warp.ts = max(pending.warp.ts, msg.wts)
            if self.audit is not None:
                self.audit.record(self.engine.now, "l1_atomic_ack",
                                  self.track, msg.addr, msg.wts,
                                  msg.rts, pending.warp.ts, self.epoch,
                                  pending.warp.uid)
        logical = pending.warp.ts if stale else msg.wts
        hist = self._atomic_hist
        if hist is None:
            hist = self._atomic_hist = self.stats.hist.get("atomic_latency")
        hist.add(self.engine.now - pending.issue_cycle)
        log = self.machine.log
        if log.enabled:
            log.atomics.append(AtomicRecord(
                warp_uid=pending.warp.uid,
                addr=msg.addr,
                old_version=msg.old_version,
                new_version=pending.version,
                logical_ts=logical,
                epoch=self.epoch,
                issue_cycle=pending.issue_cycle,
                complete_cycle=self.engine.now,
            ))
        self._drop_writer_if_drained(msg.addr, pending.warp.uid)
        engine = self.engine
        engine.post(engine.now, pending.on_done)
        self._release_locked(msg.addr)

    def _drop_writer_if_drained(self, addr: int, warp_uid: int) -> None:
        """Clear a warp from the pending-writer set once it has no
        in-flight store *or* atomic left on the line."""
        writers = self._pending_writers.get(addr)
        if writers is None or warp_uid not in writers:
            return
        still_writing = any(
            p.warp.uid == warp_uid
            for p in self._pending_stores.get(addr, ())
        ) or any(
            p.warp.uid == warp_uid
            for p in self._pending_atomics.get(addr, ())
        )
        if not still_writing:
            writers.discard(warp_uid)

    # ------------------------------------------------------------------
    # MSHR drain / renewal (Section V-B)
    # ------------------------------------------------------------------
    def _drain(self, addr: int, wts: int, rts: int, version: int,
               installed: bool) -> None:
        """Complete the waiters a lease ``[wts, rts]`` now covers.

        Waiters whose ``warp_ts`` lies beyond ``rts`` stay parked and a
        single renewal request (carrying the largest straggler
        timestamp) is sent on their behalf — Figure 11's resolution.
        """
        # mshr.drain(addr, keep=...) open-coded: the keep-predicate form
        # costs a lambda call per waiter, and the straggler check below
        # can reuse the entry instead of a second lookup.  Stragglers
        # (warp.ts beyond the lease) are rare, so scan for one first and
        # only split the waiter list when needed.
        mshr = self.mshr
        entry = mshr.get(addr)
        done: list = []
        stragglers = None
        if entry is not None:
            waiters = entry.waiters
            for w in waiters:
                if w.warp.ts > rts:
                    done = [w for w in waiters if w.warp.ts <= rts]
                    stragglers = [w for w in waiters if w.warp.ts > rts]
                    entry.waiters = stragglers
                    break
            else:
                done = waiters
                entry.waiters = []
                mshr.release(addr)
        audit = self.audit
        engine = self.engine
        now = engine.now
        for waiter in done:
            waiter.warp.ts = max(waiter.warp.ts, wts)
            if audit is not None:
                audit.record(self.engine.now, "l1_load", self.track,
                             addr, wts, rts, waiter.warp.ts,
                             self.epoch, waiter.warp.uid)
            self._record_load(waiter.warp, addr, version,
                              waiter.issue_cycle, hit=False)
            engine.post(now, waiter.on_done)
        if stragglers:
            top_ts = max(w.warp.ts for w in stragglers)
            if installed:
                self._counters["l1_renewals"] += 1
                if self.trace is not None:
                    self.trace.instant(self.engine.now, self.track,
                                       "renew_request",
                                       {"addr": addr, "top_ts": top_ts})
                self._send(BusRd(addr, self.sm_id, wts, top_ts, self.epoch))
            else:
                self._send(BusRd(addr, self.sm_id, 0, top_ts, self.epoch))

    def _refetch(self, addr: int) -> None:
        """Re-issue a full read for whatever is still parked on ``addr``."""
        entry = self.mshr.get(addr)
        if entry is None or not entry.waiters:
            return
        top_ts = max(w.warp.ts for w in entry.waiters)
        self._send(BusRd(addr, self.sm_id, 0, top_ts, self.epoch))

    # ------------------------------------------------------------------
    # epoch reset / flush
    # ------------------------------------------------------------------
    def _epoch_reset(self, new_epoch: int) -> None:
        """A response revealed a timestamp overflow reset (Section V-D)."""
        self.epoch = new_epoch
        self.cache.flush()
        for warp in self._warps:
            warp.ts = 1
            warp.epoch = new_epoch
        if self.audit is not None:
            self.audit.record(self.engine.now, "l1_epoch_reset",
                              self.track, 0, 1, 1, 1, new_epoch)
        if self.trace is not None:
            self.trace.instant(self.engine.now, self.track,
                               "epoch_reset", {"epoch": new_epoch})

    def flush(self) -> None:
        """Kernel boundary: drop all lines and reset warp clocks."""
        self.cache.flush()
        for warp in self._warps:
            warp.ts = 1

    # ------------------------------------------------------------------
    # record keeping
    # ------------------------------------------------------------------
    def _record_load(self, warp: "Warp", addr: int, version: int,
                     issue_cycle: int, hit: bool) -> None:
        now = self.engine.now
        hist = self._load_hist
        if hist is None:
            hist = self._load_hist = self.stats.hist.get("load_latency")
        hist.add(now - issue_cycle)
        log = self.machine.log
        if log.enabled:    # don't even build the record when disabled
            log.loads.append(LoadRecord(
                warp_uid=warp.uid,
                addr=addr,
                version=version,
                logical_ts=warp.ts,
                epoch=self.epoch,
                issue_cycle=issue_cycle,
                complete_cycle=now,
                l1_hit=hit,
            ))
