"""G-TSC message formats (Table I of the paper).

Each message carries exactly the fields Table I lists; sizes are a
header plus 16-bit timestamps plus, for data-bearing messages, one
cache line.  The renewal response (``BusRnw``) carrying *no data* is
one of G-TSC's traffic advantages over TC, so sizing is faithful.

Sizing invariant: every message's :meth:`payload_bytes` here depends
only on its *class* and the config — never on per-instance fields —
so :class:`repro.gpu.machine.Machine` computes the on-wire size once
per class and caches it for the rest of the run.  A message class
whose payload *does* vary per instance must set ``uniform_size =
False`` (see ``repro.protocols.base.Message``).
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import Message


class BusRd(Message):
    """Read / renewal request from L1 to L2.

    ``wts`` is 0 when the L1 missed outright and the stale copy's write
    timestamp when the tag matched but the lease had expired — the L2
    uses the match to decide between a renewal and a full fill.
    """

    kind = "ctrl"
    __slots__ = ("wts", "warp_ts", "epoch")

    def __init__(self, addr: int, sm: int, wts: int, warp_ts: int,
                 epoch: int) -> None:
        self.addr = addr
        self.sm = sm
        self.wts = wts
        self.warp_ts = warp_ts
        self.epoch = epoch

    def payload_bytes(self, config) -> int:
        # wts + warp_ts (Table I row "Read/Renewal Requests")
        return 2 * config.timestamp_bytes


class BusWr(Message):
    """Write request from L1 to L2 (write-through, data-bearing)."""

    kind = "data"
    __slots__ = ("warp_ts", "version", "epoch")

    def __init__(self, addr: int, sm: int, warp_ts: int, version: int,
                 epoch: int) -> None:
        self.addr = addr
        self.sm = sm
        self.warp_ts = warp_ts
        self.version = version
        self.epoch = epoch

    def payload_bytes(self, config) -> int:
        # warp_ts + data (Table I row "Write Request")
        return config.timestamp_bytes + config.line_size


class BusFill(Message):
    """Fill response from L2: new data plus its lease."""

    kind = "data"
    __slots__ = ("wts", "rts", "version", "epoch", "reset")

    def __init__(self, addr: int, sm: int, wts: int, rts: int,
                 version: int, epoch: int, reset: bool = False) -> None:
        self.addr = addr
        self.sm = sm
        self.wts = wts
        self.rts = rts
        self.version = version
        self.epoch = epoch
        self.reset = reset

    def payload_bytes(self, config) -> int:
        # rts + wts + data (Table I row "Fill Response")
        return 2 * config.timestamp_bytes + config.line_size


class BusRnw(Message):
    """Renewal response from L2: an extended lease, *no data*."""

    kind = "ctrl"
    __slots__ = ("rts", "epoch")

    def __init__(self, addr: int, sm: int, rts: int, epoch: int) -> None:
        self.addr = addr
        self.sm = sm
        self.rts = rts
        self.epoch = epoch

    def payload_bytes(self, config) -> int:
        # rts only (Table I row "Renewal Response")
        return config.timestamp_bytes


class BusWrAck(Message):
    """Write acknowledgment from L2 with the store's assigned lease.

    ``version`` names the store being acknowledged so the L1 can match
    the ack to the right pending entry even when the L2's retry path
    reordered same-line requests; it models the request tag real
    hardware echoes and adds no payload bytes.
    """

    kind = "ctrl"
    __slots__ = ("wts", "rts", "epoch", "version")

    def __init__(self, addr: int, sm: int, wts: int, rts: int,
                 epoch: int, version: Optional[int] = None) -> None:
        self.addr = addr
        self.sm = sm
        self.wts = wts
        self.rts = rts
        self.epoch = epoch
        self.version = version

    def payload_bytes(self, config) -> int:
        # rts + wts (Table I row "Write Acknowledgment")
        return 2 * config.timestamp_bytes


class BusInv(Message):
    """Back-invalidation (only used by the inclusive-L2 ablation)."""

    kind = "ctrl"
    __slots__ = ()

    def payload_bytes(self, config) -> int:
        return 0


class BusAtm(Message):
    """Atomic RMW request: performed at the L2 like a store, but the
    old value is returned to the warp (extension beyond the paper's
    load/store protocol, following its write path)."""

    kind = "data"
    __slots__ = ("warp_ts", "version", "epoch")

    def __init__(self, addr: int, sm: int, warp_ts: int, version: int,
                 epoch: int) -> None:
        self.addr = addr
        self.sm = sm
        self.warp_ts = warp_ts
        self.version = version
        self.epoch = epoch

    def payload_bytes(self, config) -> int:
        # warp_ts + the operand word (atomics are sub-line)
        return config.timestamp_bytes + 8


class BusAtmAck(Message):
    """Atomic response: the assigned lease plus the old value.

    Like :class:`BusWrAck`, ``version`` echoes the RMW's own new
    version so the ack pairs with the right pending atomic.
    """

    kind = "ctrl"
    __slots__ = ("wts", "rts", "old_version", "epoch", "version")

    def __init__(self, addr: int, sm: int, wts: int, rts: int,
                 old_version: int, epoch: int,
                 version: Optional[int] = None) -> None:
        self.addr = addr
        self.sm = sm
        self.wts = wts
        self.rts = rts
        self.old_version = old_version
        self.epoch = epoch
        self.version = version

    def payload_bytes(self, config) -> int:
        # rts + wts + the returned old word
        return 2 * config.timestamp_bytes + 8
