"""G-TSC — the paper's contribution.

Timestamp-ordering cache coherence for GPUs (Sections III-V of the
paper): logical write/read timestamps on every cache line, per-warp
logical clocks, lease renewal without data movement, stall-free writes
that are logically scheduled in the future, non-inclusive L2 via the
``mem_ts`` summary timestamp, and 16-bit timestamp overflow handling.
"""

from repro.core.messages import BusFill, BusRd, BusRnw, BusWr, BusWrAck
from repro.core.timestamps import TimestampDomain
from repro.core.l1 import GTSCL1Controller
from repro.core.l2 import GTSCL2Bank

__all__ = [
    "BusFill",
    "BusRd",
    "BusRnw",
    "BusWr",
    "BusWrAck",
    "TimestampDomain",
    "GTSCL1Controller",
    "GTSCL2Bank",
]
