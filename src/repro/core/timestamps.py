"""The logical-time domain shared by all G-TSC L2 banks.

Timestamps are 16-bit logical counters (Section V-D).  When any bank
would assign a timestamp past ``ts_max``, the domain performs a global
reset: every bank rewrites its blocks to ``wts = 1``,
``rts = lease`` and ``mem_ts = 1``, and the domain's *epoch* is
bumped.  Responses carry the epoch; an L1 that sees a newer epoch
flushes itself and resets its warp timestamps, exactly the reset
protocol the paper describes (L2 keeps its data — only timestamps are
rewritten — while L1s flush).
"""

from __future__ import annotations

from typing import Callable, List


class TimestampDomain:
    """Global logical-time bookkeeping for one GPU."""

    def __init__(self, ts_max: int, lease: int, stats=None) -> None:
        if ts_max < 2 * lease:
            raise ValueError("ts_max must comfortably exceed the lease")
        self.ts_max = ts_max
        self.lease = lease
        self.stats = stats
        self.epoch = 0
        self._reset_listeners: List[Callable[[], None]] = []
        self._resetting = False

    def on_reset(self, listener: Callable[[], None]) -> None:
        """Register a bank callback invoked on every overflow reset."""
        self._reset_listeners.append(listener)

    def would_overflow(self, ts: int) -> bool:
        """True when assigning ``ts`` requires a reset first."""
        return ts > self.ts_max

    def overflow_reset(self) -> None:
        """Rewrite all timestamps in the machine and bump the epoch.

        L2 banks registered via :meth:`on_reset` rewrite their arrays;
        L1s learn about the reset lazily, from the epoch carried in the
        next response they receive.
        """
        if self.stats is not None:
            self.stats.add("ts_overflows")
        self._reset()

    def kernel_reset(self) -> None:
        """The kernel-boundary reset of Section V-D.

        The paper flushes L1s and resets all timestamps after each
        kernel; the L2 keeps its data, only the logical clocks rewind.
        """
        if self.stats is not None:
            self.stats.add("kernel_ts_resets")
        self._reset()

    def _reset(self) -> None:
        # One domain may serve many L2 banks across many GPUs (the
        # multi-GPU cluster registers every bank plus the shared home
        # directory).  A listener that re-entered the reset would bump
        # the epoch mid-iteration, leaving banks rewritten against
        # different epochs — fail loudly instead.  The snapshot makes
        # a listener registering further listeners safe: they join
        # from the next reset on.
        if self._resetting:
            raise RuntimeError(
                "re-entrant timestamp reset: a reset listener "
                "attempted another domain reset"
            )
        self._resetting = True
        try:
            self.epoch += 1
            for listener in tuple(self._reset_listeners):
                listener()
        finally:
            self._resetting = False

    def clamp(self, ts: int) -> int:
        """Assign ``ts`` if it fits; otherwise reset and signal retry.

        Returns ``ts`` unchanged when no overflow occurs.  On overflow
        the reset is performed and -1 is returned; the caller must
        recompute from the (now reset) machine state.
        """
        if not self.would_overflow(ts):
            return ts
        self.overflow_reset()
        return -1
