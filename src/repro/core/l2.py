"""G-TSC shared (L2) cache bank — Figures 1b, 4, 5, 6.

The defining property implemented here is that *writes never stall*:
a store is logically scheduled after every outstanding lease by
assigning it ``wts = max(rts + 1, warp_ts)`` (Fig. 5), so — unlike
TC — there is no waiting for physical lease expiry, no inclusive-L2
requirement, and no delayed eviction.  Evictions fold the victim's
``rts`` into the bank's single ``mem_ts`` (Fig. 6), which is all the
state needed to stay correct without per-block lease tracking in
memory (Section V-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.messages import (
    BusAtm,
    BusAtmAck,
    BusFill,
    BusInv,
    BusRd,
    BusRnw,
    BusWr,
    BusWrAck,
)
from repro.config import LeasePolicy
from repro.core.timestamps import TimestampDomain
from repro.mem.cache import CacheLine
from repro.protocols.base import L2BankBase, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine


class GTSCL2Bank(L2BankBase):
    """One bank of the shared cache under G-TSC."""

    __slots__ = ("domain", "mem_ts", "_handlers", "_fixed_lease",
                 "_lease", "_ts_max")

    def __init__(self, bank_id: int, machine: "Machine",
                 domain: TimestampDomain) -> None:
        super().__init__(bank_id, machine)
        self.domain = domain
        self.mem_ts = 1
        # request dispatch by concrete class (same idiom as the L1)
        self._handlers = {
            BusRd: self._read,
            BusWr: self._write,
            BusAtm: self._atomic,
        }
        # under the paper's fixed policy the lease grant is a constant;
        # precompute it so _read skips the _lease_for call
        self._fixed_lease = (
            machine.config.lease
            if machine.config.lease_policy is LeasePolicy.FIXED else None)
        self._lease = machine.config.lease
        self._ts_max = domain.ts_max
        domain.on_reset(self._timestamp_reset)

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _process(self, msg: Message) -> None:
        handler = self._handlers.get(type(msg))
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at G-TSC L2: {msg!r}")
        handler(msg)

    # ------------------------------------------------------------------
    # reads: renewal vs fill (Figure 4)
    # ------------------------------------------------------------------
    def _lease_for(self, line: CacheLine) -> int:
        """The logical lease this grant extends the line by.

        Fixed policy: the configured constant (the paper's design).
        Adaptive policy (Tardis-2.0-inspired extension): each renewal
        of an unmodified line doubles the grant, capped at
        ``lease * lease_max_factor`` — hot read-mostly lines stop
        paying renewal round trips.
        """
        base = self.config.lease
        if self.config.lease_policy is LeasePolicy.FIXED:
            return base
        factor = min(1 << min(line.renewals, 10),
                     self.config.lease_max_factor)
        return base * factor

    def _read(self, msg: BusRd) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1

        fresh_request = msg.epoch == self.domain.epoch
        renewal = fresh_request and msg.wts == line.wts
        if renewal:
            line.renewals += 1
        warp_ts = msg.warp_ts if fresh_request else 1
        lease = self._fixed_lease
        if lease is None:
            lease = self._lease_for(line)
        granted = warp_ts + lease
        desired = granted if granted > line.rts else line.rts
        if desired > self._ts_max:
            # overflow reset fired: recompute against the reset line;
            # the requester's epoch is now stale, forcing a fill
            self.domain.overflow_reset()
            line = self.cache.lookup(msg.addr)
            fresh_request = False
            renewal = False
            warp_ts = 1
            desired = max(line.rts, 1 + self.config.lease)
        line.rts = desired
        self.cache.rts_col[self.cache._where[msg.addr]] = desired

        if self.audit is not None:
            self.audit.record(self.engine.now,
                              "renew" if renewal else "read",
                              self.track, msg.addr, line.wts, line.rts,
                              warp_ts, self.domain.epoch)
        if renewal:
            # requester already holds this exact version: extend the
            # lease without resending the data (a G-TSC traffic win)
            self._counters["l2_renewals"] += 1
            if self.trace is not None:
                self.trace.instant(self.engine.now, self.track, "renew",
                                   {"addr": msg.addr, "rts": line.rts})
            self._reply(msg.sm, BusRnw(msg.addr, msg.sm, line.rts,
                                       self.domain.epoch))
        else:
            self._reply(msg.sm, BusFill(msg.addr, msg.sm, line.wts,
                                        line.rts, line.version,
                                        self.domain.epoch))

    # ------------------------------------------------------------------
    # writes: logically scheduled in the future, never stalled (Fig. 5)
    # ------------------------------------------------------------------
    def _write(self, msg: BusWr) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            # both loads and stores fetch the line from DRAM on a miss
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1

        lease = self._lease
        warp_ts = msg.warp_ts if msg.epoch == self.domain.epoch else 1
        wts = max(line.rts + 1, warp_ts)
        if wts + lease > self._ts_max:
            self.domain.overflow_reset()
            line = self.cache.lookup(msg.addr)
            warp_ts = 1  # requester's clock is from the retired epoch
            wts = max(line.rts + 1, 1)
        line.wts = wts
        line.rts = wts + lease
        line.version = msg.version
        line.dirty = True
        line.renewals = 0  # a write ends the line's read-only streak
        cache = self.cache
        slot = cache._where[msg.addr]
        cache.wts_col[slot] = wts
        cache.rts_col[slot] = line.rts
        cache.version_col[slot] = msg.version
        self.machine.versions.record_wts(msg.addr, msg.version, wts,
                                         self.domain.epoch)
        if self.audit is not None:
            self.audit.record(self.engine.now, "write", self.track,
                              msg.addr, line.wts, line.rts, warp_ts,
                              self.domain.epoch)
        self._reply(msg.sm, BusWrAck(msg.addr, msg.sm, line.wts, line.rts,
                                     self.domain.epoch,
                                     version=msg.version))

    # ------------------------------------------------------------------
    # atomics: the write path plus the old value (protocol extension)
    # ------------------------------------------------------------------
    def _atomic(self, msg: BusAtm) -> None:
        """Read-modify-write, serialized by the bank like any store.

        Timestamp assignment is identical to Figure 5 — the write is
        logically scheduled after every outstanding lease — and the
        read half observes the line's previous version, which is
        atomic by construction because the bank performs both halves
        in one step.  No stalls, exactly like G-TSC stores.
        """
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        self._counters["l2_atomics"] += 1

        lease = self._lease
        old_version = line.version
        warp_ts = msg.warp_ts if msg.epoch == self.domain.epoch else 1
        wts = max(line.rts + 1, warp_ts)
        if wts + lease > self._ts_max:
            self.domain.overflow_reset()
            line = self.cache.lookup(msg.addr)
            old_version = line.version
            warp_ts = 1
            wts = max(line.rts + 1, 1)
        line.wts = wts
        line.rts = wts + lease
        line.version = msg.version
        line.dirty = True
        line.renewals = 0
        cache = self.cache
        slot = cache._where[msg.addr]
        cache.wts_col[slot] = wts
        cache.rts_col[slot] = line.rts
        cache.version_col[slot] = msg.version
        self.machine.versions.record_wts(msg.addr, msg.version, wts,
                                         self.domain.epoch)
        if self.audit is not None:
            self.audit.record(self.engine.now, "atomic", self.track,
                              msg.addr, line.wts, line.rts, warp_ts,
                              self.domain.epoch)
        self._reply(msg.sm, BusAtmAck(msg.addr, msg.sm, line.wts,
                                      line.rts, old_version,
                                      self.domain.epoch,
                                      version=msg.version))

    # ------------------------------------------------------------------
    # DRAM fill and eviction (Figure 6)
    # ------------------------------------------------------------------
    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        line, evicted = self.cache.allocate(addr,
                                            evictable=self._evictable)
        if line is None:  # pragma: no cover - non-inclusive never pins
            return None
        if evicted is not None:
            self._evict(evicted)
        if self.domain.clamp(self.mem_ts + self.config.lease) < 0:
            # overflow on refill: mem_ts was reset to 1 by the handler
            pass
        line.wts = self.mem_ts
        line.rts = self.mem_ts + self.config.lease
        line.version = self._memory_version(addr)
        line.dirty = False
        line.epoch = self.domain.epoch
        cache = self.cache
        slot = cache._where[addr]
        cache.wts_col[slot] = line.wts
        cache.rts_col[slot] = line.rts
        cache.version_col[slot] = line.version
        if self.audit is not None:
            self.audit.record(self.engine.now, "fill", self.track,
                              addr, line.wts, line.rts, 0,
                              self.domain.epoch)
        return line

    def _evictable(self, line: CacheLine) -> bool:
        """Non-inclusive L2: every line may be evicted, always.

        This is the Section V-C contrast with TC, whose inclusive L2
        must refuse to evict lines with unexpired leases.
        """
        return True

    def _evict(self, evicted: CacheLine) -> None:
        """Fold the victim's lease into ``mem_ts`` and write back."""
        self._counters["l2_evictions"] += 1
        if self.audit is not None:
            self.audit.record(self.engine.now, "evict", self.track,
                              evicted.addr, evicted.wts, evicted.rts,
                              0, self.domain.epoch)
        self.mem_ts = max(self.mem_ts, evicted.rts)
        self._writeback(evicted)
        if self.config.l2_inclusive:
            # ablation only: classic inclusive back-invalidation with
            # its recall traffic (G-TSC does not need this)
            for sm_id in range(self.config.num_sms):
                self._reply(sm_id, BusInv(evicted.addr, sm_id))

    # ------------------------------------------------------------------
    # timestamp overflow (Section V-D)
    # ------------------------------------------------------------------
    def _timestamp_reset(self) -> None:
        """Rewrite every timestamp in this bank; data stays in place."""
        cache = self.cache
        lease = self.config.lease
        epoch = self.domain.epoch
        lines = cache._lines
        wts_col = cache.wts_col
        rts_col = cache.rts_col
        for slot, tag in enumerate(cache._tags):
            if tag != -1:
                line = lines[slot]
                line.wts = 1
                line.rts = lease
                line.epoch = epoch
                wts_col[slot] = 1
                rts_col[slot] = lease
        self.mem_ts = 1
        if self.audit is not None:
            self.audit.record(self.engine.now, "ts_reset", self.track,
                              0, 1, self.config.lease, 0,
                              self.domain.epoch)
        if self.trace is not None:
            self.trace.instant(self.engine.now, self.track, "ts_reset",
                               {"epoch": self.domain.epoch})
