"""Warp state.

A warp executes its trace in program order.  Loads block the warp
until data returns (the next instruction is presumed dependent — GPUs
hide latency across warps, not within one).  Stores block only under
SC; under RC they are tracked as outstanding and drained by fences.
"""

from __future__ import annotations

from typing import List, Optional

from repro.trace.instr import FENCE, Instr


class Warp:
    """One warp's architectural and scheduling state."""

    __slots__ = (
        "uid", "cta_id", "trace", "pc",
        "ts", "epoch", "gwct",
        "outstanding_loads", "outstanding_stores",
        "pending_addrs", "pending_op", "retry_at",
        "ready_at", "done", "barrier_blocked",
        "fence_wait_start",
    )

    def __init__(self, uid: int, trace: List[Instr],
                 cta_id: int = -1) -> None:
        self.uid = uid
        # CTA membership; -1 means the warp is its own CTA
        self.cta_id = cta_id if cta_id >= 0 else uid
        self.trace = trace
        self.pc = 0
        # logical clock (G-TSC); all warp timestamps start at 1
        self.ts = 1
        self.epoch = 0
        # Global Write Completion Time (TC-Weak)
        self.gwct = 0
        self.outstanding_loads = 0
        self.outstanding_stores = 0
        # line addresses of the current memory instruction not yet
        # accepted by the L1 (MSHR back-pressure)
        self.pending_addrs: Optional[List[int]] = None
        self.pending_op: Optional[str] = None
        self.retry_at = 0
        # compute-blocked until this cycle
        self.ready_at = 0
        self.done = False
        # waiting at an intra-CTA barrier for the rest of the CTA
        self.barrier_blocked = False
        # cycle at which this warp started waiting at a fence (stats)
        self.fence_wait_start: Optional[int] = None

    @property
    def finished_trace(self) -> bool:
        return self.pc >= len(self.trace)

    def next_instr(self) -> Optional[Instr]:
        if self.finished_trace:
            return None
        return self.trace[self.pc]

    def at_fence(self) -> bool:
        instr = self.next_instr()
        return instr is not None and instr.op == FENCE

    def drained(self) -> bool:
        """No outstanding memory operations of any kind."""
        return (self.outstanding_loads == 0
                and self.outstanding_stores == 0
                and self.pending_addrs is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<warp {self.uid} pc={self.pc}/{len(self.trace)} ts={self.ts} "
            f"ldo={self.outstanding_loads} sto={self.outstanding_stores}>"
        )
