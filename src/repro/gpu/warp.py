"""Warp state.

A warp executes its trace in program order.  Loads block the warp
until data returns (the next instruction is presumed dependent — GPUs
hide latency across warps, not within one).  Stores block only under
SC; under RC they are tracked as outstanding and drained by fences.

The trace is held in compiled form (see :mod:`repro.trace.compiled`):
``ops``/``args`` are the packed per-instruction lists the SM hot path
indexes directly.  A plain list of :class:`Instr` is accepted and
compiled on the spot, so hand-built unit-test warps keep working.

Two pieces of scheduler plumbing also live here because they are
per-warp state:

* ``load_cb`` / ``store_cb`` — the warp's preallocated memory
  completion callbacks, bound once when the SM takes ownership
  (:meth:`bind`).  The L1/L2/NoC completion path carries these exact
  objects, so issuing a memory access allocates no closure.
* ``slot`` — this warp's index into the owning SM's ``active`` list
  and its parallel ``_cls`` classification cache (packed int: state
  in the low 3 bits, wake time + 1 in the rest; -1 = dirty).  Any
  mutation of schedule-relevant state must mark the entry dirty with
  ``sm._cls[warp.slot] = -1``; completion callbacks and the SM's
  issue path do.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.trace.compiled import (
    OP_FENCE,
    CompiledTrace,
    compile_trace,
)
from repro.trace.instr import Instr


class Warp:
    """One warp's architectural and scheduling state."""

    __slots__ = (
        "uid", "cta_id", "trace", "ops", "args", "length", "pc",
        "ts", "epoch", "gwct",
        "outstanding_loads", "outstanding_stores",
        "pending_addrs", "pending_op", "retry_at",
        "ready_at", "done", "barrier_blocked",
        "fence_wait_start",
        "sm", "load_cb", "store_cb", "slot",
    )

    def __init__(self, uid: int,
                 trace: Union[CompiledTrace, List[Instr]],
                 cta_id: int = -1) -> None:
        self.uid = uid
        # CTA membership; -1 means the warp is its own CTA
        self.cta_id = cta_id if cta_id >= 0 else uid
        if not isinstance(trace, CompiledTrace):
            trace = compile_trace(trace)
        self.trace = trace
        self.ops = trace.ops
        self.args = trace.args
        self.length = trace.length
        self.pc = 0
        # logical clock (G-TSC); all warp timestamps start at 1
        self.ts = 1
        self.epoch = 0
        # Global Write Completion Time (TC-Weak)
        self.gwct = 0
        self.outstanding_loads = 0
        self.outstanding_stores = 0
        # line addresses of the current memory instruction not yet
        # accepted by the L1 (MSHR back-pressure)
        self.pending_addrs: Optional[List[int]] = None
        self.pending_op: Optional[int] = None
        self.retry_at = 0
        # compute-blocked until this cycle
        self.ready_at = 0
        self.done = False
        # waiting at an intra-CTA barrier for the rest of the CTA
        self.barrier_blocked = False
        # cycle at which this warp started waiting at a fence (stats)
        self.fence_wait_start: Optional[int] = None
        # owning SM and prebound completion callbacks (see bind)
        self.sm = None
        self.load_cb = None
        self.store_cb = None
        # index into the owning SM's active/_cls lists (set on
        # activation; the _cls entry starts dirty)
        self.slot = -1

    def bind(self, sm) -> None:
        """Attach to the owning SM and prebind completion callbacks."""
        self.sm = sm
        self.load_cb = self._load_done
        self.store_cb = self._store_done

    # The completion callbacks inline SM.notify(self): these fire once
    # per memory access in every run, and the extra frame showed up in
    # profiles.  Keep in sync with SM.notify / SM._check_retire.
    def _load_done(self) -> None:
        self.outstanding_loads -= 1
        sm = self.sm
        sm._cls[self.slot] = -1
        sm._cand |= 1 << self.slot
        if self.pc >= self.length:
            sm._check_retire(self)
        if sm.active:
            engine = sm.engine
            now = engine.now
            event = sm._issue_event
            if event is not None and event[2] is not None:
                if event[0] <= now:
                    return
                engine.cancel(event)
            sm._issue_event = engine.post(now, sm._issue)

    def _store_done(self) -> None:
        self.outstanding_stores -= 1
        sm = self.sm
        sm._cls[self.slot] = -1
        sm._cand |= 1 << self.slot
        if self.pc >= self.length:
            sm._check_retire(self)
        if sm.active:
            engine = sm.engine
            now = engine.now
            event = sm._issue_event
            if event is not None and event[2] is not None:
                if event[0] <= now:
                    return
                engine.cancel(event)
            sm._issue_event = engine.post(now, sm._issue)

    @property
    def finished_trace(self) -> bool:
        return self.pc >= self.length

    def next_instr(self) -> Optional[Instr]:
        """The next instruction at authoring level (tests/debugging —
        the SM reads ``ops``/``args`` directly)."""
        if self.pc >= self.length:
            return None
        return self.trace.instr_at(self.pc)

    def at_fence(self) -> bool:
        return self.pc < self.length and self.ops[self.pc] == OP_FENCE

    def drained(self) -> bool:
        """No outstanding memory operations of any kind."""
        return (self.outstanding_loads == 0
                and self.outstanding_stores == 0
                and self.pending_addrs is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<warp {self.uid} pc={self.pc}/{self.length} ts={self.ts} "
            f"ldo={self.outstanding_loads} sto={self.outstanding_stores}>"
        )
