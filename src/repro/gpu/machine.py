"""The machine: every shared hardware structure wired together.

A :class:`Machine` owns the engine, the statistics, the NoC, the DRAM
partitions, and — once :func:`repro.protocols.build_protocol` has run —
the per-SM L1 controllers and per-bank L2 controllers.  It also routes
messages: requests go to the home bank of their line address, replies
to the requesting SM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config import GPUConfig, NocTopology
from repro.mem.dram import DRAMPartition
from repro.mem.noc import MeshNetwork, Network
from repro.sim.backend import backend_name, engine_class
from repro.stats.collector import StatsCollector
from repro.validate.versions import AccessLog, VersionStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.timestamps import TimestampDomain
    from repro.obs import Observability
    from repro.protocols.base import L1ControllerBase, L2BankBase, Message


class Machine:
    """Shared hardware context for one simulation."""

    def __init__(self, config: GPUConfig,
                 record_accesses: bool = True,
                 obs: Optional["Observability"] = None,
                 *,
                 engine=None, stats=None, versions=None, log=None,
                 gpu_id: int = 0, cluster=None) -> None:
        self.config = config
        # backend resolution happens per construction (flag, then
        # REPRO_BACKEND, then auto); both backends are bit-identical,
        # so the name is provenance for results rows, never a run key
        self.sim_backend = backend_name()
        # engine/stats/versions/log may be injected so that N machines
        # in a multi-GPU cluster share one event timeline and one
        # statistics namespace (repro.multigpu); single-GPU callers
        # never pass them and get private instances as before
        self.engine = engine if engine is not None else engine_class()()
        self.stats = stats if stats is not None else StatsCollector()
        self.versions = versions if versions is not None else VersionStore()
        self.log = log if log is not None else AccessLog(
            enabled=record_accesses)
        # multi-GPU identity: cluster is None for a standalone machine;
        # when set, controllers address SMs by the global uid
        # ``sm_uid_base + local_sm`` and route home misses off-GPU
        self.cluster = cluster
        self.gpu_id = gpu_id
        self.sm_uid_base = gpu_id * config.num_sms
        # audit-unit prefix: empty for single-GPU runs (bit-identity
        # with pre-multigpu logs), "g<i>:" inside a cluster
        self.unit_prefix = f"g{gpu_id}:" if cluster is not None else ""
        # line address -> version currently resident in DRAM
        self.memory_image: Dict[int, int] = {}
        if config.noc_topology is NocTopology.MESH:
            self.noc = MeshNetwork(
                self.engine, self.stats, config.mesh_hop_latency,
                config.mesh_link_bandwidth, config.num_sms,
                config.num_l2_banks)
        else:
            self.noc = Network(self.engine, self.stats,
                               config.noc_latency,
                               config.noc_port_bandwidth)
        self.drams: List[DRAMPartition] = [
            DRAMPartition(self.engine, self.stats, config.dram_latency,
                          config.dram_bandwidth, config.line_size,
                          name=f"dram{b}")
            for b in range(config.num_l2_banks)
        ]
        # populated by repro.protocols.build_protocol
        self.l1s: List["L1ControllerBase"] = []
        self.l2_banks: List["L2BankBase"] = []
        self.timestamp_domain: Optional["TimestampDomain"] = None
        # per-class on-wire message sizes: every concrete message's
        # size depends only on the config, so routing computes it once
        # per class instead of twice per message
        self._msg_sizes: Dict[type, int] = {}
        # endpoint tuples, preallocated: they key the NoC's port dicts
        # and every message send needs a src and dst pair
        self._sm_ports = [("sm", i) for i in range(config.num_sms)]
        self._bank_ports = [("l2", j) for j in range(config.num_l2_banks)]
        # observability bundle (None by default: zero-cost).  Attached
        # last so the hooks see the fully built NoC/DRAM models; the
        # controllers read machine.obs at their own construction.
        self.obs = obs
        if obs is not None:
            obs.attach(self)

    # -- message routing -------------------------------------------------------
    def _size_of(self, msg: "Message") -> int:
        cls = type(msg)
        size = self._msg_sizes.get(cls)
        if size is None:
            size = msg.size(self.config)
            if cls.uniform_size:
                self._msg_sizes[cls] = size
        return size

    def send_to_bank(self, sm_id: int, msg: "Message") -> None:
        """Route a request from SM ``sm_id`` to the line's home bank."""
        bank_id = msg.addr % self.config.num_l2_banks  # config.bank_of
        size = self._msg_sizes.get(type(msg))
        if size is None:
            size = self._size_of(msg)
        self.noc.send(self._sm_ports[sm_id], self._bank_ports[bank_id],
                      size, msg.kind, self.l2_banks[bank_id].receive, msg)

    def send_to_sm(self, bank_id: int, sm_id: int, msg: "Message") -> None:
        """Route a response from bank ``bank_id`` back to an SM."""
        size = self._msg_sizes.get(type(msg))
        if size is None:
            size = self._size_of(msg)
        self.noc.send(self._bank_ports[bank_id], self._sm_ports[sm_id],
                      size, msg.kind, self.l1s[sm_id].receive, msg)
