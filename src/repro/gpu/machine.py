"""The machine: every shared hardware structure wired together.

A :class:`Machine` owns the engine, the statistics, the NoC, the DRAM
partitions, and — once :func:`repro.protocols.build_protocol` has run —
the per-SM L1 controllers and per-bank L2 controllers.  It also routes
messages: requests go to the home bank of their line address, replies
to the requesting SM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config import GPUConfig, NocTopology
from repro.mem.dram import DRAMPartition
from repro.mem.noc import MeshNetwork, Network
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector
from repro.validate.versions import AccessLog, VersionStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.timestamps import TimestampDomain
    from repro.obs import Observability
    from repro.protocols.base import L1ControllerBase, L2BankBase, Message


class Machine:
    """Shared hardware context for one simulation."""

    def __init__(self, config: GPUConfig,
                 record_accesses: bool = True,
                 obs: Optional["Observability"] = None) -> None:
        self.config = config
        self.engine = Engine()
        self.stats = StatsCollector()
        self.versions = VersionStore()
        self.log = AccessLog(enabled=record_accesses)
        # line address -> version currently resident in DRAM
        self.memory_image: Dict[int, int] = {}
        if config.noc_topology is NocTopology.MESH:
            self.noc = MeshNetwork(
                self.engine, self.stats, config.mesh_hop_latency,
                config.mesh_link_bandwidth, config.num_sms,
                config.num_l2_banks)
        else:
            self.noc = Network(self.engine, self.stats,
                               config.noc_latency,
                               config.noc_port_bandwidth)
        self.drams: List[DRAMPartition] = [
            DRAMPartition(self.engine, self.stats, config.dram_latency,
                          config.dram_bandwidth, config.line_size,
                          name=f"dram{b}")
            for b in range(config.num_l2_banks)
        ]
        # populated by repro.protocols.build_protocol
        self.l1s: List["L1ControllerBase"] = []
        self.l2_banks: List["L2BankBase"] = []
        self.timestamp_domain: Optional["TimestampDomain"] = None
        # observability bundle (None by default: zero-cost).  Attached
        # last so the hooks see the fully built NoC/DRAM models; the
        # controllers read machine.obs at their own construction.
        self.obs = obs
        if obs is not None:
            obs.attach(self)

    # -- message routing -------------------------------------------------------
    def send_to_bank(self, sm_id: int, msg: "Message") -> None:
        """Route a request from SM ``sm_id`` to the line's home bank."""
        bank_id = self.config.bank_of(msg.addr)
        bank = self.l2_banks[bank_id]
        self.noc.send(("sm", sm_id), ("l2", bank_id),
                      msg.size(self.config), msg.kind,
                      lambda b=bank, m=msg: b.receive(m))

    def send_to_sm(self, bank_id: int, sm_id: int, msg: "Message") -> None:
        """Route a response from bank ``bank_id`` back to an SM."""
        l1 = self.l1s[sm_id]
        self.noc.send(("l2", bank_id), ("sm", sm_id),
                      msg.size(self.config), msg.kind,
                      lambda c=l1, m=msg: c.receive(m))
