"""Top-level simulator: build a machine, launch a kernel, collect stats."""

from __future__ import annotations

from typing import Optional

from repro.config import GPUConfig
from repro.energy.model import EnergyModel, EnergyParams
from repro.gpu.machine import Machine
from repro.gpu.sm import SM
from repro.gpu.warp import Warp
from repro.protocols.factory import build_protocol
from repro.stats.collector import RunStats
from repro.trace.compiled import CompiledKernel, compile_kernel
from repro.trace.instr import Kernel


class SimulationHang(RuntimeError):
    """The event heap drained with warps still outstanding.

    Raised with a diagnostic dump of every stuck warp — if this fires,
    a protocol lost a message or a completion callback.
    """


class GPU:
    """One simulated GPU.

    A ``GPU`` owns a fresh :class:`Machine` and its SMs; it can run one
    kernel (the paper's model: L1s are flushed and logical timestamps
    reset at every kernel boundary, Section V-D).  Use
    :func:`run_kernel` for the one-shot convenience path.
    """

    def __init__(self, config: GPUConfig,
                 record_accesses: bool = True,
                 energy_params: Optional[EnergyParams] = None,
                 obs=None) -> None:
        self.config = config
        self.obs = obs
        self.machine = Machine(config, record_accesses=record_accesses,
                               obs=obs)
        build_protocol(self.machine)
        self.sms = [
            SM(sm_id, self.machine, self.machine.l1s[sm_id])
            for sm_id in range(config.num_sms)
        ]
        self._energy = EnergyModel(config, energy_params or EnergyParams())
        self._warps_remaining = 0
        self._warp_uid_base = 0

    # -- kernel execution -------------------------------------------------------
    def run(self, kernel: Kernel,
            max_events: Optional[int] = None) -> RunStats:
        """Execute ``kernel`` to completion and return its statistics."""
        self._execute(kernel, max_events)
        return self.finish(kernel.name)

    def run_sequence(self, kernels: list,
                     max_events: Optional[int] = None) -> list:
        """Execute several kernels back to back on this GPU.

        Models the paper's kernel-boundary behaviour (Section V-D):
        after each kernel the L1s are flushed and all logical
        timestamps reset, while the L2 keeps its data.  Returns one
        :class:`RunStats` per kernel, with per-kernel cycle and
        counter deltas.
        """
        results = []
        for kernel in kernels:
            start_cycle = self.machine.engine.now
            before = self.machine.stats.snapshot()
            self._execute(kernel, max_events)
            self._kernel_boundary()
            after = self.machine.stats.snapshot()
            cycles = self.machine.engine.now - start_cycle
            delta = {name: after.get(name, 0) - before.get(name, 0)
                     for name in after
                     if after.get(name, 0) != before.get(name, 0)}
            delta["cycles"] = cycles
            results.append(RunStats(
                config_desc=f"{kernel.name} on {self.config.describe()}",
                cycles=cycles,
                counters=delta,
                energy=self._energy.compute(delta, cycles),
            ))
        return results

    def _execute(self, kernel: Kernel,
                 max_events: Optional[int]) -> None:
        # compile once at launch: the SMs only ever execute packed
        # traces (an already-compiled kernel is validated and reused)
        if isinstance(kernel, CompiledKernel):
            kernel.validate()
        else:
            kernel = compile_kernel(kernel)
        if kernel.cta_size > self.config.max_warps_per_sm:
            raise ValueError(
                f"kernel {kernel.name!r}: cta_size {kernel.cta_size} "
                f"exceeds {self.config.max_warps_per_sm} warps/SM"
            )
        self._warps_remaining = kernel.num_warps
        uid_base = self._warp_uid_base
        self._warp_uid_base += kernel.num_warps
        # whole CTAs land on one SM (barriers require it); CTAs are
        # distributed round-robin
        for index, trace in enumerate(kernel.traces):
            cta_index = index // kernel.cta_size
            warp = Warp(uid=uid_base + index, trace=trace,
                        cta_id=uid_base + cta_index)
            self.sms[cta_index % self.config.num_sms].add_warp(warp)
        for sm in self.sms:
            sm.on_warp_done = self._on_warp_done
            sm.start()

        self.machine.engine.run(max_events=max_events)

        if self._warps_remaining > 0:
            self._raise_hang(kernel)

    def _kernel_boundary(self) -> None:
        """Flush L1s and reset logical time between kernels (§V-D)."""
        for l1 in self.machine.l1s:
            l1.flush()
        domain = self.machine.timestamp_domain
        if domain is not None:
            domain.kernel_reset()
            for l1 in self.machine.l1s:
                # L1s are already flushed; adopt the new epoch eagerly
                l1.epoch = domain.epoch

    def _on_warp_done(self) -> None:
        self._warps_remaining -= 1

    def _raise_hang(self, kernel: Kernel) -> None:
        stuck = []
        for sm in self.sms:
            for warp in sm.active:
                stuck.append(
                    f"sm{sm.sm_id} warp{warp.uid} pc={warp.pc} "
                    f"ldo={warp.outstanding_loads} "
                    f"sto={warp.outstanding_stores} "
                    f"pending={warp.pending_addrs}"
                )
            if sm.queue:
                stuck.append(f"sm{sm.sm_id}: {len(sm.queue)} queued warps")
        raise SimulationHang(
            f"kernel {kernel.name!r}: {self._warps_remaining} warps never "
            f"finished at cycle {self.machine.engine.now}:\n"
            + "\n".join(stuck)
        )

    # -- wrap-up ------------------------------------------------------------------
    def finish(self, name: str) -> RunStats:
        """Kernel boundary: flush L1s and snapshot the statistics."""
        cycles = self.machine.engine.now
        for l1 in self.machine.l1s:
            l1.flush()
        # drain any flush-generated traffic (write-back protocols emit
        # PutM writebacks here) so the final memory state is complete;
        # the reported cycle count is the kernel completion time above
        self.machine.engine.run()
        stats = self.machine.stats
        stats.counters["cycles"] = cycles
        stats.counters["noc_latency_sum"] = self.machine.noc.total_latency
        counters = stats.snapshot()
        energy = self._energy.compute(counters, cycles)
        timeseries = {}
        if self.obs is not None and self.obs.metrics is not None:
            self.obs.metrics.finalize(cycles)
            timeseries = self.obs.metrics.to_dict()
        return RunStats(
            config_desc=f"{name} on {self.config.describe()}",
            cycles=cycles,
            counters=counters,
            energy=energy,
            histograms={name: stats.hist.get(name)
                        for name in stats.hist.names()},
            timeseries=timeseries,
        )


def make_gpu(config: GPUConfig,
             record_accesses: bool = True,
             energy_params: Optional[EnergyParams] = None,
             obs=None):
    """The simulator for ``config``: a plain :class:`GPU`, or a
    :class:`~repro.multigpu.machine.MultiGpuGPU` cluster when
    ``config.n_gpus > 1``.

    Both expose the same ``run`` / ``run_sequence`` / ``finish``
    surface and a ``.machine`` carrying the engine and statistics.
    ``n_gpus=1`` takes this exact single-GPU constructor — the
    multigpu package is imported lazily and only for real clusters —
    so single-GPU results stay bit-identical.
    """
    if config.n_gpus > 1:
        from repro.multigpu.machine import MultiGpuGPU
        return MultiGpuGPU(config, record_accesses=record_accesses,
                           energy_params=energy_params, obs=obs)
    return GPU(config, record_accesses=record_accesses,
               energy_params=energy_params, obs=obs)


def run_kernel(config: GPUConfig, kernel: Kernel,
               record_accesses: bool = True,
               max_events: Optional[int] = None) -> RunStats:
    """Build a GPU for ``config``, run ``kernel``, return its stats."""
    return make_gpu(config, record_accesses=record_accesses).run(
        kernel, max_events=max_events
    )
