"""The coalescing unit (Section II-A).

Accesses by the 32 threads of a warp are merged into the minimum
number of line-granular transactions before they reach the L1.  The
workload generators usually emit line addresses directly; this module
is the front end for traces expressed at *thread* granularity — it
turns per-thread byte addresses into the coalesced line set and
reports the coalescing degree, the metric GPU performance work uses to
characterise access regularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.trace.instr import Instr, load, store


@dataclass(frozen=True)
class CoalescingResult:
    """Outcome of coalescing one warp-wide access."""

    line_addrs: List[int]
    thread_count: int

    @property
    def transactions(self) -> int:
        return len(self.line_addrs)

    @property
    def degree(self) -> float:
        """Average threads served per transaction (32 is perfect for a
        full warp on one line; 1 is fully divergent)."""
        if not self.line_addrs:
            return 0.0
        return self.thread_count / len(self.line_addrs)


def coalesce(byte_addrs: Iterable[int], line_size: int) -> CoalescingResult:
    """Merge per-thread byte addresses into unique line addresses.

    The result preserves ascending line order (the order memory
    transactions are generated in real coalescers).
    """
    if line_size <= 0:
        raise ValueError("line size must be positive")
    addrs = list(byte_addrs)
    lines = sorted({addr // line_size for addr in addrs})
    return CoalescingResult(line_addrs=lines, thread_count=len(addrs))


def coalesced_load(byte_addrs: Sequence[int], line_size: int) -> Instr:
    """A warp load instruction from per-thread byte addresses."""
    result = coalesce(byte_addrs, line_size)
    if not result.line_addrs:
        raise ValueError("load needs at least one thread address")
    return load(*result.line_addrs)


def coalesced_store(byte_addrs: Sequence[int], line_size: int) -> Instr:
    """A warp store instruction from per-thread byte addresses."""
    result = coalesce(byte_addrs, line_size)
    if not result.line_addrs:
        raise ValueError("store needs at least one thread address")
    return store(*result.line_addrs)


def unit_stride_access(base: int, threads: int, element_size: int,
                       line_size: int) -> CoalescingResult:
    """The canonical regular pattern: thread *i* touches
    ``base + i * element_size``."""
    return coalesce(
        (base + i * element_size for i in range(threads)), line_size)


def strided_access(base: int, threads: int, stride: int,
                   line_size: int) -> CoalescingResult:
    """Thread *i* touches ``base + i * stride`` — large strides are
    the classic uncoalesced worst case (one transaction per thread)."""
    return coalesce((base + i * stride for i in range(threads)), line_size)
