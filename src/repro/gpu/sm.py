"""Streaming multiprocessor: warp scheduling and instruction issue.

Each SM issues at most one instruction per cycle from a ready warp
(loose round-robin).  The scheduler is event-driven: when no warp can
issue, the SM sleeps and is woken by memory completions or at the next
compute-ready time; the slept interval is charged to the Figure-13
stall counters, attributed to memory when any warp was waiting on a
memory operation at sleep time.

The consistency model lives here (Section II-B):

* **SC** — a warp may have at most one outstanding memory request:
  loads and stores both block until completion.
* **RC** — stores are fire-and-forget; only a FENCE waits for the
  warp's outstanding operations to drain (and, under TC-Weak, for the
  warp's GWCT to pass in physical time).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.config import Consistency, SchedulerPolicy
from repro.trace.instr import ATOMIC, BARRIER, COMPUTE, FENCE, LOAD, STORE
from repro.gpu.warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.protocols.base import L1ControllerBase

# warp classification results
_READY = 0
_BLOCKED_MEM = 1
_BLOCKED_COMPUTE = 2
_DONE = 3
_BLOCKED_SYNC = 4   # waiting at an intra-CTA barrier


class SM:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, machine: "Machine",
                 l1: "L1ControllerBase") -> None:
        self.sm_id = sm_id
        self.machine = machine
        self.config = machine.config
        self.engine = machine.engine
        self.stats = machine.stats
        self.l1 = l1
        self.sc = machine.config.consistency is Consistency.SC

        self.queue: Deque[Warp] = deque()   # warps waiting for a slot
        self.active: List[Warp] = []        # resident warps
        self.retired = 0
        self._rr = 0
        self._greedy = machine.config.scheduler is SchedulerPolicy.GTO
        self._last_warp: Optional[Warp] = None
        # CTA bookkeeping: resident members and barrier arrivals
        self._cta_members: dict = {}
        self._barrier_arrived: dict = {}
        self._issue_event = None
        self._sleep_start: Optional[int] = None
        self._sleep_mem = False
        self.on_warp_done = None            # set by the GPU
        obs = machine.obs
        self.trace = obs.tracer if obs is not None else None
        self.track = f"sm{sm_id}"

    # ------------------------------------------------------------------
    # warp lifecycle
    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        self.queue.append(warp)

    def start(self) -> None:
        self._activate()
        if self.active:
            self._schedule_issue(0)

    def _activate(self) -> None:
        """Bring queued warps on-SM, whole CTAs at a time.

        A CTA's warps are enqueued consecutively; a CTA activates only
        when the SM has room for all of it (barriers require every
        member resident).
        """
        while self.queue:
            cta_id = self.queue[0].cta_id
            block: List[Warp] = []
            while self.queue and self.queue[0].cta_id == cta_id:
                block.append(self.queue.popleft())
            if len(self.active) + len(block) \
                    <= self.config.max_warps_per_sm:
                self.active.extend(block)
                self._cta_members.setdefault(cta_id, []).extend(block)
            else:
                # not enough room: put the CTA back and stop
                self.queue.extendleft(reversed(block))
                break

    def _check_retire(self, warp: Warp) -> None:
        if warp.done or not (warp.finished_trace and warp.drained()):
            return
        if self.engine.now < warp.ready_at:
            # a trailing compute instruction is still executing
            self.engine.at(warp.ready_at, self._check_retire, warp)
            return
        warp.done = True
        self.retired += 1
        self.stats.add("warps_retired")
        self.active.remove(warp)
        members = self._cta_members.get(warp.cta_id)
        if members is not None:
            members.remove(warp)
            if not members:
                self._cta_members.pop(warp.cta_id, None)
                self._barrier_arrived.pop(warp.cta_id, None)
            else:
                # a retiring warp releases CTA-mates waiting on it
                self._maybe_release_barrier(warp.cta_id)
        self._activate()
        if self.active:
            # a queued warp may just have been activated
            self._schedule_issue(0)
        if self.on_warp_done is not None:
            self.on_warp_done()

    # ------------------------------------------------------------------
    # wake-up plumbing
    # ------------------------------------------------------------------
    def notify(self, warp: Optional[Warp] = None) -> None:
        """A memory operation completed; reschedule issue."""
        if warp is not None:
            self._check_retire(warp)
        if self.active:
            self._schedule_issue(0)

    def _schedule_issue(self, delay: int) -> None:
        target = self.engine.now + delay
        if self._issue_event is not None:
            if self._issue_event[0] <= target:    # [0] is the fire time
                return
            self.engine.cancel(self._issue_event)
        self._issue_event = self.engine.schedule(delay, self._issue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _classify(self, warp: Warp) -> tuple:
        """(state, wake_time) for one warp.  wake_time may be None."""
        now = self.engine.now
        if warp.done:
            return _DONE, None
        if warp.barrier_blocked:
            return _BLOCKED_SYNC, None
        if warp.pending_addrs is not None:
            # MSHR back-pressure: retry the rest of the instruction
            if now >= warp.retry_at:
                return _READY, None
            return _BLOCKED_MEM, warp.retry_at
        if warp.outstanding_loads > 0:
            return _BLOCKED_MEM, None
        instr = warp.next_instr()
        if instr is None:
            # trace finished; draining trailing stores
            if warp.outstanding_stores > 0:
                return _BLOCKED_MEM, None
            return _DONE, None
        if instr.op == BARRIER:
            # arrival requires the warp's memory to be drained (the
            # barrier doubles as a block-level fence)
            if warp.outstanding_stores > 0:
                return _BLOCKED_MEM, None
            return _READY, None
        if instr.op == FENCE:
            if warp.outstanding_stores > 0:
                if warp.fence_wait_start is None:
                    warp.fence_wait_start = now
                return _BLOCKED_MEM, None
            if now < warp.gwct:
                # TC-Weak: the fence waits for physical visibility
                if warp.fence_wait_start is None:
                    warp.fence_wait_start = now
                return _BLOCKED_MEM, warp.gwct
            return _READY, None
        if self.sc and warp.outstanding_stores > 0:
            return _BLOCKED_MEM, None
        if now < warp.ready_at:
            return _BLOCKED_COMPUTE, warp.ready_at
        return _READY, None

    def _issue(self) -> None:
        self._issue_event = None
        self._end_sleep()
        if not self.active:
            return
        chosen = self._pick_warp()
        if chosen is None:
            self._sleep()
            return
        self._last_warp = chosen
        self._issue_instr(chosen)
        if self.active:
            self._schedule_issue(1)

    def _pick_warp(self) -> Optional[Warp]:
        """Select the next warp to issue from, per the config policy."""
        count = len(self.active)
        if count == 0:
            return None
        if self._greedy:
            # greedy-then-oldest: stick with the current warp while it
            # can issue, else fall back to the oldest ready warp
            last = self._last_warp
            if last is not None and not last.done and \
                    last in self.active and \
                    self._classify(last)[0] is _READY:
                return last
            for warp in sorted(self.active, key=lambda w: w.uid):
                if self._classify(warp)[0] is _READY:
                    return warp
            return None
        for k in range(count):
            warp = self.active[(self._rr + k) % count]
            if self._classify(warp)[0] is _READY:
                self._rr = (self._rr + k + 1) % count
                return warp
        return None

    def _sleep(self) -> None:
        """No warp can issue: record why and arrange a wake-up."""
        wake: Optional[int] = None
        any_mem = False
        for warp in self.active:
            state, wake_time = self._classify(warp)
            if state is _BLOCKED_MEM:
                any_mem = True
            if wake_time is not None:
                wake = wake_time if wake is None else min(wake, wake_time)
        self._sleep_start = self.engine.now
        self._sleep_mem = any_mem
        if wake is not None:
            self._schedule_issue(wake - self.engine.now)
        # otherwise a completion callback will notify() us

    def _end_sleep(self) -> None:
        if self._sleep_start is None:
            return
        slept = self.engine.now - self._sleep_start
        start = self._sleep_start
        self._sleep_start = None
        if slept <= 0:
            return
        self.stats.add("stall_cycles", slept)
        if self._sleep_mem:
            self.stats.add("stall_mem_cycles", slept)
        if self.trace is not None:
            self.trace.complete(
                start, self.engine.now, self.track,
                "stall_mem" if self._sleep_mem else "stall")

    # ------------------------------------------------------------------
    # instruction issue
    # ------------------------------------------------------------------
    def _issue_instr(self, warp: Warp) -> None:
        if warp.pending_addrs is not None:
            self._issue_mem_accesses(warp)
            return
        instr = warp.next_instr()
        assert instr is not None
        self.stats.add("instructions")
        if instr.op == COMPUTE:
            warp.pc += 1
            warp.ready_at = self.engine.now + instr.cycles
        elif instr.op in (LOAD, STORE, ATOMIC):
            self.stats.add("mem_instructions")
            warp.pc += 1
            warp.pending_op = instr.op
            warp.pending_addrs = list(instr.addrs)
            self._issue_mem_accesses(warp)
        elif instr.op == FENCE:
            self.stats.add("fences")
            if warp.fence_wait_start is not None:
                self.stats.add("fence_wait_cycles",
                               self.engine.now - warp.fence_wait_start)
                warp.fence_wait_start = None
            warp.pc += 1
        elif instr.op == BARRIER:
            self.stats.add("barriers")
            warp.pc += 1
            self._arrive_at_barrier(warp)
        self._check_retire(warp)

    def _issue_mem_accesses(self, warp: Warp) -> None:
        assert warp.pending_addrs is not None
        op = warp.pending_op
        remaining: List[int] = []
        for index, addr in enumerate(warp.pending_addrs):
            if op == LOAD:
                accepted = self.l1.load(warp, addr,
                                        self._load_done(warp))
                if accepted:
                    warp.outstanding_loads += 1
            elif op == ATOMIC:
                # an atomic returns a value: it blocks the warp like a
                # load (tracked as an outstanding load)
                accepted = self.l1.atomic(warp, addr,
                                          self._load_done(warp))
                if accepted:
                    warp.outstanding_loads += 1
            else:
                accepted = self.l1.store(warp, addr,
                                         self._store_done(warp))
                if accepted:
                    warp.outstanding_stores += 1
            if not accepted:
                # structural hazard: park the rest and retry later
                remaining.extend(warp.pending_addrs[index:])
                break
        if remaining:
            warp.pending_addrs = remaining
            warp.retry_at = self.engine.now + self.config.mshr_retry_interval
            self._schedule_issue(self.config.mshr_retry_interval)
        else:
            warp.pending_addrs = None
            warp.pending_op = None

    # ------------------------------------------------------------------
    # intra-CTA barriers
    # ------------------------------------------------------------------
    def _arrive_at_barrier(self, warp: Warp) -> None:
        arrived = self._barrier_arrived.setdefault(warp.cta_id, set())
        arrived.add(warp.uid)
        warp.barrier_blocked = True
        self._maybe_release_barrier(warp.cta_id)

    def _maybe_release_barrier(self, cta_id: int) -> None:
        arrived = self._barrier_arrived.get(cta_id)
        if not arrived:
            return
        alive = [w for w in self._cta_members.get(cta_id, ())
                 if not w.done]
        waiting = {w.uid for w in alive}
        if waiting and waiting <= arrived:
            self._barrier_arrived[cta_id] = set()
            self.stats.add("barrier_releases")
            for member in alive:
                member.barrier_blocked = False
            self._schedule_issue(0)

    def _load_done(self, warp: Warp):
        def callback() -> None:
            warp.outstanding_loads -= 1
            self.notify(warp)
        return callback

    def _store_done(self, warp: Warp):
        def callback() -> None:
            warp.outstanding_stores -= 1
            self.notify(warp)
        return callback
