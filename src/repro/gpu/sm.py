"""Streaming multiprocessor: warp scheduling and instruction issue.

Each SM issues at most one instruction per cycle from a ready warp
(loose round-robin).  The scheduler is event-driven: when no warp can
issue, the SM sleeps and is woken by memory completions or at the next
compute-ready time; the slept interval is charged to the Figure-13
stall counters, attributed to memory when any warp was waiting on a
memory operation at sleep time.

The consistency model lives here (Section II-B):

* **SC** — a warp may have at most one outstanding memory request:
  loads and stores both block until completion.
* **RC** — stores are fire-and-forget; only a FENCE waits for the
  warp's outstanding operations to drain (and, under TC-Weak, for the
  warp's GWCT to pass in physical time).

Hot-path invariants (this is the single most-executed code in a run):

* Warps execute *compiled* traces (:mod:`repro.trace.compiled`):
  instruction dispatch is small-int comparison on ``warp.ops[pc]``,
  never a dataclass field or string compare.
* Memory issue allocates nothing per access — completions ride the
  warp's prebound ``load_cb``/``store_cb`` (see :meth:`Warp.bind`).
* ``active`` is uid-ordered by construction (warps arrive in uid
  order and removal preserves order), so the GTO oldest-first scan is
  a plain iteration, never a sort.
* Warp classification is cached in ``SM._cls``, a packed int list
  parallel to ``active`` (``warp.slot`` is the shared index; -1 marks
  a dirty entry whose schedule-relevant state was mutated).  The
  selection scan walks the int list with index arithmetic and touches
  a :class:`Warp` object only to reclassify a dirty/expired entry or
  to issue from the chosen one — the dirty-set discipline that keeps
  the scan from re-deriving every warp's state on every issue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

try:  # optional: vectorizes the candidate-mask rebuild
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None

from repro.config import Consistency, SchedulerPolicy
from repro.sim.backend import ready_mask_fn as backend_ready_mask
from repro.trace.compiled import (
    OP_ATOMIC,
    OP_BARRIER,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
)
from repro.gpu.warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.protocols.base import L1ControllerBase

# warp classification results (low 3 bits of the packed value; the
# remaining bits hold wake_time + 1, or 0 when there is no wake time)
_READY = 0
_BLOCKED_MEM = 1
_BLOCKED_COMPUTE = 2
_DONE = 3
_BLOCKED_SYNC = 4   # waiting at an intra-CTA barrier

# "no timed warp pending" sentinel for SM._min_wake (any real wake
# time is a cycle count far below this)
_NO_WAKE = 1 << 62


def ready_mask_loop(cls_values: List[int], now: int) -> int:
    """Reference per-slot loop for :func:`ready_mask` (and its tests).

    A slot is a *candidate* when its packed classification says the
    warp might issue at ``now``: dirty (-1), ready (0), or blocked
    with a wake time the clock has reached.
    """
    mask = 0
    bit = 1
    for cls in cls_values:
        if cls <= 0 or (cls >= 8 and now >= (cls >> 3) - 1):
            mask |= bit
        bit <<= 1
    return mask


def ready_mask(cls_values: List[int], now: int) -> int:
    """Candidate bitmask over a packed classification array.

    One vectorized compare over the packed ints when numpy is
    importable, the plain per-slot loop otherwise — both return the
    exact same mask (property-tested).  The SM calls this to rebuild
    its incremental candidate mask after warp arrival/retirement; the
    per-issue hot path maintains the mask incrementally instead.
    """
    if _np is not None:
        a = _np.asarray(cls_values, dtype=_np.int64)
        cond = (a <= 0) | ((a >= 8) & ((a >> 3) - 1 <= now))
        mask = 0
        for index in _np.nonzero(cond)[0]:
            mask |= 1 << int(index)
        return mask
    return ready_mask_loop(cls_values, now)


class SM:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, machine: "Machine",
                 l1: "L1ControllerBase") -> None:
        self.sm_id = sm_id
        self.machine = machine
        self.config = machine.config
        self.engine = machine.engine
        self.stats = machine.stats
        # raw counter mapping: the issue path increments it directly
        self._counters = machine.stats.counters
        self.l1 = l1
        self.sc = machine.config.consistency is Consistency.SC

        self.queue: Deque[Warp] = deque()   # warps waiting for a slot
        self.active: List[Warp] = []        # resident warps, uid-ordered
        # packed classification cache, parallel to `active`
        # (warp.slot indexes both; -1 = dirty, recompute on next scan)
        self._cls: List[int] = []
        # incremental scan state over _cls:
        #   _cand  — bitmask of candidate slots (dirty or known-ready);
        #            -1 = rebuild from _cls via ready_mask() at the
        #            next scan (set when slots are added or renumbered,
        #            since -1 absorbs the |= bit updates in between)
        #   _timed — bitmask of slots blocked with a wake time (may
        #            carry stale bits; the scan drops them lazily)
        #   _min_wake — lower bound on the earliest wake time among
        #            _timed slots; the scan only walks _timed once the
        #            clock reaches it
        self._cand = -1
        self._timed = 0
        self._min_wake = _NO_WAKE
        # backend-resolved rebuild scan (identical masks either way)
        self._ready_mask = backend_ready_mask()
        self.retired = 0
        self._rr = 0
        self._greedy = machine.config.scheduler is SchedulerPolicy.GTO
        self._last_warp: Optional[Warp] = None
        # CTA bookkeeping: resident members and barrier arrivals
        self._cta_members: dict = {}
        self._barrier_arrived: dict = {}
        self._issue_event = None
        self._sleep_start: Optional[int] = None
        self._sleep_mem = False
        self.on_warp_done = None            # set by the GPU
        obs = machine.obs
        self.trace = obs.tracer if obs is not None else None
        self.track = f"sm{sm_id}"

    # ------------------------------------------------------------------
    # warp lifecycle
    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        warp.bind(self)
        self.queue.append(warp)

    def start(self) -> None:
        self._activate()
        if self.active:
            self._schedule_issue(0)

    def _activate(self) -> None:
        """Bring queued warps on-SM, whole CTAs at a time.

        A CTA's warps are enqueued consecutively; a CTA activates only
        when the SM has room for all of it (barriers require every
        member resident).  Warps are enqueued in uid order, so
        ``active`` stays uid-sorted without ever sorting.
        """
        while self.queue:
            cta_id = self.queue[0].cta_id
            block: List[Warp] = []
            while self.queue and self.queue[0].cta_id == cta_id:
                block.append(self.queue.popleft())
            if len(self.active) + len(block) \
                    <= self.config.max_warps_per_sm:
                base = len(self.active)
                self.active.extend(block)
                self._cls.extend([-1] * len(block))
                self._cand = -1            # new slots: rebuild the mask
                for slot, member in enumerate(block, base):
                    member.slot = slot
                self._cta_members.setdefault(cta_id, []).extend(block)
            else:
                # not enough room: put the CTA back and stop
                self.queue.extendleft(reversed(block))
                break

    def _check_retire(self, warp: Warp) -> None:
        if warp.done or not (warp.pc >= warp.length and warp.drained()):
            return
        if self.engine.now < warp.ready_at:
            # a trailing compute instruction is still executing
            self.engine.at(warp.ready_at, self._check_retire, warp)
            return
        warp.done = True
        self.retired += 1
        self._counters["warps_retired"] += 1
        slot = warp.slot
        active = self.active
        active.pop(slot)
        self._cls.pop(slot)
        self._cand = -1               # slots renumbered: rebuild masks
        for index in range(slot, len(active)):
            active[index].slot = index
        members = self._cta_members.get(warp.cta_id)
        if members is not None:
            members.remove(warp)
            if not members:
                self._cta_members.pop(warp.cta_id, None)
                self._barrier_arrived.pop(warp.cta_id, None)
            else:
                # a retiring warp releases CTA-mates waiting on it
                self._maybe_release_barrier(warp.cta_id)
        self._activate()
        if self.active:
            # a queued warp may just have been activated
            self._schedule_issue(0)
        if self.on_warp_done is not None:
            self.on_warp_done()

    # ------------------------------------------------------------------
    # wake-up plumbing
    # ------------------------------------------------------------------
    def notify(self, warp: Optional[Warp] = None) -> None:
        """A memory operation completed; reschedule issue."""
        # only a warp past the end of its trace can retire, so skip the
        # _check_retire call entirely for mid-trace completions
        if warp is not None and warp.pc >= warp.length:
            self._check_retire(warp)
        if self.active:
            # _schedule_issue(0), inlined: one notify per completed
            # memory access makes the call overhead visible
            engine = self.engine
            now = engine.now
            event = self._issue_event
            if event is not None and event[2] is not None:
                if event[0] <= now:
                    return
                engine.cancel(event)
            self._issue_event = engine.post(now, self._issue)

    def _schedule_issue(self, delay: int) -> None:
        event = self._issue_event
        # a cancelled or already-fired handle (callback slot nulled) is
        # absent, whatever stale fire time it still carries — it must
        # never suppress a needed issue event
        if event is not None and event[2] is not None:
            if event[0] <= self.engine.now + delay:  # [0] is fire time
                return
            self.engine.cancel(event)
        self._issue_event = self.engine.post(
            self.engine.now + delay, self._issue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _classify(self, warp: Warp) -> int:
        """The warp's packed (state, wake_time) classification.

        Served from the ``_cls`` cache unless the warp was mutated
        since the last computation (entry -1) or its cached wake time
        has been reached (a time-blocked warp becomes ready by the
        clock alone).  States without a wake time can only change
        through a mutation, which always marks the entry dirty.
        """
        cls = self._cls[warp.slot]
        if cls >= 0 and (cls < 8 or self.engine.now < (cls >> 3) - 1):
            return cls
        cls = self._classify_fresh(warp)
        self._cls[warp.slot] = cls
        self._cand = -1       # cold path: let the next scan resync
        return cls

    def _classify_fresh(self, warp: Warp) -> int:
        now = self.engine.now
        if warp.done:
            return _DONE
        if warp.barrier_blocked:
            return _BLOCKED_SYNC
        if warp.pending_addrs is not None:
            # MSHR back-pressure: retry the rest of the instruction
            if now >= warp.retry_at:
                return _READY
            return _BLOCKED_MEM | ((warp.retry_at + 1) << 3)
        if warp.outstanding_loads > 0:
            return _BLOCKED_MEM
        pc = warp.pc
        if pc >= warp.length:
            # trace finished; draining trailing stores
            if warp.outstanding_stores > 0:
                return _BLOCKED_MEM
            return _DONE
        op = warp.ops[pc]
        if op == OP_BARRIER:
            # arrival requires the warp's memory to be drained (the
            # barrier doubles as a block-level fence)
            if warp.outstanding_stores > 0:
                return _BLOCKED_MEM
            return _READY
        if op == OP_FENCE:
            if warp.outstanding_stores > 0:
                if warp.fence_wait_start is None:
                    warp.fence_wait_start = now
                return _BLOCKED_MEM
            if now < warp.gwct:
                # TC-Weak: the fence waits for physical visibility
                if warp.fence_wait_start is None:
                    warp.fence_wait_start = now
                return _BLOCKED_MEM | ((warp.gwct + 1) << 3)
            return _READY
        if self.sc and warp.outstanding_stores > 0:
            return _BLOCKED_MEM
        if now < warp.ready_at:
            return _BLOCKED_COMPUTE | ((warp.ready_at + 1) << 3)
        return _READY

    # _issue is the single most-fired event callback in a run.  The
    # warp-selection scan and the instruction-issue switch are inlined
    # into its body (rather than living in _pick_warp/_issue_instr
    # helpers), and the scans inline _classify's cache check (dirty
    # flag, or a cached wake time the clock has reached): the
    # method-call overhead alone dominated the scan in profiles.
    def _issue(self) -> None:
        self._issue_event = None
        now = self.engine.now
        start = self._sleep_start
        if start is not None:
            # end-of-stall accounting, inlined (one call per wake-up)
            self._sleep_start = None
            slept = now - start
            if slept > 0:
                counters = self._counters
                counters["stall_cycles"] += slept
                if self._sleep_mem:
                    counters["stall_mem_cycles"] += slept
                if self.trace is not None:
                    self.trace.complete(
                        start, now, self.track,
                        "stall_mem" if self._sleep_mem else "stall")
        active = self.active
        count = len(active)
        if count == 0:
            return
        fresh = self._classify_fresh
        cls_arr = self._cls

        # -- candidate mask upkeep -------------------------------------
        # The scans below walk only the candidate slots (dirty, ready,
        # or timed-blocked past their wake time) instead of the whole
        # packed list; a warp object is touched only to reclassify a
        # candidate or to issue from the chosen one (_READY is the bare
        # value 0: ready warps never carry wake bits, so `cls == 0` is
        # the ready test).  Mask state lives in locals for the whole
        # selection phase and is flushed once per exit path — nothing
        # called before the flush reads it (_classify_fresh never
        # touches the masks; external |= sites only run between engine
        # callbacks).
        cand = self._cand
        timed = self._timed
        min_wake = self._min_wake
        if cand < 0:
            # slots were added/renumbered: rebuild from the packed
            # classifications (one vectorized compare when numpy is in)
            cand = self._ready_mask(cls_arr, now)
            timed = 0
            min_wake = _NO_WAKE
            for slot in range(count):
                cls = cls_arr[slot]
                if cls >= 8:
                    timed |= 1 << slot
                    wake_time = (cls >> 3) - 1
                    if wake_time < min_wake:
                        min_wake = wake_time
        elif now >= min_wake:
            # the clock reached a timed slot's wake time: fold the
            # expired slots into the candidate set (pure reads — they
            # are reclassified only when the scan visits them, in slot
            # order, exactly as the full walk used to)
            t = timed
            keep = 0
            expired = 0
            while t:
                low = t & -t
                t -= low
                cls = cls_arr[low.bit_length() - 1]
                if cls >= 8:     # stale timed bits are dropped here
                    keep |= low
                    if now >= (cls >> 3) - 1:
                        expired |= low
            timed = keep
            if expired:
                cand |= expired
            else:
                # nothing due: raise the gate to the earliest pending
                # wake so quiet scans skip the walk entirely
                min_wake = _NO_WAKE
                t = keep
                while t:
                    low = t & -t
                    t -= low
                    wake_time = (cls_arr[low.bit_length() - 1] >> 3) - 1
                    if wake_time < min_wake:
                        min_wake = wake_time

        # -- select the next warp, per the config policy ---------------
        chosen = None
        m = cand
        if self._greedy:
            # greedy-then-oldest: stick with the current warp while it
            # can issue, else fall back to the oldest ready warp.  A
            # non-done warp is always resident (retiring is the only
            # removal from active), so no membership scan is needed.
            last = self._last_warp
            if last is not None and not last.done:
                slot = last.slot
                cls = cls_arr[slot]
                if cls < 0 or (cls >= 8 and now >= (cls >> 3) - 1):
                    cls = cls_arr[slot] = fresh(last)
                    if cls != 0:
                        cand &= ~(1 << slot)
                        if cls >= 8:
                            timed |= 1 << slot
                            wake_time = (cls >> 3) - 1
                            if wake_time < min_wake:
                                min_wake = wake_time
                        m = cand
                if cls == 0:
                    chosen = last
            if chosen is None:
                while m:       # uid-ordered by construction
                    low = m & -m
                    m -= low
                    slot = low.bit_length() - 1
                    cls = cls_arr[slot]
                    if cls < 0 or (cls >= 8 and now >= (cls >> 3) - 1):
                        cls = cls_arr[slot] = fresh(active[slot])
                    if cls == 0:
                        chosen = active[slot]
                        break
                    # discovered blocked (or a stale bit): retire it
                    # from the candidate set
                    cand &= ~low
                    if cls >= 8:
                        timed |= low
                        wake_time = (cls >> 3) - 1
                        if wake_time < min_wake:
                            min_wake = wake_time
        else:
            rr = self._rr
            if rr >= count:  # warps retired since the last update
                rr %= count
            while m:
                # next candidate at or after rr, wrapping — the same
                # circular visit order as the full round-robin walk
                upper = m >> rr
                if upper:
                    low = (upper & -upper) << rr
                else:
                    low = m & -m
                m -= low
                slot = low.bit_length() - 1
                cls = cls_arr[slot]
                if cls < 0 or (cls >= 8 and now >= (cls >> 3) - 1):
                    cls = cls_arr[slot] = fresh(active[slot])
                if cls == 0:
                    chosen = active[slot]
                    slot += 1
                    self._rr = 0 if slot >= count else slot
                    break
                cand &= ~low
                if cls >= 8:
                    timed |= low
                    wake_time = (cls >> 3) - 1
                    if wake_time < min_wake:
                        min_wake = wake_time
        if chosen is None:
            # no warp can issue: record why and arrange a wake-up.  The
            # failed scan above visited every candidate and everything
            # else was cached-blocked, so the cls values are all fresh
            # at `now` — read them directly instead of re-deriving.
            wake: Optional[int] = None
            any_mem = False
            timed = 0
            bit = 1
            for cls in cls_arr:
                if cls & 7 == _BLOCKED_MEM:
                    any_mem = True
                if cls >= 8:
                    timed |= bit
                    wake_time = (cls >> 3) - 1
                    if wake is None or wake_time < wake:
                        wake = wake_time
                bit <<= 1
            self._cand = cand
            self._timed = timed
            self._min_wake = wake if wake is not None else _NO_WAKE
            self._sleep_start = now
            self._sleep_mem = any_mem
            if wake is not None:
                self._schedule_issue(wake - now)
            # otherwise a completion callback will notify() us
            return
        self._last_warp = chosen

        # -- issue one instruction from the chosen warp ----------------
        warp = chosen
        cls_arr[warp.slot] = -1
        self._cand = cand | (1 << warp.slot)
        self._timed = timed
        self._min_wake = min_wake
        if warp.pending_addrs is not None:
            self._issue_mem_accesses(warp)
        else:
            pc = warp.pc
            op = warp.ops[pc]
            counters = self._counters
            counters["instructions"] += 1
            if op == OP_COMPUTE:
                warp.pc = pc + 1
                warp.ready_at = now + warp.args[pc]
            elif op <= OP_ATOMIC:      # LOAD, STORE or ATOMIC
                counters["mem_instructions"] += 1
                warp.pc = pc + 1
                warp.pending_op = op
                warp.pending_addrs = list(warp.args[pc])
                self._issue_mem_accesses(warp)
            elif op == OP_FENCE:
                counters["fences"] += 1
                if warp.fence_wait_start is not None:
                    counters["fence_wait_cycles"] += \
                        now - warp.fence_wait_start
                    warp.fence_wait_start = None
                warp.pc = pc + 1
            else:                      # BARRIER
                counters["barriers"] += 1
                warp.pc = pc + 1
                self._arrive_at_barrier(warp)
            if warp.pc >= warp.length:  # mid-trace warps cannot retire
                self._check_retire(warp)
        if self.active:
            # _schedule_issue(1), inlined; nested calls above may have
            # scheduled an earlier issue event, which then wins
            engine = self.engine
            target = now + 1
            event = self._issue_event
            if event is not None and event[2] is not None:
                if event[0] <= target:
                    return
                engine.cancel(event)
            self._issue_event = engine.post(target, self._issue)

    # ------------------------------------------------------------------
    # instruction issue
    # ------------------------------------------------------------------
    def _issue_mem_accesses(self, warp: Warp) -> None:
        self._cls[warp.slot] = -1
        self._cand |= 1 << warp.slot
        pending = warp.pending_addrs
        op = warp.pending_op
        l1 = self.l1
        # hoist the per-op dispatch out of the per-address loop
        if op == OP_LOAD:
            issue, callback, store = l1.load, warp.load_cb, False
        elif op == OP_ATOMIC:
            # an atomic returns a value: it blocks the warp like a
            # load (tracked as an outstanding load)
            issue, callback, store = l1.atomic, warp.load_cb, False
        else:
            issue, callback, store = l1.store, warp.store_cb, True
        remaining: Optional[List[int]] = None
        for index, addr in enumerate(pending):
            if issue(warp, addr, callback):
                if store:
                    warp.outstanding_stores += 1
                else:
                    warp.outstanding_loads += 1
            else:
                # structural hazard: park the rest and retry later
                remaining = pending[index:]
                break
        if remaining:
            warp.pending_addrs = remaining
            warp.retry_at = self.engine.now + self.config.mshr_retry_interval
            self._schedule_issue(self.config.mshr_retry_interval)
        else:
            warp.pending_addrs = None
            warp.pending_op = None

    # ------------------------------------------------------------------
    # intra-CTA barriers
    # ------------------------------------------------------------------
    def _arrive_at_barrier(self, warp: Warp) -> None:
        arrived = self._barrier_arrived.setdefault(warp.cta_id, set())
        arrived.add(warp.uid)
        warp.barrier_blocked = True
        self._maybe_release_barrier(warp.cta_id)

    def _maybe_release_barrier(self, cta_id: int) -> None:
        arrived = self._barrier_arrived.get(cta_id)
        if not arrived:
            return
        alive = [w for w in self._cta_members.get(cta_id, ())
                 if not w.done]
        waiting = {w.uid for w in alive}
        if waiting and waiting <= arrived:
            self._barrier_arrived[cta_id] = set()
            self._counters["barrier_releases"] += 1
            cls_arr = self._cls
            released = 0
            for member in alive:
                member.barrier_blocked = False
                cls_arr[member.slot] = -1
                released |= 1 << member.slot
            self._cand |= released
            self._schedule_issue(0)
