"""GPU execution model: warps, SMs, and the top-level simulator."""

from repro.gpu.gpu import GPU, run_kernel
from repro.gpu.machine import Machine
from repro.gpu.warp import Warp

__all__ = ["GPU", "Machine", "Warp", "run_kernel"]
