"""Energy model (GPUWattch-style event counting)."""

from repro.energy.model import EnergyModel, EnergyParams

__all__ = ["EnergyModel", "EnergyParams"]
