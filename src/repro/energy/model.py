"""Event-count energy model standing in for GPUWattch.

The paper's Figures 16 and 17 use GPUWattch to compare protocol
variants *on the same workloads*, so the comparisons are driven by
(a) per-component event counts and (b) execution time (static energy).
This model computes exactly that: nominal per-event energies for each
structure, plus static power integrated over the run.  The absolute
joule values are calibrated to be plausible for a ~1 GHz 16-SM GPU but
are not meant to match the paper's absolute numbers — the *ratios*
between protocols are what the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import GPUConfig


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (joules) and static power (watts).

    Defaults are GPUWattch-magnitude numbers for a 28 nm-era GPU:
    small SRAM reads cost tens of picojoules, DRAM accesses tens of
    nanojoules, and on-chip wires ~1 pJ/byte/hop.
    """

    cycle_time_s: float = 1e-9          # 1 GHz core clock
    l1_access_j: float = 30e-12         # 16KB SRAM access
    l2_access_j: float = 120e-12        # 128KB bank access
    noc_byte_j: float = 1.5e-12         # link + router per byte
    dram_access_j: float = 20e-9        # one line transfer
    instr_j: float = 60e-12             # issue + ALU per warp instr
    static_power_per_sm_w: float = 0.35
    static_power_uncore_w: float = 2.0  # L2 + NoC + MC leakage


class EnergyModel:
    """Turn a run's counters into per-component joules."""

    def __init__(self, config: GPUConfig,
                 params: EnergyParams = EnergyParams()) -> None:
        self.config = config
        self.params = params

    def compute(self, counters: Dict[str, int],
                cycles: int) -> Dict[str, float]:
        """Per-component energy for one finished run.

        Components mirror the paper's breakdown in Section VI-D:
        ``l1``, ``l2``, ``noc``, ``dram``, ``core`` (dynamic) and
        ``static``.
        """
        p = self.params
        get = lambda name: counters.get(name, 0)
        seconds = cycles * p.cycle_time_s
        static_w = (p.static_power_per_sm_w * self.config.num_sms
                    + p.static_power_uncore_w)
        return {
            "l1": get("l1_access") * p.l1_access_j,
            "l2": get("l2_access") * p.l2_access_j,
            "noc": get("noc_bytes") * p.noc_byte_j,
            "dram": (get("dram_reads") + get("dram_writes"))
                    * p.dram_access_j,
            "core": get("instructions") * p.instr_j,
            "static": static_w * seconds,
        }
