"""Instantiate the configured protocol's L1 controllers and L2 banks."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import Protocol
from repro.core.l1 import GTSCL1Controller
from repro.core.l2 import GTSCL2Bank
from repro.core.timestamps import TimestampDomain
from repro.protocols.plain import (
    DisabledL1Controller,
    NonCoherentL1Controller,
    PlainL2Bank,
)
from repro.protocols.tc import TCL1Controller, TCL2Bank

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine


def build_protocol(machine: "Machine") -> None:
    """Populate ``machine.l1s`` and ``machine.l2_banks`` per the config.

    A machine inside a multi-GPU cluster (``machine.cluster`` set by
    :class:`repro.multigpu.machine.MultiGpuGPU`) gets the cross-GPU
    controller variants from :mod:`repro.protocols.xgpu` — same state
    machines, interlink-aware routing — and, under G-TSC, the
    cluster's shared timestamp domain instead of a private one.
    Standalone machines take the exact pre-multigpu classes.
    """
    config = machine.config
    cluster = machine.cluster
    if config.protocol is Protocol.GTSC:
        if cluster is not None:
            from repro.protocols.xgpu import (
                XGpuGTSCL1Controller,
                XGpuGTSCL2Bank,
            )
            domain = cluster.timestamp_domain
            machine.timestamp_domain = domain
            machine.l2_banks = [XGpuGTSCL2Bank(b, machine, domain)
                                for b in range(config.num_l2_banks)]
            machine.l1s = [XGpuGTSCL1Controller(s, machine)
                           for s in range(config.num_sms)]
            return
        domain = TimestampDomain(config.ts_max, config.lease,
                                 machine.stats)
        machine.timestamp_domain = domain
        machine.l2_banks = [GTSCL2Bank(b, machine, domain)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [GTSCL1Controller(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.TC:
        if cluster is not None:
            from repro.protocols.xgpu import (
                XGpuTCL1Controller,
                XGpuTCL2Bank,
            )
            l1_cls, l2_cls = XGpuTCL1Controller, XGpuTCL2Bank
        else:
            l1_cls, l2_cls = TCL1Controller, TCL2Bank
        machine.l2_banks = [l2_cls(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [l1_cls(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.DISABLED:
        if cluster is not None:
            from repro.protocols.xgpu import (
                XGpuDisabledL1Controller,
                XGpuPlainL2Bank,
            )
            l1_cls, l2_cls = XGpuDisabledL1Controller, XGpuPlainL2Bank
        else:
            l1_cls, l2_cls = DisabledL1Controller, PlainL2Bank
        machine.l2_banks = [l2_cls(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [l1_cls(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.NONCOHERENT:
        if cluster is not None:
            from repro.protocols.xgpu import (
                XGpuNonCoherentL1Controller,
                XGpuPlainL2Bank,
            )
            l1_cls, l2_cls = XGpuNonCoherentL1Controller, XGpuPlainL2Bank
        else:
            l1_cls, l2_cls = NonCoherentL1Controller, PlainL2Bank
        machine.l2_banks = [l2_cls(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [l1_cls(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.MESI:
        if cluster is not None:
            from repro.protocols.xgpu import xgpu_mesi_classes
            l1_cls, l2_cls = xgpu_mesi_classes()
        else:
            from repro.protocols.mesi import MESIL1Controller, MESIL2Bank
            l1_cls, l2_cls = MESIL1Controller, MESIL2Bank
        machine.l2_banks = [l2_cls(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [l1_cls(s, machine)
                       for s in range(config.num_sms)]
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown protocol: {config.protocol}")
