"""Instantiate the configured protocol's L1 controllers and L2 banks."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import Protocol
from repro.core.l1 import GTSCL1Controller
from repro.core.l2 import GTSCL2Bank
from repro.core.timestamps import TimestampDomain
from repro.protocols.plain import (
    DisabledL1Controller,
    NonCoherentL1Controller,
    PlainL2Bank,
)
from repro.protocols.tc import TCL1Controller, TCL2Bank

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine


def build_protocol(machine: "Machine") -> None:
    """Populate ``machine.l1s`` and ``machine.l2_banks`` per the config."""
    config = machine.config
    if config.protocol is Protocol.GTSC:
        domain = TimestampDomain(config.ts_max, config.lease,
                                 machine.stats)
        machine.timestamp_domain = domain
        machine.l2_banks = [GTSCL2Bank(b, machine, domain)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [GTSCL1Controller(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.TC:
        machine.l2_banks = [TCL2Bank(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [TCL1Controller(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.DISABLED:
        machine.l2_banks = [PlainL2Bank(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [DisabledL1Controller(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.NONCOHERENT:
        machine.l2_banks = [PlainL2Bank(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [NonCoherentL1Controller(s, machine)
                       for s in range(config.num_sms)]
    elif config.protocol is Protocol.MESI:
        from repro.protocols.mesi import MESIL1Controller, MESIL2Bank
        machine.l2_banks = [MESIL2Bank(b, machine)
                            for b in range(config.num_l2_banks)]
        machine.l1s = [MESIL1Controller(s, machine)
                       for s in range(config.num_sms)]
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown protocol: {config.protocol}")
