"""Coherence protocol implementations.

The paper's contribution (G-TSC) lives in :mod:`repro.core`; this
package holds the baselines it is evaluated against — Temporal
Coherence (TC-Strong / TC-Weak), the no-L1 coherent baseline (BL), and
the non-coherent L1 baseline — plus the shared plumbing in
:mod:`repro.protocols.base`.
"""

from repro.protocols.base import L1ControllerBase, L2BankBase, Message
from repro.protocols.factory import build_protocol

__all__ = [
    "L1ControllerBase",
    "L2BankBase",
    "Message",
    "build_protocol",
]
