"""The two non-protocol baselines of the evaluation.

* :class:`DisabledL1Controller` — the paper's coherent baseline (BL):
  the L1 is turned off and every access crosses the NoC to the shared
  L2, which is trivially coherent.  No L1 tags are checked and no L1
  MSHRs are combined, matching the paper's description of its BL
  implementation (Section VI-A).

* :class:`NonCoherentL1Controller` — "Baseline W/L1" in Figure 12: a
  plain write-through L1 with no coherence actions at all.  Only
  meaningful for workloads that do not need coherence.

Both sit on top of :class:`PlainL2Bank`, a protocol-free shared cache.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.mem.cache import CacheArray, CacheLine
from repro.protocols.base import (
    L1ControllerBase,
    L2BankBase,
    LoadWaiter,
    Message,
    PendingAtomic,
    PendingStore,
    pop_pending,
)
from repro.validate.versions import AtomicRecord, LoadRecord, StoreRecord


class _AtomicMixin:
    """Shared atomic plumbing for the two baseline L1 controllers:
    forward the RMW to the L2 (invalidating any local copy) and match
    responses FIFO per line."""

    __slots__ = ()

    def _init_atomics(self) -> None:
        self._pending_atomics: Dict[int, Deque[PendingAtomic]] = {}

    def atomic(self, warp, addr: int,
               on_done: Callable[[], None]) -> bool:
        cache = getattr(self, "cache", None)
        if cache is not None:
            counters = self._counters
            counters["l1_access"] += 1
            counters["l1_atomic"] += 1
            cache.invalidate(addr)
        version = self.machine.versions.new_version(addr)
        pending = PendingAtomic(warp, addr, version, on_done,
                                self.engine.now)
        queue = self._pending_atomics.get(addr)
        if queue is None:
            queue = self._pending_atomics[addr] = deque()
        queue.append(pending)
        self._send(MemAtm(addr, self.sm_id, version))
        return True

    def _on_atomic_ack(self, msg: "MemAtmAck") -> None:
        pending = pop_pending(self._pending_atomics[msg.addr], msg.version)
        log = self.machine.log
        if log.enabled:
            log.atomics.append(AtomicRecord(
                warp_uid=pending.warp.uid,
                addr=msg.addr,
                old_version=msg.old_version,
                new_version=pending.version,
                logical_ts=0,
                epoch=0,
                issue_cycle=pending.issue_cycle,
                complete_cycle=self.engine.now,
            ))
        engine = self.engine
        engine.post(engine.now, pending.on_done)

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

class MemRd(Message):
    kind = "ctrl"
    __slots__ = ()


class MemWr(Message):
    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class MemFill(Message):
    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class MemAck(Message):
    kind = "ctrl"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int = None) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version


class MemAtm(Message):
    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


class MemAtmAck(Message):
    kind = "ctrl"
    __slots__ = ("old_version", "version")

    def __init__(self, addr: int, sm: int, old_version: int,
                 version: int = None) -> None:
        self.addr = addr
        self.sm = sm
        self.old_version = old_version
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


# ---------------------------------------------------------------------------
# BL: L1 disabled
# ---------------------------------------------------------------------------

class DisabledL1Controller(_AtomicMixin, L1ControllerBase):
    """Coherence by construction: every access goes straight to L2."""

    __slots__ = ("_load_waiters", "_pending_stores", "_pending_atomics")

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        # responses return in per-(SM, bank) FIFO order, so plain
        # per-line queues are enough to match fills to waiting loads
        self._load_waiters: Dict[int, Deque[LoadWaiter]] = {}
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        self._init_atomics()

    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        waiter = LoadWaiter(warp, on_done, self.engine.now)
        queue = self._load_waiters.get(addr)
        if queue is None:
            queue = self._load_waiters[addr] = deque()
        queue.append(waiter)
        self._send(MemRd(addr, self.sm_id))
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        version = self.machine.versions.new_version(addr)
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        queue = self._pending_stores.get(addr)
        if queue is None:
            queue = self._pending_stores[addr] = deque()
        queue.append(pending)
        self._send(MemWr(addr, self.sm_id, version))
        return True

    def receive(self, msg: Message) -> None:
        cls = type(msg)
        if cls is MemFill:
            waiter = self._load_waiters[msg.addr].popleft()
            log = self.machine.log
            if log.enabled:
                log.loads.append(LoadRecord(
                    warp_uid=waiter.warp.uid,
                    addr=msg.addr,
                    version=msg.version,
                    logical_ts=0,
                    epoch=0,
                    issue_cycle=waiter.issue_cycle,
                    complete_cycle=self.engine.now,
                    l1_hit=False,
                ))
            engine = self.engine
            engine.post(engine.now, waiter.on_done)
        elif cls is MemAck:
            pending = pop_pending(self._pending_stores[msg.addr],
                                  msg.version)
            log = self.machine.log
            if log.enabled:
                log.stores.append(StoreRecord(
                    warp_uid=pending.warp.uid,
                    addr=msg.addr,
                    version=pending.version,
                    logical_ts=0,
                    epoch=0,
                    issue_cycle=pending.issue_cycle,
                    complete_cycle=self.engine.now,
                ))
            engine = self.engine
            engine.post(engine.now, pending.on_done)
        elif cls is MemAtmAck:
            self._on_atomic_ack(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at BL L1: {msg!r}")


# ---------------------------------------------------------------------------
# Baseline W/L1: non-coherent private cache
# ---------------------------------------------------------------------------

class NonCoherentL1Controller(_AtomicMixin, L1ControllerBase):
    """Write-through L1 with no coherence actions whatsoever."""

    __slots__ = ("cache", "_pending_stores", "_pending_atomics")

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        config = machine.config
        self.cache = CacheArray(config.l1_sets, config.l1_assoc)
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        self._init_atomics()

    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        counters = self._counters
        counters["l1_access"] += 1
        line = self.cache.lookup(addr)
        if line is not None:
            counters["l1_hit"] += 1
            log = self.machine.log
            if log.enabled:
                log.loads.append(LoadRecord(
                    warp_uid=warp.uid, addr=addr, version=line.version,
                    logical_ts=0, epoch=0, issue_cycle=self.engine.now,
                    complete_cycle=self.engine.now, l1_hit=True,
                ))
            engine = self.engine
            engine.post(engine.now + self._l1_latency, on_done)
            return True
        counters["l1_miss"] += 1
        waiter = LoadWaiter(warp, on_done, self.engine.now)
        entry = self.mshr.get(addr)
        if entry is not None:
            entry.waiters.append(waiter)
            return True
        if self.mshr.full:
            counters["l1_mshr_stall"] += 1
            return False
        entry = self.mshr.allocate(addr)
        entry.waiters.append(waiter)
        self._send(MemRd(addr, self.sm_id))
        entry.issued = True
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        counters = self._counters
        counters["l1_access"] += 1
        counters["l1_store"] += 1
        version = self.machine.versions.new_version(addr)
        line = self.cache.lookup(addr)
        if line is not None:
            # keep the local copy fresh so this SM sees its own writes
            line.version = version
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        queue = self._pending_stores.get(addr)
        if queue is None:
            queue = self._pending_stores[addr] = deque()
        queue.append(pending)
        self._send(MemWr(addr, self.sm_id, version))
        return True

    def receive(self, msg: Message) -> None:
        cls = type(msg)
        if cls is MemFill:
            line, _evicted = self.cache.allocate(msg.addr)
            if line is not None:
                line.version = msg.version
            log = self.machine.log
            engine = self.engine
            for waiter in self.mshr.drain(msg.addr):
                if log.enabled:
                    log.loads.append(LoadRecord(
                        warp_uid=waiter.warp.uid, addr=msg.addr,
                        version=msg.version, logical_ts=0, epoch=0,
                        issue_cycle=waiter.issue_cycle,
                        complete_cycle=engine.now, l1_hit=False,
                    ))
                engine.post(engine.now, waiter.on_done)
        elif cls is MemAck:
            pending = pop_pending(self._pending_stores[msg.addr],
                                  msg.version)
            log = self.machine.log
            if log.enabled:
                log.stores.append(StoreRecord(
                    warp_uid=pending.warp.uid, addr=msg.addr,
                    version=pending.version, logical_ts=0, epoch=0,
                    issue_cycle=pending.issue_cycle,
                    complete_cycle=self.engine.now,
                ))
            engine = self.engine
            engine.post(engine.now, pending.on_done)
        elif cls is MemAtmAck:
            self._on_atomic_ack(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at non-coherent L1: {msg!r}")

    def flush(self) -> None:
        self.cache.flush()


# ---------------------------------------------------------------------------
# protocol-free shared cache
# ---------------------------------------------------------------------------

class PlainL2Bank(L2BankBase):
    """Shared L2 with no coherence metadata (serves both baselines)."""

    __slots__ = ()

    def _process(self, msg: Message) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        cls = type(msg)
        if cls is MemRd:
            self._reply(msg.sm, MemFill(msg.addr, msg.sm, line.version))
        elif cls is MemWr:
            line.version = msg.version
            line.dirty = True
            self.machine.versions.record_wts(msg.addr, msg.version,
                                             self.engine.now)
            self._reply(msg.sm, MemAck(msg.addr, msg.sm,
                                       version=msg.version))
        elif cls is MemAtm:
            self._counters["l2_atomics"] += 1
            old_version = line.version
            line.version = msg.version
            line.dirty = True
            self.machine.versions.record_wts(msg.addr, msg.version,
                                             self.engine.now)
            self._reply(msg.sm, MemAtmAck(msg.addr, msg.sm, old_version,
                                          version=msg.version))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at plain L2: {msg!r}")

    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        line, evicted = self.cache.allocate(addr)
        if line is None:  # pragma: no cover - nothing pins plain lines
            return None
        if evicted is not None:
            self._counters["l2_evictions"] += 1
            self._writeback(evicted)
        line.version = self._memory_version(addr)
        line.dirty = False
        return line
