"""A conventional invalidation-based directory protocol (Section II-C).

The paper motivates time-based coherence by arguing that conventional
directory protocols are ill-suited to GPUs: they pay invalidation and
acknowledgment traffic on every write to shared data, recall traffic
when directory entries are evicted, and per-line sharer storage.  This
module implements exactly such a protocol — a full-map MSI directory —
so that claim can be *measured* against G-TSC instead of cited.

Design (kept deliberately conventional):

* **L1**: write-back, write-allocate, states M/S/I.  Stores hit
  locally once the line is in M — the one advantage an invalidation
  protocol has over the write-through designs.
* **Directory (per L2 bank)**: full sharer bitmap plus owner.  GetS
  forwards from a modified owner (writeback + downgrade) or supplies
  data; GetM invalidates every sharer, collects acks, then grants
  ownership.  While a transaction is collecting acks the line is
  blocked and later requests park behind it.
* **Silent S eviction** (GPU L1s send no PutS), so the sharer map is
  conservative and stale sharers receive harmless invalidations —
  precisely the over-invalidation cost the paper describes.
* **Recall**: evicting a directory entry invalidates/recalls every
  cached copy first (the §II-C "recall traffic").
* **Atomics** execute at the directory after a global invalidation.

The protocol targets SC (stores block until ownership); under RC
stores are fire-and-forget and fences drain them, as elsewhere.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set

from repro.config import CombiningPolicy
from repro.mem.cache import CacheArray, CacheLine
from repro.mem.mshr import MSHRFullError
from repro.protocols.base import (
    L1ControllerBase,
    L2BankBase,
    LoadWaiter,
    Message,
    PendingAtomic,
    PendingStore,
    pop_pending,
)
from repro.validate.versions import AtomicRecord, LoadRecord, StoreRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp

# L1 line states, stored in CacheLine.expiry (unused by this protocol)
_INVALID, _SHARED, _MODIFIED = 0, 1, 2


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

class GetS(Message):
    kind = "ctrl"
    __slots__ = ()


class GetM(Message):
    kind = "ctrl"
    __slots__ = ()


class PutM(Message):
    """Dirty writeback of an evicted modified line."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class DataS(Message):
    """Shared data grant."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class DataM(Message):
    """Exclusive-ownership grant."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class Inv(Message):
    """Invalidate request from the directory to one L1."""

    kind = "ctrl"
    __slots__ = ()


class InvAck(Message):
    """Invalidation acknowledgment (carries data when it was M)."""

    uniform_size = False
    __slots__ = ("version", "had_data")

    def __init__(self, addr: int, sm: int, version: int = 0,
                 had_data: bool = False) -> None:
        super().__init__(addr, sm)
        self.version = version
        self.had_data = had_data

    @property
    def kind(self) -> str:  # type: ignore[override]
        return "data" if self.had_data else "ctrl"

    def payload_bytes(self, config) -> int:
        return config.line_size if self.had_data else 0


class MemAtmD(Message):
    """Atomic RMW at the directory."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


class AtmAckD(Message):
    kind = "ctrl"
    __slots__ = ("old_version", "version")

    def __init__(self, addr: int, sm: int, old_version: int,
                 version: int = None) -> None:
        super().__init__(addr, sm)
        self.old_version = old_version
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


# ---------------------------------------------------------------------------
# L1 controller
# ---------------------------------------------------------------------------

class MESIL1Controller(L1ControllerBase):
    """Write-back MSI private cache."""

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        config = machine.config
        self.cache = CacheArray(config.l1_sets, config.l1_assoc)
        # stores waiting for ownership, FIFO per line
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        self._pending_atomics: Dict[int, Deque[PendingAtomic]] = {}
        # lines with a GetM in flight (avoid duplicate requests)
        self._m_requested: Set[int] = set()
        # loads merged into an in-flight GetM: issuing a GetS while our
        # own GetM races would let the directory downgrade the
        # ownership it is about to grant us, so these loads wait for
        # the DataM instead (classic MSHR read-after-write merging)
        self._loads_after_getm: Dict[int, List[LoadWaiter]] = {}

    # -- SM interface ------------------------------------------------------------
    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        self._counters["l1_access"] += 1
        line = self.cache.lookup(addr)
        if line is not None and line.expiry != _INVALID:
            self._counters["l1_hit"] += 1
            self._record_load(warp, addr, line.version, self.engine.now,
                              hit=True)
            self._complete(on_done, self.config.l1_latency)
            return True
        self._counters["l1_miss"] += 1
        waiter = LoadWaiter(warp, on_done, self.engine.now)
        if addr in self._m_requested:
            # merge into the outstanding write miss; the ownership
            # grant will satisfy this read with the newest data
            self._loads_after_getm.setdefault(addr, []).append(waiter)
            return True
        entry = self.mshr.get(addr)
        if entry is not None and \
                self.config.combining is CombiningPolicy.MSHR:
            entry.waiters.append(waiter)
            return True
        if entry is None:
            if self.mshr.full:
                self._counters["l1_mshr_stall"] += 1
                return False
            entry = self.mshr.allocate(addr)
        entry.waiters.append(waiter)
        self._send(GetS(addr, self.sm_id))
        entry.issued = True
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        self._counters["l1_access"] += 1
        self._counters["l1_store"] += 1
        version = self.machine.versions.new_version(addr)
        line = self.cache.lookup(addr)
        if line is not None and line.expiry == _MODIFIED:
            # write hit in M: no coherence traffic at all
            self._counters["l1_store_hit_m"] += 1
            line.version = version
            line.dirty = True
            self.machine.versions.record_wts(addr, version,
                                             self.engine.now)
            self._record_store(warp, addr, version, self.engine.now,
                               self.engine.now)
            self._complete(on_done, self.config.l1_latency)
            return True
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        self._pending_stores.setdefault(addr, deque()).append(pending)
        if addr not in self._m_requested:
            self._m_requested.add(addr)
            self._send(GetM(addr, self.sm_id))
        return True

    def atomic(self, warp: "Warp", addr: int,
               on_done: Callable[[], None]) -> bool:
        self._counters["l1_access"] += 1
        self._counters["l1_atomic"] += 1
        version = self.machine.versions.new_version(addr)
        # atomics are performed at the directory; drop the local copy
        self._invalidate_local(addr)
        pending = PendingAtomic(warp, addr, version, on_done,
                                self.engine.now)
        self._pending_atomics.setdefault(addr, deque()).append(pending)
        self._send(MemAtmD(addr, self.sm_id, version))
        return True

    # -- responses --------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        if isinstance(msg, DataS):
            line = self.cache.lookup(msg.addr)
            if line is not None and line.expiry == _MODIFIED:
                # a racing GetM was granted first: our M data is newer
                # than this shared grant — serve the waiters locally
                version = line.version
            else:
                self._install(msg.addr, msg.version, _SHARED)
                version = msg.version
            for waiter in self.mshr.drain(msg.addr):
                self._record_load(waiter.warp, msg.addr, version,
                                  waiter.issue_cycle, hit=False)
                self._complete(waiter.on_done)
        elif isinstance(msg, DataM):
            self._on_ownership(msg)
        elif isinstance(msg, Inv):
            self._on_invalidate(msg)
        elif isinstance(msg, AtmAckD):
            self._on_atomic_ack(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at MESI L1: {msg!r}")

    def _on_ownership(self, msg: DataM) -> None:
        self._m_requested.discard(msg.addr)
        line = self._install(msg.addr, msg.version, _MODIFIED)
        queue = self._pending_stores.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"ownership grant with no store: {msg!r}")
        # perform every queued store locally, in order
        newest = msg.version
        while queue:
            pending = queue.popleft()
            newest = pending.version
            if line is not None:
                line.version = pending.version
                line.dirty = True
            self.machine.versions.record_wts(msg.addr, pending.version,
                                             self.engine.now)
            self._record_store(pending.warp, msg.addr, pending.version,
                               pending.issue_cycle, self.engine.now)
            self._complete(pending.on_done)
        self._pending_stores.pop(msg.addr, None)
        # serve the loads that merged into this write miss: they read
        # the freshly written value
        for waiter in self._loads_after_getm.pop(msg.addr, []):
            self._record_load(waiter.warp, msg.addr, newest,
                              waiter.issue_cycle, hit=False)
            self._complete(waiter.on_done)
        if line is None:
            # could not cache the granted line (all ways busy): push
            # the data straight back to the directory
            self._send(PutM(msg.addr, self.sm_id, newest))

    def _on_invalidate(self, msg: Inv) -> None:
        line = self.cache.lookup(msg.addr, touch=False)
        if line is None or line.expiry == _INVALID:
            # silently-evicted sharer: harmless over-invalidation
            self._counters["l1_stale_invalidations"] += 1
            self._send(InvAck(msg.addr, self.sm_id))
            return
        had_data = line.expiry == _MODIFIED and line.dirty
        version = line.version
        self.cache.invalidate(msg.addr)
        self._counters["l1_invalidations_received"] += 1
        self._send(InvAck(msg.addr, self.sm_id, version, had_data))

    def _on_atomic_ack(self, msg: AtmAckD) -> None:
        pending = pop_pending(self._pending_atomics[msg.addr], msg.version)
        self.machine.log.record_atomic(AtomicRecord(
            warp_uid=pending.warp.uid, addr=msg.addr,
            old_version=msg.old_version, new_version=pending.version,
            logical_ts=0, epoch=0, issue_cycle=pending.issue_cycle,
            complete_cycle=self.engine.now))
        self._complete(pending.on_done)

    # -- local cache management -----------------------------------------------
    def _install(self, addr: int, version: int,
                 state: int) -> Optional[CacheLine]:
        line, evicted = self.cache.allocate(addr)
        if evicted is not None:
            self._writeback_if_modified(evicted)
        if line is None:
            return None
        line.version = version
        line.expiry = state
        line.dirty = False
        return line

    def _invalidate_local(self, addr: int) -> None:
        line = self.cache.lookup(addr, touch=False)
        if line is not None:
            self._writeback_if_modified(line)
            self.cache.invalidate(addr)

    def _writeback_if_modified(self, line: CacheLine) -> None:
        if line.expiry == _MODIFIED and line.dirty:
            self._send(PutM(line.addr, self.sm_id, line.version))

    def flush(self) -> None:
        for line in list(self.cache.lines()):
            self._writeback_if_modified(line)
        self.cache.flush()

    # -- records -----------------------------------------------------------------
    def _record_load(self, warp, addr, version, issue_cycle, hit):
        self.stats.hist.add("load_latency",
                            self.engine.now - issue_cycle)
        self.machine.log.record_load(LoadRecord(
            warp_uid=warp.uid, addr=addr, version=version, logical_ts=0,
            epoch=0, issue_cycle=issue_cycle,
            complete_cycle=self.engine.now, l1_hit=hit))

    def _record_store(self, warp, addr, version, issue_cycle, done):
        self.stats.hist.add("store_latency", done - issue_cycle)
        self.machine.log.record_store(StoreRecord(
            warp_uid=warp.uid, addr=addr, version=version, logical_ts=0,
            epoch=0, issue_cycle=issue_cycle, complete_cycle=done))


# ---------------------------------------------------------------------------
# directory / L2 bank
# ---------------------------------------------------------------------------

class _DirEntry:
    """Directory transaction state for one line."""

    __slots__ = ("sharers", "owner", "pending_acks", "parked",
                 "grant", "await_owner_data")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.pending_acks = 0
        # requests parked while a transaction completes
        self.parked: Deque[Message] = deque()
        # the message to satisfy once acks are in
        self.grant: Optional[Message] = None
        self.await_owner_data = False

    @property
    def busy(self) -> bool:
        return self.pending_acks > 0 or self.await_owner_data


class MESIL2Bank(L2BankBase):
    """L2 bank with a full-map MSI directory."""

    def __init__(self, bank_id: int, machine: "Machine") -> None:
        super().__init__(bank_id, machine)
        self._dir: Dict[int, _DirEntry] = {}
        # acks still owed to fire-and-forget eviction recalls; they
        # must not be mistaken for a live transaction's acks
        self._stray_acks: Dict[int, int] = {}
        # prebound eviction predicate (no closure per fill attempt)
        self._dir_free = self._dir_line_idle

    def _dir_line_idle(self, line: CacheLine) -> bool:
        return not self._entry_busy(line.addr)

    def _entry(self, addr: int) -> _DirEntry:
        entry = self._dir.get(addr)
        if entry is None:
            entry = _DirEntry()
            self._dir[addr] = entry
        return entry

    # -- dispatch ------------------------------------------------------------
    def _process(self, msg: Message) -> None:
        if isinstance(msg, InvAck):
            self._on_inv_ack(msg)
            return
        if isinstance(msg, PutM):
            self._on_putm(msg)
            return
        entry = self._entry(msg.addr)
        if entry.busy:
            entry.parked.append(msg)
            self._counters["dir_blocked_requests"] += 1
            return
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        if isinstance(msg, GetS):
            self._gets(msg, entry, line)
        elif isinstance(msg, GetM):
            self._getm(msg, entry, line)
        elif isinstance(msg, MemAtmD):
            self._atomic(msg, entry, line)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at directory: {msg!r}")

    # -- reads ----------------------------------------------------------------
    def _gets(self, msg: GetS, entry: _DirEntry, line: CacheLine) -> None:
        if entry.owner is not None and entry.owner != msg.sm:
            # recall the modified copy first (owner downgrades to S)
            self._recall_owner(entry, msg)
            return
        entry.sharers.add(msg.sm)
        entry.owner = None
        self._reply(msg.sm, DataS(msg.addr, msg.sm, line.version))

    # -- writes ---------------------------------------------------------------
    def _getm(self, msg: GetM, entry: _DirEntry, line: CacheLine) -> None:
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        targets.discard(msg.sm)
        if targets:
            self._counters["dir_invalidations"] += len(targets)
            if self.trace is not None:
                self.trace.instant(self.engine.now, self.track,
                                   "invalidate",
                                   {"addr": msg.addr,
                                    "sharers": len(targets)})
            entry.pending_acks = len(targets)
            entry.grant = msg
            for sm in targets:
                self._reply(sm, Inv(msg.addr, sm))
            return
        self._grant_ownership(msg, entry, line)

    def _grant_ownership(self, msg: GetM, entry: _DirEntry,
                         line: CacheLine) -> None:
        entry.sharers = set()
        entry.owner = msg.sm
        if self.trace is not None:
            self.trace.instant(self.engine.now, self.track,
                               "grant_ownership",
                               {"addr": msg.addr, "owner": msg.sm})
        # ownership hands the current data to the writer; the L2 copy
        # is stale from here until the writeback
        self._reply(msg.sm, DataM(msg.addr, msg.sm, line.version))
        self._unpark(entry)

    def _recall_owner(self, entry: _DirEntry, msg: Message) -> None:
        self._counters["dir_recalls"] += 1
        if self.trace is not None:
            self.trace.instant(self.engine.now, self.track, "recall",
                               {"addr": msg.addr,
                                "owner": entry.owner})
        entry.await_owner_data = True
        entry.grant = msg
        self._reply(entry.owner, Inv(msg.addr, entry.owner))
        entry.pending_acks = 1

    # -- acknowledgments ----------------------------------------------------------
    def _on_inv_ack(self, msg: InvAck) -> None:
        line = self.cache.lookup(msg.addr)
        if msg.had_data:
            if line is not None:
                line.version = msg.version
                line.dirty = True
            else:
                # recalled data with no resident line: write through
                self.machine.memory_image[msg.addr] = msg.version
                self.dram.write(msg.addr)
        stray = self._stray_acks.get(msg.addr, 0)
        if stray > 0:
            # answer to an eviction recall, not to a live transaction
            if stray == 1:
                self._stray_acks.pop(msg.addr, None)
            else:
                self._stray_acks[msg.addr] = stray - 1
            return
        entry = self._entry(msg.addr)
        if entry.pending_acks > 0:
            entry.pending_acks -= 1
        if entry.pending_acks > 0:
            return
        entry.await_owner_data = False
        grant = entry.grant
        entry.grant = None
        if grant is None:
            self._unpark(entry)
            return
        if line is None:  # pragma: no cover - entry pinned while busy
            raise RuntimeError("directory line lost mid-transaction")
        if isinstance(grant, GetM):
            self._grant_ownership(grant, entry, line)
        elif isinstance(grant, GetS):
            entry.owner = None
            entry.sharers.add(grant.sm)
            self._reply(grant.sm, DataS(grant.addr, grant.sm,
                                        line.version))
            self._unpark(entry)
        elif isinstance(grant, MemAtmD):
            self._perform_atomic(grant, entry, line)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected grant: {grant!r}")

    def _on_putm(self, msg: PutM) -> None:
        entry = self._entry(msg.addr)
        line = self.cache.lookup(msg.addr)
        if line is not None:
            line.version = msg.version
            line.dirty = True
        else:
            self.machine.memory_image[msg.addr] = msg.version
            self.dram.write(msg.addr)
        if entry.owner == msg.sm:
            entry.owner = None
        if entry.await_owner_data:
            # the writeback satisfies an outstanding recall
            self._on_inv_ack(InvAck(msg.addr, msg.sm, msg.version,
                                    had_data=False))

    # -- atomics ---------------------------------------------------------------
    def _atomic(self, msg: MemAtmD, entry: _DirEntry,
                line: CacheLine) -> None:
        targets = set(entry.sharers)
        targets.discard(msg.sm)
        if entry.owner is not None:
            # recall the owner's copy even when the owner is the
            # requesting SM: its DataM may have raced past this atomic
            # and the newest data then sits modified in its L1 (the
            # Inv ack carries the data back before the RMW executes)
            targets.add(entry.owner)
        if targets:
            self._counters["dir_invalidations"] += len(targets)
            entry.pending_acks = len(targets)
            entry.grant = msg
            for sm in targets:
                self._reply(sm, Inv(msg.addr, sm))
            return
        self._perform_atomic(msg, entry, line)

    def _perform_atomic(self, msg: MemAtmD, entry: _DirEntry,
                        line: CacheLine) -> None:
        self._counters["l2_atomics"] += 1
        old_version = line.version
        line.version = msg.version
        line.dirty = True
        entry.sharers = set()
        entry.owner = None
        self.machine.versions.record_wts(msg.addr, msg.version,
                                         self.engine.now)
        self._reply(msg.sm, AtmAckD(msg.addr, msg.sm, old_version,
                                    version=msg.version))
        self._unpark(entry)

    def _unpark(self, entry: _DirEntry) -> None:
        while entry.parked and not entry.busy:
            self._process(entry.parked.popleft())

    # -- fills / directory eviction ------------------------------------------------
    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        line, evicted = self.cache.allocate(addr, self._dir_free)
        if line is None:
            return None
        if evicted is not None:
            self._evict_directory_entry(evicted)
        line.version = self._memory_version(addr)
        line.dirty = False
        return line

    def _entry_busy(self, addr: int) -> bool:
        entry = self._dir.get(addr)
        return entry is not None and entry.busy

    def _evict_directory_entry(self, evicted: CacheLine) -> None:
        """Recall every cached copy before dropping the entry (§II-C's
        recall traffic); the stale-sharer acks are fire-and-forget."""
        self._counters["l2_evictions"] += 1
        entry = self._dir.pop(evicted.addr, None)
        if entry is not None:
            targets = set(entry.sharers)
            if entry.owner is not None:
                targets.add(entry.owner)
            if targets:
                self._counters["dir_recall_invalidations"] += len(targets)
                self._stray_acks[evicted.addr] = (
                    self._stray_acks.get(evicted.addr, 0) + len(targets))
                for sm in targets:
                    self._reply(sm, Inv(evicted.addr, sm))
        self._writeback(evicted)
