"""Shared protocol plumbing: messages, controller bases, waiter records.

Every protocol is expressed as a per-SM L1 controller plus a per-bank
L2 controller exchanging messages over the NoC.  The bases here own
the mechanics all protocols share — message sizing, the L2 bank's
service pipeline, the miss path to DRAM — so each protocol file only
contains its actual state machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mem.cache import CacheArray, CacheLine
from repro.mem.mshr import MSHRFullError, MSHRTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

class Message:
    """Base class for everything that crosses the NoC.

    Concrete messages define :meth:`payload_bytes` (on top of the
    common header) and a traffic ``kind`` ("ctrl" or "data") used by
    the Figure-15 accounting.  ``addr`` is always a line address.
    """

    kind = "ctrl"
    # True when every instance of the class has the same on-wire size,
    # letting the Machine cache the size per class.  Classes whose
    # payload varies per instance (e.g. MESI's InvAck) must set False.
    uniform_size = True

    __slots__ = ("addr", "sm")

    def __init__(self, addr: int, sm: int) -> None:
        self.addr = addr
        self.sm = sm

    def payload_bytes(self, config) -> int:
        """Bytes carried beyond the routing header."""
        return 0

    def size(self, config) -> int:
        """Total on-wire size of the message."""
        return config.noc_header_bytes + self.payload_bytes(config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} addr={self.addr:#x} sm={self.sm}>"


# ---------------------------------------------------------------------------
# waiter records
# ---------------------------------------------------------------------------

class LoadWaiter:
    """A warp's load parked in an L1 MSHR entry."""

    __slots__ = ("warp", "on_done", "issue_cycle")

    def __init__(self, warp: "Warp", on_done: Callable[[], None],
                 issue_cycle: int) -> None:
        self.warp = warp
        self.on_done = on_done
        self.issue_cycle = issue_cycle


class PendingStore:
    """A store issued by the SM, awaiting its L2 acknowledgment."""

    __slots__ = ("warp", "addr", "version", "on_done", "issue_cycle")

    def __init__(self, warp: "Warp", addr: int, version: int,
                 on_done: Callable[[], None], issue_cycle: int) -> None:
        self.warp = warp
        self.addr = addr
        self.version = version
        self.on_done = on_done
        self.issue_cycle = issue_cycle


class PendingAtomic:
    """An atomic RMW issued by the SM, awaiting the L2's old value."""

    __slots__ = ("warp", "addr", "version", "on_done", "issue_cycle")

    def __init__(self, warp: "Warp", addr: int, version: int,
                 on_done: Callable[[], None], issue_cycle: int) -> None:
        self.warp = warp
        self.addr = addr
        self.version = version
        self.on_done = on_done
        self.issue_cycle = issue_cycle


def pop_pending(queue, version: Optional[int]):
    """Pop the pending store/atomic an acknowledgment answers.

    Acks carry the version of the request they acknowledge whenever the
    protocol can (all four protocols thread it through).  Matching by
    version matters because the L2's MSHR-full retry path re-enters the
    bank pipeline on an independent timer, which can reorder same-line
    requests from one SM — plain FIFO popping would then pair each ack
    with the wrong pending entry, tearing atomic old/new pairs and warp
    timestamp updates.  Falls back to FIFO when the ack carries no
    version (unit tests that hand-build messages).
    """
    if version is not None:
        for index, pending in enumerate(queue):
            if pending.version == version:
                del queue[index]
                return pending
    return queue.popleft()


# ---------------------------------------------------------------------------
# L1 controller base
# ---------------------------------------------------------------------------

class L1ControllerBase:
    """Per-SM private-cache controller.

    The SM calls :meth:`load` / :meth:`store`; both return True when
    the access was accepted and False when a structural hazard (full
    MSHR) forces the SM to retry later.  Completion is signalled
    through the ``on_done`` callback.
    """

    __slots__ = ("sm_id", "machine", "config", "engine", "stats",
                 "_counters", "_l1_latency", "_load_hist", "_store_hist",
                 "_atomic_hist", "_num_banks", "_port", "mshr", "trace",
                 "audit", "track")

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        self.sm_id = sm_id
        self.machine = machine
        self.config = machine.config
        self.engine = machine.engine
        self.stats = machine.stats
        # raw counter mapping for the load/store hot paths
        self._counters = machine.stats.counters
        self._l1_latency = machine.config.l1_latency
        # latency histograms, bound lazily on first sample so that a
        # run's set of existing histograms is unchanged (RunStats
        # equality and the golden fixtures depend on which histograms
        # exist, not just their contents)
        self._load_hist = None
        self._store_hist = None
        self._atomic_hist = None
        # request-routing caches for the inlined _send below
        self._num_banks = machine.config.num_l2_banks
        self._port = ("sm", sm_id)
        self.mshr = MSHRTable(machine.config.l1_mshr_entries)
        # observability refs, cached once; None keeps the hot paths to
        # a single identity check per instrumentation point
        obs = machine.obs
        self.trace = obs.tracer if obs is not None else None
        self.audit = obs.audit if obs is not None else None
        # unit_prefix is "" single-GPU (audit logs bit-identical to
        # pre-multigpu runs) and "g<i>:" inside a cluster
        self.track = f"{machine.unit_prefix}sm{sm_id}"

    # -- SM-facing interface ---------------------------------------------------
    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        raise NotImplementedError

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        raise NotImplementedError

    def atomic(self, warp: "Warp", addr: int,
               on_done: Callable[[], None]) -> bool:
        """Issue an atomic RMW (performed at the L2, like real GPUs)."""
        raise NotImplementedError

    def receive(self, msg: Message) -> None:
        """Handle a response delivered by the NoC."""
        raise NotImplementedError

    def flush(self) -> None:
        """Invalidate private state at kernel boundaries."""

    # -- helpers -----------------------------------------------------------------
    def _send(self, msg: Message) -> None:
        """Route a request to the home L2 bank of ``msg.addr``.

        ``Machine.send_to_bank``, inlined: every request crosses this
        method, and the extra frame showed up in profiles.
        """
        machine = self.machine
        bank_id = msg.addr % self._num_banks
        size = machine._msg_sizes.get(type(msg))
        if size is None:
            size = machine._size_of(msg)
        machine.noc.send(self._port, machine._bank_ports[bank_id], size,
                         msg.kind, machine.l2_banks[bank_id].receive, msg)

    def _complete(self, callback: Callable[[], None],
                  delay: int = 0) -> None:
        """Fire an SM completion callback ``delay`` cycles from now."""
        engine = self.engine
        engine.post(engine.now + delay, callback)


# ---------------------------------------------------------------------------
# L2 bank base
# ---------------------------------------------------------------------------

class L2BankBase:
    """One bank of the shared L2 cache.

    Owns the tag array, the bank's service pipeline (requests occupy
    the bank for ``l2_service`` cycles and complete an access
    ``l2_latency`` later), and the miss path to the bank's DRAM
    partition.  Subclasses implement :meth:`_process` (the protocol
    state machine) plus the fill/eviction hooks.
    """

    __slots__ = ("bank_id", "machine", "config", "engine", "stats",
                 "_counters", "_port", "cache", "mshr", "dram", "_ready_at",
                 "_l2_service", "_l2_latency", "_retry_interval",
                 "trace", "audit", "track")

    def __init__(self, bank_id: int, machine: "Machine") -> None:
        self.bank_id = bank_id
        self.machine = machine
        self.config = machine.config
        self.engine = machine.engine
        self.stats = machine.stats
        self._counters = machine.stats.counters
        self._l2_service = machine.config.l2_service
        self._l2_latency = machine.config.l2_latency
        self._retry_interval = machine.config.mshr_retry_interval
        self._port = ("l2", bank_id)
        self.cache = CacheArray(machine.config.l2_sets,
                                machine.config.l2_assoc)
        self.mshr = MSHRTable(machine.config.l2_mshr_entries)
        self.dram = machine.drams[bank_id]
        self._ready_at = 0
        obs = machine.obs
        self.trace = obs.tracer if obs is not None else None
        self.audit = obs.audit if obs is not None else None
        self.track = f"{machine.unit_prefix}l2b{bank_id}"

    # -- arrival / pipeline --------------------------------------------------
    def receive(self, msg: Message) -> None:
        """A request arrived from the NoC; enter the bank pipeline."""
        self._counters["l2_access"] += 1
        engine = self.engine
        now = engine.now
        ready = self._ready_at
        start = ready if ready > now else now
        self._ready_at = start + self._l2_service
        engine.post(start + self._l2_latency, self._process, (msg,))

    def _process(self, msg: Message) -> None:
        raise NotImplementedError

    # -- miss path ----------------------------------------------------------------
    def _miss(self, msg: Message) -> None:
        """Park ``msg`` on the line's MSHR entry and fetch from DRAM.

        When the MSHR is full the message is retried through the bank
        pipeline after a back-off, modelling input-queue pressure.
        """
        self._counters["l2_miss"] += 1
        mshr = self.mshr
        entry = mshr.get(msg.addr)
        if entry is None:
            if mshr.full:
                # checked, not raised: MSHRFullError per stalled access
                # was measurable in profiles under the small presets
                self._counters["l2_mshr_stall"] += 1
                self.engine.schedule(self._retry_interval,
                                     self.receive, msg)
                return
            entry = mshr.allocate(msg.addr)
        entry.waiters.append(msg)
        if not entry.issued:
            entry.issued = True
            self.dram.read(msg.addr, self._dram_fill, msg.addr)

    def _dram_fill(self, addr: int) -> None:
        """Data returned from DRAM: install the line, replay waiters."""
        line = self._install_fill(addr)
        if line is None:
            # replacement stalled (TC inclusion): try again shortly
            self._fill_stalled(addr)
            return
        for msg in self.mshr.drain(addr):
            self._process(msg)

    def _fill_stalled(self, addr: int) -> None:
        """Book a retry for a fill whose replacement stalled.

        One ``l2_evict_stall`` count per retry interval spent waiting.
        Protocols that can bound when the stall clears (TC's leases)
        override this to book several intervals at once.
        """
        self._counters["l2_evict_stall"] += 1
        self.engine.schedule(self._retry_interval, self._retry_fill, addr)

    def _retry_fill(self, addr: int) -> None:
        """Retry a stalled fill.

        Identical to :meth:`_dram_fill` by default; protocols whose
        installs can stall repeatedly (TC's lease-pinned inclusive L2)
        override this with a cheap can-it-succeed probe so the retry
        storm does not pay the full allocate path on every attempt.
        """
        self._dram_fill(addr)

    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        """Install a DRAM fill; protocol chooses victims and metadata."""
        raise NotImplementedError

    # -- eviction helpers -------------------------------------------------------
    def _writeback(self, evicted: CacheLine) -> None:
        """Write a dirty victim to memory and update the memory image."""
        if evicted.dirty:
            self.machine.memory_image[evicted.addr] = evicted.version
            self.dram.write(evicted.addr)

    def _memory_version(self, addr: int) -> int:
        """The version currently held by DRAM for ``addr``."""
        return self.machine.memory_image.get(addr, 0)

    # -- response path -----------------------------------------------------------
    def _reply(self, sm_id: int, msg: Message) -> None:
        # Machine.send_to_sm, inlined (see L1ControllerBase._send)
        machine = self.machine
        size = machine._msg_sizes.get(type(msg))
        if size is None:
            size = machine._size_of(msg)
        machine.noc.send(self._port, machine._sm_ports[sm_id], size,
                         msg.kind, machine.l1s[sm_id].receive, msg)
