"""Temporal Coherence (TC) — the time-based baseline (Section II-D).

TC assigns each L1 copy a *physical-time* lease counted on globally
synchronized counters.  The behaviours that G-TSC is designed to
remove are modelled faithfully:

* **Write stalls (TC-Strong / SC):** a store must wait at the L2 until
  every outstanding lease on the line has expired; while it waits, all
  subsequent requests to the line queue behind it (Section II-D3).
* **GWCT (TC-Weak / RC):** stores complete immediately but their
  acknowledgment carries the Global Write Completion Time — the cycle
  at which all stale copies will have self-invalidated — and fences
  stall the warp until that physical time.
* **Inclusive L2 (Section II-D2):** a line with an unexpired lease
  cannot be evicted; when every way of a set is lease-pinned,
  replacement itself stalls.
* **Expiration misses:** leases expire with wall-clock time whether or
  not anybody wrote, so read-mostly data is periodically refetched —
  with full data responses, since TC has no data-less renewal.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.config import CombiningPolicy, Consistency
from repro.mem.cache import CacheArray, CacheLine
from repro.protocols.base import (
    L1ControllerBase,
    L2BankBase,
    LoadWaiter,
    Message,
    PendingAtomic,
    PendingStore,
    pop_pending,
)
from repro.validate.versions import AtomicRecord, LoadRecord, StoreRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

class TCRd(Message):
    """Read request; TC has no renewal, so no timestamps are carried."""

    kind = "ctrl"
    __slots__ = ()


class TCWr(Message):
    """Write-through store with data."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class TCFill(Message):
    """Data plus the granted lease's expiry time (32-bit)."""

    kind = "data"
    __slots__ = ("version", "expiry")

    def __init__(self, addr: int, sm: int, version: int,
                 expiry: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version
        self.expiry = expiry

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes + config.line_size


class TCWrAck(Message):
    """Write acknowledgment carrying the GWCT (32-bit).

    ``version`` echoes the acknowledged store (request tag, no wire
    cost) so the L1 pairs the ack correctly under L2 retry reordering.
    """

    kind = "ctrl"
    __slots__ = ("gwct", "version")

    def __init__(self, addr: int, sm: int, gwct: int,
                 version: int = None) -> None:
        self.addr = addr
        self.sm = sm
        self.gwct = gwct
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes


class TCAtm(Message):
    """Atomic RMW request (operand word only)."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        self.addr = addr
        self.sm = sm
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


class TCAtmAck(Message):
    """Atomic response: old value plus GWCT."""

    kind = "ctrl"
    __slots__ = ("old_version", "gwct", "version")

    def __init__(self, addr: int, sm: int, old_version: int,
                 gwct: int, version: int = None) -> None:
        self.addr = addr
        self.sm = sm
        self.old_version = old_version
        self.gwct = gwct
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes + 8


# ---------------------------------------------------------------------------
# L1 controller
# ---------------------------------------------------------------------------

class TCL1Controller(L1ControllerBase):
    """Per-SM L1 under Temporal Coherence."""

    __slots__ = ("cache", "_pending_stores", "_pending_atomics",
                 "_handlers", "_combine")

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        config = machine.config
        self.cache = CacheArray(config.l1_sets, config.l1_assoc)
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        self._pending_atomics: Dict[int, Deque[PendingAtomic]] = {}
        # response dispatch by concrete class (same idiom as G-TSC)
        self._handlers = {
            TCFill: self._on_fill,
            TCWrAck: self._on_write_ack,
            TCAtmAck: self._on_atomic_ack,
        }
        self._combine = config.combining is CombiningPolicy.MSHR

    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        counters = self._counters
        counters["l1_access"] += 1
        engine = self.engine
        now = engine.now
        cache = self.cache
        slot = cache._where.get(addr)
        if slot is not None:
            cache._tick += 1
            cache._lru[slot] = cache._tick
            if now < cache.expiry_col[slot]:
                counters["l1_hit"] += 1
                self._record_load(warp, addr, cache.version_col[slot],
                                  now, hit=True)
                # Engine.post, inlined (one completion per L1 hit)
                time = now + self._l1_latency
                seq = engine._seq
                engine._seq = seq + 1
                event = [time, seq, on_done, ()]
                if time < engine._limit:
                    bucket = time & engine._mask
                    engine._buckets[bucket].append(event)
                    engine._filled[bucket] = 1
                else:
                    heappush(engine._heap, event)
                    engine.heap_deferred += 1
                return True

        counters["l1_miss"] += 1
        if slot is not None:
            # tag matched but the lease ran out: the self-invalidation
            # ("coherence") miss that physical time forces on TC
            counters["l1_expired_miss"] += 1

        waiter = LoadWaiter(warp, on_done, now)
        entry = self.mshr.get(addr)
        if entry is not None and self._combine:
            entry.waiters.append(waiter)
            return True
        if entry is None:
            if self.mshr.full:
                counters["l1_mshr_stall"] += 1
                return False
            entry = self.mshr.allocate(addr)
        entry.waiters.append(waiter)
        self._send(TCRd(addr, self.sm_id))
        entry.issued = True
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        counters = self._counters
        counters["l1_access"] += 1
        counters["l1_store"] += 1
        version = self.machine.versions.new_version(addr)
        # write-through, no-write-allocate: drop the (now stale) local
        # copy so this SM's later reads fetch the written value from L2
        self.cache.invalidate(addr)
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        queue = self._pending_stores.get(addr)
        if queue is None:
            queue = self._pending_stores[addr] = deque()
        queue.append(pending)
        self._send(TCWr(addr, self.sm_id, version))
        return True

    def atomic(self, warp: "Warp", addr: int,
               on_done: Callable[[], None]) -> bool:
        counters = self._counters
        counters["l1_access"] += 1
        counters["l1_atomic"] += 1
        version = self.machine.versions.new_version(addr)
        # like stores: performed at L2, local copy dropped
        self.cache.invalidate(addr)
        pending = PendingAtomic(warp, addr, version, on_done,
                                self.engine.now)
        queue = self._pending_atomics.get(addr)
        if queue is None:
            queue = self._pending_atomics[addr] = deque()
        queue.append(pending)
        self._send(TCAtm(addr, self.sm_id, version))
        return True

    def receive(self, msg: Message) -> None:
        handler = self._handlers.get(type(msg))
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at TC L1: {msg!r}")
        handler(msg)

    def _on_fill(self, msg: TCFill) -> None:
        if msg.expiry <= self.engine.now:
            # the lease died in flight (NoC delay): the value was
            # current when the L2 served it, so the waiting loads may
            # still consume it, but the line cannot be cached — the
            # next access will miss again (the cost of a short lease)
            self._counters["l1_dead_on_arrival"] += 1
            if self.trace is not None:
                self.trace.instant(self.engine.now, self.track,
                                   "dead_on_arrival",
                                   {"addr": msg.addr,
                                    "expiry": msg.expiry})
        else:
            cache = self.cache
            line, _evicted = cache.allocate(msg.addr)
            if line is not None:
                line.version = msg.version
                line.expiry = msg.expiry
                slot = cache._where[msg.addr]
                cache.version_col[slot] = msg.version
                cache.expiry_col[slot] = msg.expiry
        engine = self.engine
        now = engine.now
        for waiter in self.mshr.drain(msg.addr):
            self._record_load(waiter.warp, msg.addr, msg.version,
                              waiter.issue_cycle, hit=False)
            engine.post(now, waiter.on_done)

    def _on_write_ack(self, msg: TCWrAck) -> None:
        queue = self._pending_stores.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"write ack with no pending store: {msg!r}")
        pending = pop_pending(queue, msg.version)
        if not queue:
            self._pending_stores.pop(msg.addr, None)
        # TC-Weak: remember when this write becomes globally visible
        warp = pending.warp
        if msg.gwct > warp.gwct:
            warp.gwct = msg.gwct
        now = self.engine.now
        hist = self._store_hist
        if hist is None:
            hist = self._store_hist = self.stats.hist.get("store_latency")
        hist.add(now - pending.issue_cycle)
        log = self.machine.log
        if log.enabled:
            log.stores.append(StoreRecord(
                warp_uid=warp.uid,
                addr=msg.addr,
                version=pending.version,
                logical_ts=0,
                epoch=0,
                issue_cycle=pending.issue_cycle,
                complete_cycle=now,
            ))
        self.engine.post(now, pending.on_done)

    def _on_atomic_ack(self, msg: TCAtmAck) -> None:
        queue = self._pending_atomics.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"atomic ack with no pending RMW: {msg!r}")
        pending = pop_pending(queue, msg.version)
        if not queue:
            self._pending_atomics.pop(msg.addr, None)
        warp = pending.warp
        if msg.gwct > warp.gwct:
            warp.gwct = msg.gwct
        now = self.engine.now
        hist = self._atomic_hist
        if hist is None:
            hist = self._atomic_hist = self.stats.hist.get("atomic_latency")
        hist.add(now - pending.issue_cycle)
        log = self.machine.log
        if log.enabled:
            log.atomics.append(AtomicRecord(
                warp_uid=warp.uid,
                addr=msg.addr,
                old_version=msg.old_version,
                new_version=pending.version,
                logical_ts=0,
                epoch=0,
                issue_cycle=pending.issue_cycle,
                complete_cycle=now,
            ))
        self.engine.post(now, pending.on_done)

    def flush(self) -> None:
        self.cache.flush()

    def _record_load(self, warp: "Warp", addr: int, version: int,
                     issue_cycle: int, hit: bool) -> None:
        now = self.engine.now
        hist = self._load_hist
        if hist is None:
            hist = self._load_hist = self.stats.hist.get("load_latency")
        hist.add(now - issue_cycle)
        log = self.machine.log
        if log.enabled:
            log.loads.append(LoadRecord(
                warp_uid=warp.uid,
                addr=addr,
                version=version,
                logical_ts=0,
                epoch=0,
                issue_cycle=issue_cycle,
                complete_cycle=now,
                l1_hit=hit,
            ))


# ---------------------------------------------------------------------------
# L2 bank
# ---------------------------------------------------------------------------

class TCL2Bank(L2BankBase):
    """One bank of the shared cache under Temporal Coherence.

    ``line.expiry`` tracks the latest lease end granted on the line.
    Under TC-Strong a write arriving before that time parks, blocks the
    line, and performs exactly at expiry; under TC-Weak it performs
    immediately and the ack carries ``max(now, expiry)`` as the GWCT.
    """

    __slots__ = ("strong", "_blocked", "_handlers", "_tc_lease",
                 "_lease_gate", "_lease_free", "_set_lines", "_free_ways",
                 "_expiry", "_where_map", "_assoc", "_set_min")

    def __init__(self, bank_id: int, machine: "Machine") -> None:
        super().__init__(bank_id, machine)
        self.strong = machine.config.consistency is Consistency.SC
        # lines currently blocked behind a waiting write
        self._blocked: Dict[int, Deque[Message]] = {}
        self._handlers = {
            TCRd: self._read,
            TCWr: self._write,
            TCAtm: self._atomic,
        }
        self._tc_lease = machine.config.tc_lease
        # prebound eviction predicate for _install_fill: the inclusive
        # L2 thrashes under small presets, so the fill path must not
        # allocate a closure per attempt (_lease_gate carries `now`)
        self._lease_gate = 0
        self._lease_free = self._lease_expired_and_unblocked
        # per-set line-object views for _retry_fill's raw probe
        cache = self.cache
        lines = cache._lines
        assoc = cache.assoc
        self._set_lines = [lines[s * assoc:(s + 1) * assoc]
                           for s in range(cache.num_sets)]
        self._free_ways = cache._free
        # the retry probe reads lease expiry straight from the cache's
        # packed column (dual-written at _read's grant; allocate zeroes
        # it on slot reuse), so a still-pinned set is rejected with one
        # C-level min() instead of a way scan
        self._expiry = cache.expiry_col
        self._where_map = cache._where
        self._assoc = assoc
        # cached lower bound on each set's minimum lease expiry: while
        # it exceeds `now`, every way is provably still leased and the
        # retry probe is O(1).  Grants only raise slot expiries (the
        # bound stays valid); installs zero the new line's expiry and
        # drop the bound with it; the exact min refreshes the bound
        # whenever the probe computes it anyway.
        self._set_min = [0] * cache.num_sets

    def _lease_expired_and_unblocked(self, line: CacheLine) -> bool:
        return (line.expiry <= self._lease_gate
                and line.addr not in self._blocked)

    # -- dispatch ------------------------------------------------------------
    def _process(self, msg: Message) -> None:
        blocked = self._blocked.get(msg.addr)
        if blocked is not None:
            # a write is waiting on this line: everything queues behind
            # it (Section II-D3's lease-induced contention)
            blocked.append(msg)
            self._counters["l2_blocked_requests"] += 1
            return
        handler = self._handlers.get(type(msg))
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at TC L2: {msg!r}")
        handler(msg)

    def _read(self, msg: TCRd) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        grant = self.engine.now + self._tc_lease
        if grant > line.expiry:
            line.expiry = grant
            self._expiry[self._where_map[msg.addr]] = grant
        self._reply(msg.sm, TCFill(msg.addr, msg.sm, line.version, grant))

    def _write(self, msg: TCWr) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        now = self.engine.now
        if self.strong and now < line.expiry:
            # TC-Strong: wait for every outstanding lease to expire
            self._counters["l2_write_stalls"] += 1
            self._counters["l2_write_stall_cycles"] += line.expiry - now
            if self.trace is not None:
                self.trace.complete(now, line.expiry, self.track,
                                    "write_stall", {"addr": msg.addr})
            self._blocked[msg.addr] = deque()
            self.engine.post(line.expiry, self._perform_blocked_write,
                             (msg,))
            return
        self._perform_write(msg, line)

    def _perform_blocked_write(self, msg: TCWr) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:  # pragma: no cover - lease-pinned, can't evict
            raise RuntimeError("blocked line evicted under inclusion")
        self._perform_write(msg, line)
        # replay everything that queued behind the write, in order
        parked = self._blocked.pop(msg.addr, deque())
        for queued in parked:
            self._process(queued)

    def _perform_write(self, msg: TCWr, line: CacheLine) -> None:
        now = self.engine.now
        expiry = line.expiry
        gwct = expiry if expiry > now else now
        line.version = msg.version
        line.dirty = True
        self.cache.version_col[self._where_map[msg.addr]] = msg.version
        self.machine.versions.record_wts(msg.addr, msg.version, now)
        self._reply(msg.sm, TCWrAck(msg.addr, msg.sm, gwct,
                                    version=msg.version))

    def _atomic(self, msg: TCAtm) -> None:
        """Atomic RMW: follows the write path, returning the old value.

        TC-Strong parks the atomic behind unexpired leases exactly
        like a store; TC-Weak performs it immediately and reports the
        GWCT, so the atomicity point is the L2 but global visibility
        still waits for self-invalidation.
        """
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self._counters["l2_hit"] += 1
        self._counters["l2_atomics"] += 1
        now = self.engine.now
        if self.strong and now < line.expiry:
            self._counters["l2_write_stalls"] += 1
            self._counters["l2_write_stall_cycles"] += line.expiry - now
            if self.trace is not None:
                self.trace.complete(now, line.expiry, self.track,
                                    "atomic_stall", {"addr": msg.addr})
            self._blocked[msg.addr] = deque()
            self.engine.post(line.expiry, self._perform_blocked_atomic,
                             (msg,))
            return
        self._perform_atomic(msg, line)

    def _perform_blocked_atomic(self, msg: TCAtm) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:  # pragma: no cover - lease-pinned, can't evict
            raise RuntimeError("blocked line evicted under inclusion")
        self._perform_atomic(msg, line)
        parked = self._blocked.pop(msg.addr, deque())
        for queued in parked:
            self._process(queued)

    def _perform_atomic(self, msg: TCAtm, line: CacheLine) -> None:
        now = self.engine.now
        expiry = line.expiry
        gwct = expiry if expiry > now else now
        old_version = line.version
        line.version = msg.version
        line.dirty = True
        self.cache.version_col[self._where_map[msg.addr]] = msg.version
        self.machine.versions.record_wts(msg.addr, msg.version, now)
        self._reply(msg.sm, TCAtmAck(msg.addr, msg.sm, old_version, gwct,
                                     version=msg.version))

    # -- fill / inclusion -------------------------------------------------------
    def _retry_fill(self, addr: int) -> None:
        """Retry a lease-stalled fill with a raw can-succeed probe.

        Under small presets the inclusive L2 thrashes and a fill can
        stall for many lease periods; going through the full allocate
        path on every retry dominates the run.  The probe answers
        exactly the question ``_install_fill`` would: is there an
        invalid way, or a way whose lease expired and whose address is
        not write-blocked?  Only then is the full install path taken,
        so counters and timing match the naive retry loop bit for bit.
        """
        set_index = addr % self.cache.num_sets
        if not self._free_ways[set_index] \
                and addr not in self._where_map:
            now = self.engine.now
            if self._set_min[set_index] > now:
                pinned = True      # every lease provably still running
            else:
                base = set_index * self._assoc
                lease_min = min(self._expiry[base:base + self._assoc])
                if lease_min > now:
                    # every lease still running; remember the exact min
                    # so the remaining retries of this stall are O(1)
                    self._set_min[set_index] = lease_min
                    pinned = True
                else:
                    # some lease has expired; the way scan decides
                    # whether the expired line is also unblocked
                    blocked = self._blocked
                    pinned = True
                    for line in self._set_lines[set_index]:
                        if line.expiry <= now \
                                and line.addr not in blocked:
                            pinned = False
                            break
            if pinned:
                # still pinned: book one stall interval and re-enter.
                # engine.schedule, inlined — this is the hottest
                # reschedule in TC runs (one event per interval per
                # stalled fill; the grid cannot be skipped ahead
                # because each retry's slot in its cycle's FIFO bucket
                # is part of the bit-identical event order)
                self._counters["l2_evict_stall"] += 1
                engine = self.engine
                time = now + self._retry_interval
                seq = engine._seq
                engine._seq = seq + 1
                event = [time, seq, self._retry_fill, (addr,)]
                if time < engine._limit:
                    slot = time & engine._mask
                    engine._buckets[slot].append(event)
                    engine._filled[slot] = 1
                else:
                    heappush(engine._heap, event)
                    engine.heap_deferred += 1
                return
        line = self._install_fill(addr)
        for msg in self.mshr.drain(addr):
            self._process(msg)

    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        self._lease_gate = self.engine.now
        line, evicted = self.cache.allocate(addr, self._lease_free)
        if line is None:
            # every way lease-pinned: the delayed-eviction stall TC's
            # inclusive L2 suffers (Section II-D2)
            return None
        if evicted is not None:
            self._counters["l2_evictions"] += 1
            self._writeback(evicted)
        line.version = self._memory_version(addr)
        line.dirty = False
        line.expiry = 0    # allocate already zeroed the expiry column
        self.cache.version_col[self._where_map[addr]] = line.version
        self._set_min[addr % self.cache.num_sets] = 0
        return line
