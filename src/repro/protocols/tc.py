"""Temporal Coherence (TC) — the time-based baseline (Section II-D).

TC assigns each L1 copy a *physical-time* lease counted on globally
synchronized counters.  The behaviours that G-TSC is designed to
remove are modelled faithfully:

* **Write stalls (TC-Strong / SC):** a store must wait at the L2 until
  every outstanding lease on the line has expired; while it waits, all
  subsequent requests to the line queue behind it (Section II-D3).
* **GWCT (TC-Weak / RC):** stores complete immediately but their
  acknowledgment carries the Global Write Completion Time — the cycle
  at which all stale copies will have self-invalidated — and fences
  stall the warp until that physical time.
* **Inclusive L2 (Section II-D2):** a line with an unexpired lease
  cannot be evicted; when every way of a set is lease-pinned,
  replacement itself stalls.
* **Expiration misses:** leases expire with wall-clock time whether or
  not anybody wrote, so read-mostly data is periodically refetched —
  with full data responses, since TC has no data-less renewal.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.config import CombiningPolicy, Consistency
from repro.mem.cache import CacheArray, CacheLine
from repro.protocols.base import (
    L1ControllerBase,
    L2BankBase,
    LoadWaiter,
    Message,
    PendingAtomic,
    PendingStore,
    pop_pending,
)
from repro.validate.versions import AtomicRecord, LoadRecord, StoreRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine
    from repro.gpu.warp import Warp


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

class TCRd(Message):
    """Read request; TC has no renewal, so no timestamps are carried."""

    kind = "ctrl"
    __slots__ = ()


class TCWr(Message):
    """Write-through store with data."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.line_size


class TCFill(Message):
    """Data plus the granted lease's expiry time (32-bit)."""

    kind = "data"
    __slots__ = ("version", "expiry")

    def __init__(self, addr: int, sm: int, version: int,
                 expiry: int) -> None:
        super().__init__(addr, sm)
        self.version = version
        self.expiry = expiry

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes + config.line_size


class TCWrAck(Message):
    """Write acknowledgment carrying the GWCT (32-bit).

    ``version`` echoes the acknowledged store (request tag, no wire
    cost) so the L1 pairs the ack correctly under L2 retry reordering.
    """

    kind = "ctrl"
    __slots__ = ("gwct", "version")

    def __init__(self, addr: int, sm: int, gwct: int,
                 version: int = None) -> None:
        super().__init__(addr, sm)
        self.gwct = gwct
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes


class TCAtm(Message):
    """Atomic RMW request (operand word only)."""

    kind = "data"
    __slots__ = ("version",)

    def __init__(self, addr: int, sm: int, version: int) -> None:
        super().__init__(addr, sm)
        self.version = version

    def payload_bytes(self, config) -> int:
        return 8


class TCAtmAck(Message):
    """Atomic response: old value plus GWCT."""

    kind = "ctrl"
    __slots__ = ("old_version", "gwct", "version")

    def __init__(self, addr: int, sm: int, old_version: int,
                 gwct: int, version: int = None) -> None:
        super().__init__(addr, sm)
        self.old_version = old_version
        self.gwct = gwct
        self.version = version

    def payload_bytes(self, config) -> int:
        return config.tc_timestamp_bytes + 8


# ---------------------------------------------------------------------------
# L1 controller
# ---------------------------------------------------------------------------

class TCL1Controller(L1ControllerBase):
    """Per-SM L1 under Temporal Coherence."""

    def __init__(self, sm_id: int, machine: "Machine") -> None:
        super().__init__(sm_id, machine)
        config = machine.config
        self.cache = CacheArray(config.l1_sets, config.l1_assoc)
        self._pending_stores: Dict[int, Deque[PendingStore]] = {}
        self._pending_atomics: Dict[int, Deque[PendingAtomic]] = {}

    def load(self, warp: "Warp", addr: int,
             on_done: Callable[[], None]) -> bool:
        self.stats.add("l1_access")
        line = self.cache.lookup(addr)
        if line is not None and self.engine.now < line.expiry:
            self.stats.add("l1_hit")
            self._record_load(warp, addr, line.version, self.engine.now,
                              hit=True)
            self._complete(on_done, self.config.l1_latency)
            return True

        self.stats.add("l1_miss")
        if line is not None:
            # tag matched but the lease ran out: the self-invalidation
            # ("coherence") miss that physical time forces on TC
            self.stats.add("l1_expired_miss")

        waiter = LoadWaiter(warp, on_done, self.engine.now)
        entry = self.mshr.get(addr)
        combine = self.config.combining is CombiningPolicy.MSHR
        if entry is not None and combine:
            entry.waiters.append(waiter)
            return True
        if entry is None:
            if self.mshr.full:
                self.stats.add("l1_mshr_stall")
                return False
            entry = self.mshr.allocate(addr)
        entry.waiters.append(waiter)
        self._send(TCRd(addr, self.sm_id))
        entry.issued = True
        return True

    def store(self, warp: "Warp", addr: int,
              on_done: Callable[[], None]) -> bool:
        self.stats.add("l1_access")
        self.stats.add("l1_store")
        version = self.machine.versions.new_version(addr)
        # write-through, no-write-allocate: drop the (now stale) local
        # copy so this SM's later reads fetch the written value from L2
        self.cache.invalidate(addr)
        pending = PendingStore(warp, addr, version, on_done,
                               self.engine.now)
        self._pending_stores.setdefault(addr, deque()).append(pending)
        self._send(TCWr(addr, self.sm_id, version))
        return True

    def atomic(self, warp: "Warp", addr: int,
               on_done: Callable[[], None]) -> bool:
        self.stats.add("l1_access")
        self.stats.add("l1_atomic")
        version = self.machine.versions.new_version(addr)
        # like stores: performed at L2, local copy dropped
        self.cache.invalidate(addr)
        pending = PendingAtomic(warp, addr, version, on_done,
                                self.engine.now)
        self._pending_atomics.setdefault(addr, deque()).append(pending)
        self._send(TCAtm(addr, self.sm_id, version))
        return True

    def receive(self, msg: Message) -> None:
        if isinstance(msg, TCFill):
            self._on_fill(msg)
        elif isinstance(msg, TCWrAck):
            self._on_write_ack(msg)
        elif isinstance(msg, TCAtmAck):
            self._on_atomic_ack(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at TC L1: {msg!r}")

    def _on_fill(self, msg: TCFill) -> None:
        if msg.expiry <= self.engine.now:
            # the lease died in flight (NoC delay): the value was
            # current when the L2 served it, so the waiting loads may
            # still consume it, but the line cannot be cached — the
            # next access will miss again (the cost of a short lease)
            self.stats.add("l1_dead_on_arrival")
            if self.trace is not None:
                self.trace.instant(self.engine.now, self.track,
                                   "dead_on_arrival",
                                   {"addr": msg.addr,
                                    "expiry": msg.expiry})
        else:
            line, _evicted = self.cache.allocate(msg.addr)
            if line is not None:
                line.version = msg.version
                line.expiry = msg.expiry
        for waiter in self.mshr.drain(msg.addr):
            self._record_load(waiter.warp, msg.addr, msg.version,
                              waiter.issue_cycle, hit=False)
            self._complete(waiter.on_done)

    def _on_write_ack(self, msg: TCWrAck) -> None:
        queue = self._pending_stores.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"write ack with no pending store: {msg!r}")
        pending = pop_pending(queue, msg.version)
        if not queue:
            self._pending_stores.pop(msg.addr, None)
        # TC-Weak: remember when this write becomes globally visible
        pending.warp.gwct = max(pending.warp.gwct, msg.gwct)
        self.stats.hist.add("store_latency",
                            self.engine.now - pending.issue_cycle)
        self.machine.log.record_store(StoreRecord(
            warp_uid=pending.warp.uid,
            addr=msg.addr,
            version=pending.version,
            logical_ts=0,
            epoch=0,
            issue_cycle=pending.issue_cycle,
            complete_cycle=self.engine.now,
        ))
        self._complete(pending.on_done)

    def _on_atomic_ack(self, msg: TCAtmAck) -> None:
        queue = self._pending_atomics.get(msg.addr)
        if not queue:  # pragma: no cover - defensive
            raise RuntimeError(f"atomic ack with no pending RMW: {msg!r}")
        pending = pop_pending(queue, msg.version)
        if not queue:
            self._pending_atomics.pop(msg.addr, None)
        pending.warp.gwct = max(pending.warp.gwct, msg.gwct)
        self.stats.hist.add("atomic_latency",
                            self.engine.now - pending.issue_cycle)
        self.machine.log.record_atomic(AtomicRecord(
            warp_uid=pending.warp.uid,
            addr=msg.addr,
            old_version=msg.old_version,
            new_version=pending.version,
            logical_ts=0,
            epoch=0,
            issue_cycle=pending.issue_cycle,
            complete_cycle=self.engine.now,
        ))
        self._complete(pending.on_done)

    def flush(self) -> None:
        self.cache.flush()

    def _record_load(self, warp: "Warp", addr: int, version: int,
                     issue_cycle: int, hit: bool) -> None:
        self.stats.hist.add("load_latency",
                            self.engine.now - issue_cycle)
        self.machine.log.record_load(LoadRecord(
            warp_uid=warp.uid,
            addr=addr,
            version=version,
            logical_ts=0,
            epoch=0,
            issue_cycle=issue_cycle,
            complete_cycle=self.engine.now,
            l1_hit=hit,
        ))


# ---------------------------------------------------------------------------
# L2 bank
# ---------------------------------------------------------------------------

class TCL2Bank(L2BankBase):
    """One bank of the shared cache under Temporal Coherence.

    ``line.expiry`` tracks the latest lease end granted on the line.
    Under TC-Strong a write arriving before that time parks, blocks the
    line, and performs exactly at expiry; under TC-Weak it performs
    immediately and the ack carries ``max(now, expiry)`` as the GWCT.
    """

    def __init__(self, bank_id: int, machine: "Machine") -> None:
        super().__init__(bank_id, machine)
        self.strong = machine.config.consistency is Consistency.SC
        # lines currently blocked behind a waiting write
        self._blocked: Dict[int, Deque[Message]] = {}

    # -- dispatch ------------------------------------------------------------
    def _process(self, msg: Message) -> None:
        blocked = self._blocked.get(msg.addr)
        if blocked is not None:
            # a write is waiting on this line: everything queues behind
            # it (Section II-D3's lease-induced contention)
            blocked.append(msg)
            self.stats.add("l2_blocked_requests")
            return
        if isinstance(msg, TCRd):
            self._read(msg)
        elif isinstance(msg, TCWr):
            self._write(msg)
        elif isinstance(msg, TCAtm):
            self._atomic(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at TC L2: {msg!r}")

    def _read(self, msg: TCRd) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self.stats.add("l2_hit")
        grant = self.engine.now + self.config.tc_lease
        line.expiry = max(line.expiry, grant)
        self._reply(msg.sm, TCFill(msg.addr, msg.sm, line.version, grant))

    def _write(self, msg: TCWr) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self.stats.add("l2_hit")
        now = self.engine.now
        if self.strong and now < line.expiry:
            # TC-Strong: wait for every outstanding lease to expire
            self.stats.add("l2_write_stalls")
            self.stats.add("l2_write_stall_cycles", line.expiry - now)
            if self.trace is not None:
                self.trace.complete(now, line.expiry, self.track,
                                    "write_stall", {"addr": msg.addr})
            self._blocked[msg.addr] = deque()
            self.engine.at(line.expiry, self._perform_blocked_write, msg)
            return
        self._perform_write(msg, line)

    def _perform_blocked_write(self, msg: TCWr) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:  # pragma: no cover - lease-pinned, can't evict
            raise RuntimeError("blocked line evicted under inclusion")
        self._perform_write(msg, line)
        # replay everything that queued behind the write, in order
        parked = self._blocked.pop(msg.addr, deque())
        for queued in parked:
            self._process(queued)

    def _perform_write(self, msg: TCWr, line: CacheLine) -> None:
        now = self.engine.now
        gwct = max(now, line.expiry)
        line.version = msg.version
        line.dirty = True
        self.machine.versions.record_wts(msg.addr, msg.version, now)
        self._reply(msg.sm, TCWrAck(msg.addr, msg.sm, gwct,
                                    version=msg.version))

    def _atomic(self, msg: TCAtm) -> None:
        """Atomic RMW: follows the write path, returning the old value.

        TC-Strong parks the atomic behind unexpired leases exactly
        like a store; TC-Weak performs it immediately and reports the
        GWCT, so the atomicity point is the L2 but global visibility
        still waits for self-invalidation.
        """
        line = self.cache.lookup(msg.addr)
        if line is None:
            self._miss(msg)
            return
        self.stats.add("l2_hit")
        self.stats.add("l2_atomics")
        now = self.engine.now
        if self.strong and now < line.expiry:
            self.stats.add("l2_write_stalls")
            self.stats.add("l2_write_stall_cycles", line.expiry - now)
            if self.trace is not None:
                self.trace.complete(now, line.expiry, self.track,
                                    "atomic_stall", {"addr": msg.addr})
            self._blocked[msg.addr] = deque()
            self.engine.at(line.expiry, self._perform_blocked_atomic, msg)
            return
        self._perform_atomic(msg, line)

    def _perform_blocked_atomic(self, msg: TCAtm) -> None:
        line = self.cache.lookup(msg.addr)
        if line is None:  # pragma: no cover - lease-pinned, can't evict
            raise RuntimeError("blocked line evicted under inclusion")
        self._perform_atomic(msg, line)
        parked = self._blocked.pop(msg.addr, deque())
        for queued in parked:
            self._process(queued)

    def _perform_atomic(self, msg: TCAtm, line: CacheLine) -> None:
        now = self.engine.now
        gwct = max(now, line.expiry)
        old_version = line.version
        line.version = msg.version
        line.dirty = True
        self.machine.versions.record_wts(msg.addr, msg.version, now)
        self._reply(msg.sm, TCAtmAck(msg.addr, msg.sm, old_version, gwct,
                                     version=msg.version))

    # -- fill / inclusion -------------------------------------------------------
    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        now = self.engine.now
        line, evicted = self.cache.allocate(
            addr,
            evictable=lambda l: l.expiry <= now and l.addr not in
            self._blocked,
        )
        if line is None:
            # every way lease-pinned: the delayed-eviction stall TC's
            # inclusive L2 suffers (Section II-D2)
            return None
        if evicted is not None:
            self.stats.add("l2_evictions")
            self._writeback(evicted)
        line.version = self._memory_version(addr)
        line.dirty = False
        line.expiry = 0
        return line
