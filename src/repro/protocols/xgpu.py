"""Cross-GPU variants of every protocol: routing mixins over the
single-GPU state machines.

Addresses are NUMA-interleaved (``GPUConfig.home_gpu_of``): every line
has exactly one home L2 bank system-wide, so no protocol needs a new
state machine — an L1 miss either goes to a local bank over the on-die
NoC (as before) or crosses the :class:`~repro.multigpu.interlink.
Interlink` to the home GPU's bank.  The one genuinely new piece of
protocol state is G-TSC's eviction fold: a per-bank scalar ``mem_ts``
is only safe when the bank is the sole order point for its addresses,
which still holds here, but the cross-GPU variant routes the fold
through the shared :class:`~repro.multigpu.home.HomeDirectory` so the
audit replayer can check lease monotonicity globally and so the fold
is per-address (HALCONE/Tardis-directory style) rather than
bank-scalar.

SM identity: inside a cluster every request carries the **global** SM
uid ``gpu_id * num_sms + local_sm`` in ``msg.sm`` — both local and
remote requests, because L2-side state (MESI sharer sets, MSHR
waiters) would otherwise mix local ids of different GPUs.  The
rewrite is an absolute assignment, so the L2's MSHR-full retry path
(which re-enters ``receive`` with the same message object) is safe.

All mixins declare empty ``__slots__``: the controller bases are
slotted, and per-instance data (uid base, cluster ref) lives on the
:class:`~repro.gpu.machine.Machine`.
"""

from __future__ import annotations

from repro.core.l1 import GTSCL1Controller
from repro.core.l2 import GTSCL2Bank
from repro.core.messages import BusInv
from repro.mem.cache import CacheLine
from repro.protocols.base import Message
from repro.protocols.plain import (
    DisabledL1Controller,
    NonCoherentL1Controller,
    PlainL2Bank,
)
from repro.protocols.tc import TCL1Controller, TCL2Bank

from typing import Optional


class XGpuL1Mixin:
    """Request routing for a cluster L1: local bank or interlink."""

    __slots__ = ()

    def _send(self, msg: Message) -> None:
        machine = self.machine
        # global SM uid (absolute: idempotent under L2 retry re-entry)
        msg.sm = machine.sm_uid_base + self.sm_id
        addr = msg.addr
        config = machine.config
        home = (addr // self._num_banks) % config.n_gpus
        bank_id = addr % self._num_banks
        size = machine._msg_sizes.get(type(msg))
        if size is None:
            size = machine._size_of(msg)
        if home == machine.gpu_id:
            machine.noc.send(
                self._port, machine._bank_ports[bank_id], size,
                msg.kind, machine.l2_banks[bank_id].receive, msg)
        else:
            cluster = machine.cluster
            cluster.interlink.send(
                cluster.gpu_ports[machine.gpu_id],
                cluster.gpu_ports[home], size, msg.kind,
                cluster.machines[home].l2_banks[bank_id].receive, msg)


class XGpuL2Mixin:
    """Reply routing for a cluster L2 bank: global uid -> (gpu, sm)."""

    __slots__ = ()

    def _reply(self, sm_uid: int, msg: Message) -> None:
        machine = self.machine
        gpu, local = divmod(sm_uid, machine.config.num_sms)
        size = machine._msg_sizes.get(type(msg))
        if size is None:
            size = machine._size_of(msg)
        if gpu == machine.gpu_id:
            machine.noc.send(
                self._port, machine._sm_ports[local], size,
                msg.kind, machine.l1s[local].receive, msg)
        else:
            cluster = machine.cluster
            cluster.interlink.send(
                cluster.gpu_ports[machine.gpu_id],
                cluster.gpu_ports[gpu], size, msg.kind,
                cluster.machines[gpu].l1s[local].receive, msg)


# ---------------------------------------------------------------------------
# G-TSC: routing plus the shared-home eviction fold
# ---------------------------------------------------------------------------

class XGpuGTSCL1Controller(XGpuL1Mixin, GTSCL1Controller):
    __slots__ = ()


class XGpuGTSCL2Bank(XGpuL2Mixin, GTSCL2Bank):
    """G-TSC bank whose Fig. 6 fold goes through the home directory."""

    __slots__ = ()

    def _install_fill(self, addr: int) -> Optional[CacheLine]:
        home = self.machine.cluster.home
        line, evicted = self.cache.allocate(addr,
                                            evictable=self._evictable)
        if line is None:  # pragma: no cover - non-inclusive never pins
            return None
        if evicted is not None:
            self._evict(evicted)
        mem_ts = home.mem_ts_of(addr)
        if self.domain.clamp(mem_ts + self.config.lease) < 0:
            # overflow on refill: the reset listeners cleared the home
            # directory to floor 1; restart the lease from there
            mem_ts = home.mem_ts_of(addr)
        line.wts = mem_ts
        line.rts = mem_ts + self.config.lease
        line.version = self._memory_version(addr)
        line.dirty = False
        line.epoch = self.domain.epoch
        cache = self.cache
        slot = cache._where[addr]
        cache.wts_col[slot] = line.wts
        cache.rts_col[slot] = line.rts
        cache.version_col[slot] = line.version
        if self.audit is not None:
            self.audit.record(self.engine.now, "fill", self.track,
                              addr, line.wts, line.rts, 0,
                              self.domain.epoch)
        return line

    def _evict(self, evicted: CacheLine) -> None:
        self._counters["l2_evictions"] += 1
        if self.audit is not None:
            self.audit.record(self.engine.now, "evict", self.track,
                              evicted.addr, evicted.wts, evicted.rts,
                              0, self.domain.epoch)
        self.machine.cluster.home.fold(evicted.addr, evicted.rts)
        self._writeback(evicted)
        if self.config.l2_inclusive:
            # ablation only — back-invalidate every L1 in the cluster
            for sm_uid in range(self.config.num_sms *
                                self.config.n_gpus):
                self._reply(sm_uid, BusInv(evicted.addr, sm_uid))


# ---------------------------------------------------------------------------
# TC / MESI / baselines: routing only
# ---------------------------------------------------------------------------

class XGpuTCL1Controller(XGpuL1Mixin, TCL1Controller):
    __slots__ = ()


class XGpuTCL2Bank(XGpuL2Mixin, TCL2Bank):
    # TC's physical-time leases need one global clock, which the
    # shared event engine provides; the inclusive-L2 eviction stalls
    # are per-line state and work unchanged
    __slots__ = ()


class XGpuDisabledL1Controller(XGpuL1Mixin, DisabledL1Controller):
    __slots__ = ()


class XGpuNonCoherentL1Controller(XGpuL1Mixin, NonCoherentL1Controller):
    __slots__ = ()


class XGpuPlainL2Bank(XGpuL2Mixin, PlainL2Bank):
    __slots__ = ()


_MESI_CLASSES = None


def xgpu_mesi_classes():
    """MESI cluster classes (lazy: mirrors the factory's lazy import).

    The full-map directory keys sharers/owner by ``msg.sm``, which
    inside a cluster is the global uid — membership and recall
    invalidations then route correctly through ``_reply``.
    """
    global _MESI_CLASSES
    if _MESI_CLASSES is None:
        from repro.protocols.mesi import MESIL1Controller, MESIL2Bank

        class XGpuMESIL1Controller(XGpuL1Mixin, MESIL1Controller):
            __slots__ = ()

        class XGpuMESIL2Bank(XGpuL2Mixin, MESIL2Bank):
            __slots__ = ()

        _MESI_CLASSES = (XGpuMESIL1Controller, XGpuMESIL2Bank)
    return _MESI_CLASSES
