"""Observability: structured tracing, live metrics, and audit logging.

Everything in this package is opt-in and zero-cost when absent: the
simulator's instrumentation points hold plain attribute references
that default to ``None``, so a run constructed without an
:class:`Observability` bundle executes the exact same instruction
stream — bit-identical statistics — as before this package existed.

The bundle has three independent members:

* :class:`~repro.obs.tracer.Tracer` — timestamped structured events
  (stall windows, renewals, NoC transfers), exported as
  Perfetto-loadable Chrome-trace JSON or compact JSONL;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters and gauges
  sampled on a cycle interval into a time-series (IPC, hit/renew mix,
  MSHR pressure), carried in ``RunStats.timeseries``;
* :class:`~repro.obs.audit.ProtocolAuditLog` — every coherence
  transition with its timestamps, replayable against the G-TSC
  invariants by :func:`~repro.obs.audit.replay_audit`.

Typical use::

    obs = Observability.full(interval=500)
    gpu = GPU(config, obs=obs)
    stats = gpu.run(kernel)
    obs.tracer.write_chrome("run.trace.json")
    replay_audit(obs.audit.records, lease=config.lease)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.audit import AuditRecord, ProtocolAuditLog, replay_audit
from repro.obs.metrics import DEFAULT_COUNTERS, MetricsRegistry
from repro.obs.prom import render_prometheus, split_snapshot
from repro.obs.schema import validate_chrome_trace
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.machine import Machine

__all__ = [
    "AuditRecord",
    "DEFAULT_COUNTERS",
    "MetricsRegistry",
    "Observability",
    "ProtocolAuditLog",
    "Tracer",
    "render_prometheus",
    "replay_audit",
    "split_snapshot",
    "validate_chrome_trace",
]


class Observability:
    """The bundle a :class:`~repro.gpu.gpu.GPU` run can be built with.

    Any member may be ``None``; components check once at construction
    and cache the reference, so a disabled member costs nothing.
    """

    __slots__ = ("tracer", "metrics", "audit")

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 audit: Optional[ProtocolAuditLog] = None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.audit = audit

    @classmethod
    def full(cls, interval: int = 1000,
             trace_engine: bool = False) -> "Observability":
        """All three members enabled (what ``repro trace`` uses)."""
        return cls(tracer=Tracer(trace_engine=trace_engine),
                   metrics=MetricsRegistry(interval=interval),
                   audit=ProtocolAuditLog())

    # ------------------------------------------------------------------
    # wiring (called by Machine.__init__)
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> None:
        """Hook this bundle into a machine being constructed.

        Installs the engine dispatch hook, hands the tracer to the NoC
        and DRAM models, and registers the default live gauges.  The
        gauges close over ``machine`` because the L1/L2 controllers are
        populated later by ``build_protocol``.
        """
        tracer = self.tracer
        metrics = self.metrics
        if tracer is not None:
            machine.noc.trace = tracer
            for dram in machine.drams:
                dram.trace = tracer
        if metrics is not None:
            metrics.bind(machine.stats, tracer=tracer)
            engine = machine.engine
            metrics.add_gauge("engine_pending", engine.pending)
            # hot-loop counters (see stats.names.ENGINE_COUNTERS):
            # sampled as gauges because they are cumulative engine
            # state, not RunStats counters
            metrics.add_gauge("engine_heap_deferred",
                              lambda: engine.heap_deferred)
            metrics.add_gauge("engine_heap_migrated",
                              lambda: engine.heap_migrated)
            metrics.add_gauge("engine_stale_reclaimed",
                              lambda: engine.stale_reclaimed)
            metrics.add_gauge(
                "l1_mshr_occupancy",
                lambda: sum(len(l1.mshr) for l1 in machine.l1s))
            metrics.add_gauge(
                "l2_mshr_occupancy",
                lambda: sum(len(b.mshr) for b in machine.l2_banks))
        machine.engine.hook = self._engine_hook()

    def attach_cluster(self, cluster) -> None:
        """Hook this bundle into a multi-GPU cluster under construction.

        Per-machine members (NoC/DRAM tracers) are installed on every
        GPU plus the interlink, but the metrics registry and the engine
        dispatch hook are installed exactly once — all machines share
        one engine, and a per-machine ``attach`` would re-bind them N
        times.  MSHR-occupancy gauges aggregate across the cluster.
        """
        tracer = self.tracer
        metrics = self.metrics
        machines = cluster.machines
        if tracer is not None:
            for machine in machines:
                machine.noc.trace = tracer
                for dram in machine.drams:
                    dram.trace = tracer
            cluster.interlink.trace = tracer
        if metrics is not None:
            metrics.bind(machines[0].stats, tracer=tracer)
            engine = machines[0].engine
            metrics.add_gauge("engine_pending", engine.pending)
            metrics.add_gauge("engine_heap_deferred",
                              lambda: engine.heap_deferred)
            metrics.add_gauge("engine_heap_migrated",
                              lambda: engine.heap_migrated)
            metrics.add_gauge("engine_stale_reclaimed",
                              lambda: engine.stale_reclaimed)
            metrics.add_gauge(
                "l1_mshr_occupancy",
                lambda: sum(len(l1.mshr)
                            for m in machines for l1 in m.l1s))
            metrics.add_gauge(
                "l2_mshr_occupancy",
                lambda: sum(len(b.mshr)
                            for m in machines for b in m.l2_banks))
        machines[0].engine.hook = self._engine_hook()
        for machine in machines:
            machine.obs = self

    def _engine_hook(self):
        """The per-dispatch callback installed on the engine, or None.

        Composed from the enabled members so the engine pays for
        exactly what was requested: metrics sampling, the raw event
        stream (``trace_engine``), both, or nothing.
        """
        metrics = self.metrics
        tracer = self.tracer
        raw = tracer if (tracer is not None and tracer.trace_engine) \
            else None
        if metrics is not None and raw is not None:
            def hook(time, callback):
                raw.engine_event(time, callback)
                metrics.on_cycle(time)
            return hook
        if metrics is not None:
            on_cycle = metrics.on_cycle
            return lambda time, callback: on_cycle(time)
        if raw is not None:
            return raw.engine_event
        return None
