"""Chrome trace-event-format schema validation.

A trace that `chrome://tracing` or Perfetto rejects fails silently (a
blank page), so the exporter is checked in-process instead: the subset
of the trace-event format this repo emits is encoded here as a plain
validator, and the CLI and tests run every produced trace through it.

Reference: the "Trace Event Format" document (the JSON Array/Object
formats); we emit the Object format with ``traceEvents`` plus the
phases M (metadata), X (complete), i (instant) and C (counter).
"""

from __future__ import annotations

from typing import Dict, List

#: phase -> extra required fields beyond the common set
_PHASE_FIELDS: Dict[str, List[str]] = {
    "M": ["args"],          # metadata (process_name / thread_name)
    "X": ["dur"],           # complete event
    "i": ["s"],             # instant event (scope)
    "C": ["args"],          # counter event
}

_COMMON_FIELDS = ("name", "ph", "pid", "tid")


def validate_chrome_trace(trace: Dict) -> int:
    """Check a trace object against the event-format schema.

    Returns the number of events validated; raises :class:`ValueError`
    describing the first offending event otherwise.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' array")

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _PHASE_FIELDS:
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        for key in _COMMON_FIELDS:
            if key not in event:
                raise ValueError(f"{where}: missing field {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"{where}: 'name' must be a non-empty "
                             f"string")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"{where}: non-metadata events need a "
                                 f"numeric 'ts'")
        for key in _PHASE_FIELDS[phase]:
            if key not in event:
                raise ValueError(f"{where}: phase {phase!r} requires "
                                 f"field {key!r}")
        if phase == "X" and not isinstance(event["dur"], (int, float)):
            raise ValueError(f"{where}: 'dur' must be numeric")
        if phase == "i" and event["s"] not in ("g", "p", "t"):
            raise ValueError(f"{where}: instant scope must be one of "
                             f"g/p/t")
        if phase in ("M", "C") and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
        if phase == "C":
            for value in event["args"].values():
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: counter values must "
                                     f"be numeric")
    return len(events)
