"""Prometheus text-exposition rendering for service telemetry.

The serve subsystem's ``metrics`` op answers JSON by default; with
``format: "prometheus"`` it answers the same numbers in the
Prometheus text exposition format (version 0.0.4), so a fleet of
``gtsc-repro serve`` processes can be scraped by a stock Prometheus —
or eyeballed with ``gtsc-repro jobs --metrics-text`` — without any
exporter sidecar.

Conventions follow the exposition format spec:

* monotonically increasing counts render as ``counter`` metrics with
  a ``_total`` suffix;
* point-in-time values (queue depth, in-flight waiters) render as
  ``gauge`` metrics;
* latency distributions render as ``summary`` metrics with
  ``quantile`` labels plus the ``_sum``/``_count`` pair, taken from
  the worker pool's power-of-two histograms (so the quantiles are
  bucket upper bounds — the same numbers ``latency_summary`` reports).

Rendering is pure string assembly over plain dicts; nothing here
imports the server, so reports and tests can use it standalone.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

#: quantiles exported for every summary, with the summary-dict key
#: each is read from (the worker pool's ``latency_summary`` shape)
SUMMARY_QUANTILES = (
    ("0.5", "p50_ms"),
    ("0.95", "p95_ms"),
    ("0.99", "p99_ms"),
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _name(prefix: str, name: str) -> str:
    """A legal Prometheus metric name for ``prefix`` + ``name``."""
    return _NAME_RE.sub("_", f"{prefix}_{name}")


def _num(value) -> str:
    """One sample value in exposition syntax (int stays int)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def render_prometheus(counters: Optional[Dict] = None,
                      gauges: Optional[Dict] = None,
                      summaries: Optional[Dict] = None,
                      prefix: str = "repro_serve") -> str:
    """Render metric dicts as one text-exposition document.

    ``counters`` and ``gauges`` map plain names to numbers;
    ``summaries`` maps names to the ``latency_summary`` per-histogram
    dicts (``count``/``mean_ms``/``p50_ms``/…/``sum_ms``).  Returns a
    newline-terminated document; empty inputs yield an empty string.
    """
    lines = []
    for name in sorted(counters or {}):
        metric = _name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_num(counters[name])}")
    for name in sorted(gauges or {}):
        metric = _name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(gauges[name])}")
    for name in sorted(summaries or {}):
        summary = summaries[name]
        metric = _name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in SUMMARY_QUANTILES:
            lines.append(f'{metric}{{quantile="{quantile}"}} '
                         f"{_num(summary[key])}")
        lines.append(f"{metric}_sum {_num(summary['sum_ms'])}")
        lines.append(f"{metric}_count {_num(summary['count'])}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


#: snapshot keys that are point-in-time state, not cumulative counts
_GAUGE_KEYS = ("jobs_pending", "jobs_leased", "cache_entries",
               "cache_bytes")


def split_snapshot(snapshot: Dict) -> Dict[str, Dict]:
    """Partition a scheduler snapshot into counter and gauge dicts.

    Queue-state counts and cache footprint are gauges (they go down);
    everything else in the snapshot only ever increases.
    """
    counters: Dict = {}
    gauges: Dict = {}
    for name, value in snapshot.items():
        if name in _GAUGE_KEYS:
            gauges[name] = value
        else:
            counters[name] = value
    return {"counters": counters, "gauges": gauges}
