"""Protocol audit log: every coherence transition, replayable.

Timestamp protocols fail silently — a wrong ``rts`` does not crash,
it just lets a stale value be read thousands of cycles later.  The
audit log captures every transition the G-TSC controllers perform,
with the exact timestamps assigned, so the run can be *replayed*
against the paper's equations after the fact:

* L2 writes/atomics assign ``wts = max(rts + 1, warp_ts)`` (Fig. 5)
  and ``rts = wts + lease``;
* renewals never change ``wts`` and only grow ``rts`` (Fig. 4);
* a DRAM fill installs ``wts = mem_ts`` where ``mem_ts`` is the max
  ``rts`` ever evicted from the bank (Fig. 6) — the non-inclusive-L2
  safety argument of Section V-C;
* every lease is well-formed (``1 <= wts <= rts``);
* L1-side, a completed load satisfies ``wts <= warp_ts <= rts`` and
  warp logical clocks only move forward within an epoch.

:func:`replay_audit` walks the log with a shadow model of each bank
(resident leases plus ``mem_ts``) and each SM (warp clocks) and raises
:class:`repro.validate.CoherenceViolation` on the first record the
equations cannot explain.  Overflow/kernel resets are handled through
the ``ts_reset`` / ``l1_epoch_reset`` records and the epoch carried by
every record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.validate.checker import CoherenceViolation

#: Record kinds emitted by the L2 banks.
L2_KINDS = ("read", "renew", "write", "atomic", "fill", "evict",
            "ts_reset")
#: Record kinds emitted by the L1 controllers.
L1_KINDS = ("l1_load", "l1_store_ack", "l1_atomic_ack",
            "l1_epoch_reset")


@dataclass(frozen=True)
class AuditRecord:
    """One coherence transition.

    ``unit`` is the component that performed it (``l2b3``, ``sm0``);
    ``warp_ts`` is the requester's logical clock as used by the
    transition (or the warp clock after the bump, for L1 records);
    ``warp`` is the warp uid for L1 records, -1 for bank records.
    """

    cycle: int
    kind: str
    unit: str
    addr: int
    wts: int
    rts: int
    warp_ts: int
    epoch: int
    warp: int = -1


class ProtocolAuditLog:
    """Append-only sequence of :class:`AuditRecord`."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[AuditRecord] = []

    def record(self, cycle: int, kind: str, unit: str, addr: int,
               wts: int, rts: int, warp_ts: int, epoch: int,
               warp: int = -1) -> None:
        self.records.append(AuditRecord(cycle, kind, unit, addr, wts,
                                        rts, warp_ts, epoch, warp))

    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> Dict[str, int]:
        """Record count per kind (for summaries and tests)."""
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def iter_jsonl(self) -> Iterator[str]:
        for rec in self.records:
            yield json.dumps(rec.__dict__, sort_keys=True,
                             separators=(",", ":"))

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.iter_jsonl():
                handle.write(line + "\n")


# ---------------------------------------------------------------------------
# replay checker
# ---------------------------------------------------------------------------

class _BankShadow:
    """What the replay knows about one L2 bank.

    ``lines`` maps a resident address to its last known ``(wts, rts)``;
    addresses absent from the map are in an *unknown* state (never
    observed since the last reset), for which only the record-local
    invariants are enforced.
    """

    __slots__ = ("epoch", "mem_ts", "lines")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.mem_ts = 1
        self.lines: Dict[int, Tuple[int, int]] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.mem_ts = 1
        self.lines.clear()


class _SMShadow:
    """Per-SM replay state: each warp's last seen logical clock."""

    __slots__ = ("epoch", "warp_ts")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.warp_ts: Dict[int, int] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.warp_ts.clear()


class _HomeShadow:
    """Replay mirror of :class:`repro.multigpu.home.HomeDirectory`.

    Byte-for-byte the same fold/summarize algorithm — the fill check
    ``wts == mem_ts_of(addr)`` is only sound if the shadow and the
    simulated directory summarise identically.  One instance is shared
    by every bank shadow in the cluster (that is the point: the home
    layer is the cross-GPU order witness), and it resets whenever the
    cluster epoch advances.
    """

    __slots__ = ("capacity", "floor", "entries", "epoch")

    def __init__(self, capacity: int, epoch: int) -> None:
        self.capacity = capacity
        self.floor = 1
        self.entries: Dict[int, int] = {}
        self.epoch = epoch

    def mem_ts_of(self, addr: int) -> int:
        ts = self.entries.get(addr, 0)
        floor = self.floor
        return ts if ts > floor else floor

    def fold(self, addr: int, rts: int) -> None:
        entries = self.entries
        prev = entries.get(addr, 0)
        if rts > prev:
            entries[addr] = rts
        if len(entries) > self.capacity:
            victims = sorted(entries.items(),
                             key=lambda kv: (kv[1], kv[0]))
            keep_from = len(victims) - self.capacity // 2
            floor = self.floor
            for victim_addr, ts in victims[:keep_from]:
                if ts > floor:
                    floor = ts
                del entries[victim_addr]
            self.floor = floor

    def reset(self, epoch: int) -> None:
        self.entries.clear()
        self.floor = 1
        self.epoch = epoch


def _fail(rec: AuditRecord, index: int, why: str) -> None:
    raise CoherenceViolation(
        f"audit record {index} ({rec.kind} {rec.unit} "
        f"addr={rec.addr:#x} cycle={rec.cycle}): {why} "
        f"[wts={rec.wts} rts={rec.rts} warp_ts={rec.warp_ts} "
        f"epoch={rec.epoch}]")


def replay_audit(records: List[AuditRecord], lease: int,
                 home_capacity: int = None) -> int:
    """Replay an audit log against the G-TSC timestamp invariants.

    ``lease`` is the configured base lease (``GPUConfig.lease``); the
    write and fill paths always extend by exactly this much, so those
    records are checked for equality, while read-side renewals (which
    may use the adaptive-lease extension) are only required to be
    monotone.  Returns the number of records checked; raises
    :class:`CoherenceViolation` on the first inconsistency.

    ``home_capacity`` switches on the multi-GPU shared-home mode
    (pass ``config.home_ts_entries`` for an ``n_gpus > 1`` run, whose
    units are ``g<i>:``-prefixed): fills are checked against a shadow
    of the cluster-wide per-address home directory instead of the
    per-bank scalar ``mem_ts``, and per-address write timestamps must
    be strictly monotone *across* GPUs within an epoch — the
    cross-GPU single-writer witness.
    """
    banks: Dict[str, _BankShadow] = {}
    sms: Dict[str, _SMShadow] = {}
    home: _HomeShadow = None
    # addr -> last write wts seen anywhere in the cluster (home mode)
    last_write: Dict[int, int] = {}
    last_cycle = 0

    for index, rec in enumerate(records):
        if rec.cycle < last_cycle:
            _fail(rec, index, f"cycle moved backwards "
                              f"(previous record at {last_cycle})")
        last_cycle = rec.cycle

        if rec.kind in L2_KINDS:
            if home_capacity is not None:
                if home is None:
                    home = _HomeShadow(home_capacity, rec.epoch)
                elif rec.epoch > home.epoch:
                    # any bank observing a newer epoch proves the
                    # cluster-wide reset happened; the directory
                    # cleared with it
                    home.reset(rec.epoch)
                    last_write.clear()
            _replay_bank(banks, rec, index, lease, home)
            if home is not None and rec.kind in ("write", "atomic"):
                prev_wts = last_write.get(rec.addr)
                if prev_wts is not None and rec.wts <= prev_wts:
                    _fail(rec, index,
                          f"cross-GPU write wts not monotone for the "
                          f"address (previous write at wts={prev_wts})")
                last_write[rec.addr] = rec.wts
        elif rec.kind in L1_KINDS:
            _replay_sm(sms, rec, index)
        else:
            _fail(rec, index, "unknown record kind")
    return len(records)


def _replay_bank(banks: Dict[str, _BankShadow], rec: AuditRecord,
                 index: int, lease: int,
                 home: _HomeShadow = None) -> None:
    shadow = banks.get(rec.unit)
    if shadow is None:
        shadow = banks[rec.unit] = _BankShadow(rec.epoch)

    if rec.kind == "ts_reset":
        if rec.epoch < shadow.epoch:
            _fail(rec, index, f"epoch moved backwards "
                              f"(bank was at {shadow.epoch})")
        shadow.reset(rec.epoch)
        return
    if rec.epoch < shadow.epoch:
        _fail(rec, index, f"epoch moved backwards "
                          f"(bank was at {shadow.epoch})")
    if rec.epoch > shadow.epoch:
        # reset observed only through the epoch field (defensive; the
        # banks also emit ts_reset records)
        shadow.reset(rec.epoch)

    if not 1 <= rec.wts <= rec.rts:
        _fail(rec, index, "malformed lease (need 1 <= wts <= rts)")

    prev = shadow.lines.get(rec.addr)
    if rec.kind == "fill":
        if home is not None:
            expected_mem_ts = home.mem_ts_of(rec.addr)
            if rec.wts != expected_mem_ts:
                _fail(rec, index,
                      f"fill wts must equal the home directory's "
                      f"mem_ts ({expected_mem_ts}) — Fig. 6 violated "
                      f"cluster-wide")
        elif rec.wts != shadow.mem_ts:
            _fail(rec, index, f"fill wts must equal mem_ts "
                              f"({shadow.mem_ts}) — Fig. 6 violated")
        if rec.rts != rec.wts + lease:
            _fail(rec, index, f"fill lease must be wts + {lease}")
        shadow.lines[rec.addr] = (rec.wts, rec.rts)
    elif rec.kind == "evict":
        if home is not None:
            home.fold(rec.addr, rec.rts)
        else:
            shadow.mem_ts = max(shadow.mem_ts, rec.rts)
        shadow.lines.pop(rec.addr, None)
    elif rec.kind in ("write", "atomic"):
        if rec.rts != rec.wts + lease:
            _fail(rec, index, f"write lease must be wts + {lease}")
        if rec.wts < rec.warp_ts:
            _fail(rec, index, "write scheduled before the writer's "
                              "logical clock")
        if prev is not None:
            expected = max(prev[1] + 1, rec.warp_ts)
            if rec.wts != expected:
                _fail(rec, index,
                      f"write wts {rec.wts} != max(rts + 1, warp_ts) "
                      f"= {expected} (Fig. 5 violated, prev lease "
                      f"wts={prev[0]} rts={prev[1]})")
        shadow.lines[rec.addr] = (rec.wts, rec.rts)
    elif rec.kind in ("read", "renew"):
        if rec.rts < rec.warp_ts:
            _fail(rec, index, "granted lease ends before the "
                              "requester's logical clock")
        if prev is not None:
            if rec.wts != prev[0]:
                _fail(rec, index, f"read changed wts "
                                  f"({prev[0]} -> {rec.wts})")
            if rec.rts < prev[1]:
                _fail(rec, index, f"read shrank rts "
                                  f"({prev[1]} -> {rec.rts})")
        shadow.lines[rec.addr] = (rec.wts, rec.rts)


def _replay_sm(sms: Dict[str, _SMShadow], rec: AuditRecord,
               index: int) -> None:
    shadow = sms.get(rec.unit)
    if shadow is None:
        shadow = sms[rec.unit] = _SMShadow(rec.epoch)

    if rec.kind == "l1_epoch_reset":
        if rec.epoch < shadow.epoch:
            _fail(rec, index, f"epoch moved backwards "
                              f"(SM was at {shadow.epoch})")
        shadow.reset(rec.epoch)
        return
    if rec.epoch < shadow.epoch:
        _fail(rec, index, f"epoch moved backwards "
                          f"(SM was at {shadow.epoch})")
    if rec.epoch > shadow.epoch:
        shadow.reset(rec.epoch)

    if not 1 <= rec.wts <= rec.rts:
        _fail(rec, index, "malformed lease (need 1 <= wts <= rts)")
    if rec.warp_ts < rec.wts:
        _fail(rec, index, "warp clock behind the version it observed")
    if rec.kind == "l1_load" and rec.warp_ts > rec.rts:
        _fail(rec, index, "load completed outside its lease "
                          "(warp_ts > rts)")
    seen = shadow.warp_ts.get(rec.warp, 0)
    if rec.warp_ts < seen:
        _fail(rec, index, f"warp {rec.warp} logical clock moved "
                          f"backwards ({seen} -> {rec.warp_ts})")
    shadow.warp_ts[rec.warp] = rec.warp_ts
