"""Time-series metrics sampled during a run.

`StatsCollector` answers *how much*; this registry answers *when*.  It
samples a chosen set of counters — plus arbitrary gauges (callables
probed at sample time, e.g. live MSHR occupancy) — every ``interval``
cycles into rows of a time-series that ships inside ``RunStats``.

Sampling is driven by the engine's dispatch hook rather than by
scheduled events: injecting sampler events into the heap would extend
``engine.now`` past the real end of the kernel and perturb the very
statistics being observed.  Riding the dispatch stream costs nothing
when no events fire (idle regions are skipped, like the engine itself
skips them) and guarantees the simulated timing is bit-identical with
and without metrics enabled.

Because the engine jumps over idle cycles, a sample lands on the first
event *at or after* each interval boundary; rows therefore carry their
actual cycle, and consumers derive rates from cycle deltas, not from
the nominal interval (see :meth:`MetricsRegistry.derived`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

#: Counters sampled when the caller does not choose their own set —
#: the mix behind the paper's main figures: progress (IPC), the L1
#: hit/renew/miss split, NoC pressure, and the TC write-stall contrast.
DEFAULT_COUNTERS = (
    "instructions",
    "l1_access",
    "l1_hit",
    "l1_miss",
    "l1_renewals",
    "stall_mem_cycles",
    "noc_bytes",
    "noc_messages",
    "dram_reads",
    "l2_write_stall_cycles",
)


class MetricsRegistry:
    """Samples counters and gauges into a cycle-indexed time-series."""

    __slots__ = ("interval", "tracked", "gauges", "samples", "stats",
                 "tracer", "_next")

    def __init__(self, interval: int = 1000,
                 counters: Optional[List[str]] = None) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be >= 1 cycle")
        self.interval = interval
        self.tracked: List[str] = list(counters if counters is not None
                                       else DEFAULT_COUNTERS)
        self.gauges: Dict[str, Callable[[], int]] = {}
        self.samples: List[Dict[str, int]] = []
        self.stats = None
        self.tracer = None
        self._next = interval

    def bind(self, stats, tracer=None) -> None:
        """Attach to a run's collector (done by ``Observability``)."""
        self.stats = stats
        self.tracer = tracer

    def add_gauge(self, name: str, probe: Callable[[], int]) -> None:
        """Register a live value sampled alongside the counters."""
        self.gauges[name] = probe

    # ------------------------------------------------------------------
    # sampling (called from the engine dispatch hook)
    # ------------------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if now >= self._next:
            self._sample(now)
            self._next = now - now % self.interval + self.interval

    def finalize(self, now: int) -> None:
        """Take a closing sample so the series covers the whole run."""
        if self.stats is None:
            return
        if not self.samples or now > self.samples[-1]["cycle"]:
            self._sample(now)

    def _sample(self, now: int) -> None:
        counters = self.stats.counters
        row: Dict[str, int] = {"cycle": now}
        for name in self.tracked:
            row[name] = counters[name]
        for name, probe in self.gauges.items():
            row[name] = probe()
        self.samples.append(row)
        tracer = self.tracer
        if tracer is not None:
            for name, value in row.items():
                if name != "cycle":
                    tracer.counter(now, "metrics", name, value)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def series(self, name: str) -> List[Tuple[int, int]]:
        """``(cycle, value)`` points of one sampled column."""
        return [(row["cycle"], row[name]) for row in self.samples
                if name in row]

    def derived(self) -> Dict[str, List[Tuple[int, float]]]:
        """Per-window rates computed from the cumulative samples.

        Each point is stamped with the window's *end* cycle:

        * ``ipc`` — instructions retired per cycle;
        * ``l1_hit_rate`` / ``l1_renew_rate`` — fraction of the
          window's L1 accesses that hit / were data-less renewals;
        * ``noc_bytes_per_cycle`` — NoC occupancy proxy.
        """
        out: Dict[str, List[Tuple[int, float]]] = {
            "ipc": [], "l1_hit_rate": [], "l1_renew_rate": [],
            "noc_bytes_per_cycle": [],
        }
        for prev, row in zip(self.samples, self.samples[1:]):
            dcycles = row["cycle"] - prev["cycle"]
            if dcycles <= 0:
                continue
            cycle = row["cycle"]

            def delta(name: str) -> int:
                return row.get(name, 0) - prev.get(name, 0)

            out["ipc"].append((cycle, delta("instructions") / dcycles))
            accesses = delta("l1_access")
            if accesses:
                out["l1_hit_rate"].append(
                    (cycle, delta("l1_hit") / accesses))
                out["l1_renew_rate"].append(
                    (cycle, delta("l1_renewals") / accesses))
            out["noc_bytes_per_cycle"].append(
                (cycle, delta("noc_bytes") / dcycles))
        return out

    def to_dict(self) -> Dict:
        """JSON-ready dump carried in ``RunStats.timeseries``."""
        return {
            "interval": self.interval,
            "columns": self.tracked + sorted(self.gauges),
            "samples": [dict(row) for row in self.samples],
        }
