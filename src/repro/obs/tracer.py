"""Structured event tracing.

The tracer records what the counters cannot: *when* things happened.
Every record is a compact tuple appended to one in-memory list, so the
recording cost at an instrumentation point is a single method call and
a list append — and when tracing is disabled (the default) the
instrumentation points hold a ``None`` reference and skip even that,
which is what keeps default runs bit-identical and within noise of the
pre-observability simulator.

Three event shapes cover everything the simulator wants to say:

* **instant** — a point event (a renewal request, an epoch reset, a
  ``warp_ts`` jump at an acquire);
* **complete** — a closed interval (a load from issue to completion, an
  SM memory-stall window, a TC write stall, a NoC transfer);
* **counter** — a sampled value (IPC, MSHR occupancy) drawn as a
  time-series track.

Tracks are plain strings (``"sm0"``, ``"l2b1"``, ``"noc"``,
``"dram0"``, ``"engine"``); the exporters map them to Chrome-trace
thread ids.  Export formats:

* :meth:`Tracer.to_chrome` — the Chrome/Perfetto ``traceEvents`` JSON
  (load the file in ``chrome://tracing`` or https://ui.perfetto.dev);
* :meth:`Tracer.iter_jsonl` — one compact JSON object per event, for
  streaming consumers and diff-able golden files.

Cycle counts are emitted as microsecond timestamps (1 cycle = 1 us),
which keeps Perfetto's zoom ruler meaningful for cycle-level traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

# event record: (phase, start_cycle, dur_or_value, track, name, args)
#   phase "i": instant   — dur_or_value is None
#   phase "X": complete  — dur_or_value is the duration in cycles
#   phase "C": counter   — dur_or_value is the sampled value
TraceEvent = Tuple[str, int, Optional[int], str, str, Optional[Dict]]

#: Chrome trace-event-format phases this tracer emits.
PHASES = ("i", "X", "C", "M")


class Tracer:
    """An append-only structured event recorder.

    ``trace_engine=True`` additionally records one instant per fired
    engine event (the raw dispatch stream) — exhaustive but enormous;
    off by default even when tracing is on.
    """

    __slots__ = ("events", "trace_engine")

    def __init__(self, trace_engine: bool = False) -> None:
        self.events: List[TraceEvent] = []
        self.trace_engine = trace_engine

    # ------------------------------------------------------------------
    # recording primitives (hot path: one append each)
    # ------------------------------------------------------------------
    def instant(self, cycle: int, track: str, name: str,
                args: Optional[Dict] = None) -> None:
        """A point event at ``cycle`` on ``track``."""
        self.events.append(("i", cycle, None, track, name, args))

    def complete(self, start: int, end: int, track: str, name: str,
                 args: Optional[Dict] = None) -> None:
        """A closed ``[start, end]`` interval on ``track``."""
        self.events.append(("X", start, end - start, track, name, args))

    def counter(self, cycle: int, track: str, name: str,
                value: int) -> None:
        """A sampled counter value, drawn as a time-series track."""
        self.events.append(("C", cycle, value, track, name, None))

    def engine_event(self, cycle: int, callback: Any) -> None:
        """One fired engine event (only with ``trace_engine``)."""
        name = getattr(callback, "__qualname__", None) \
            or getattr(callback, "__name__", repr(callback))
        self.events.append(("i", cycle, None, "engine", name, None))

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # export: Chrome trace (Perfetto-loadable)
    # ------------------------------------------------------------------
    def _tids(self) -> Dict[str, int]:
        """Stable track -> tid mapping (sorted for determinism)."""
        tracks = sorted({event[3] for event in self.events})
        return {track: tid for tid, track in enumerate(tracks)}

    def to_chrome(self) -> Dict:
        """The trace as a Chrome trace-event-format object.

        One process (pid 0, the simulated GPU) with one named thread
        per track.  The result satisfies
        :func:`repro.obs.schema.validate_chrome_trace` and loads in
        ``chrome://tracing`` and the Perfetto UI unchanged.
        """
        tids = self._tids()
        trace_events: List[Dict] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "gtsc-repro GPU"}},
        ]
        for track, tid in tids.items():
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                 "args": {"name": track}})
        for phase, start, extra, track, name, args in self.events:
            event: Dict = {"name": name, "ph": phase, "ts": start,
                           "pid": 0, "tid": tids[track],
                           "cat": track}
            if phase == "X":
                event["dur"] = extra
            elif phase == "C":
                event["args"] = {"value": extra}
            elif phase == "i":
                event["s"] = "t"  # thread-scoped instant
            if args and phase != "C":
                event["args"] = args
            trace_events.append(event)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome(self, path: str) -> None:
        """Write the Chrome-trace JSON file."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)

    # ------------------------------------------------------------------
    # export: compact JSONL stream
    # ------------------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """Yield one compact JSON line per recorded event."""
        for phase, start, extra, track, name, args in self.events:
            record: Dict = {"ph": phase, "ts": start, "track": track,
                            "name": name}
            if extra is not None:
                record["dur" if phase == "X" else "value"] = extra
            if args:
                record["args"] = args
            yield json.dumps(record, sort_keys=True,
                             separators=(",", ":"))

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.iter_jsonl():
                handle.write(line + "\n")

    @staticmethod
    def read_jsonl(path: str) -> List[TraceEvent]:
        """Parse a JSONL stream back into event tuples.

        The round trip is exact: for any tracer ``t``,
        ``read_jsonl`` of ``t.write_jsonl`` output equals ``t.events``
        (with ``args`` dicts compared by value).
        """
        events: List[TraceEvent] = []
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                phase = record["ph"]
                extra = record.get("dur" if phase == "X" else "value")
                events.append((phase, record["ts"], extra,
                               record["track"], record["name"],
                               record.get("args")))
        return events
