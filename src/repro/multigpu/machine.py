"""The multi-GPU simulator: N machines, one engine, one interlink.

:class:`MultiGpuGPU` mirrors :class:`repro.gpu.gpu.GPU` — same
``run`` / ``run_sequence`` / ``finish`` surface, same RunStats — but
instantiates ``config.n_gpus`` full machines that share one event
engine, one statistics collector, one version store and one access
log (the validation and reporting layers need the global view), and
connects them through an :class:`~repro.multigpu.interlink.Interlink`.
DRAM partitions and memory images stay per-machine: the NUMA
interleaving makes their address sets disjoint.

Under G-TSC all banks on all GPUs share **one** timestamp domain, so
an overflow reset on any bank re-epochs the whole cluster — per-GPU
domains would break epoch comparisons on L1 fills served by remote
banks.  The shared :class:`~repro.multigpu.home.HomeDirectory`
(cleared on every reset) replaces the per-bank scalar ``mem_ts``.

CTAs are distributed round-robin across GPUs first, then across the
SMs within each GPU — consecutive CTAs land on different GPUs, which
is what makes the litmus workloads (one warp per CTA) genuinely
cross-GPU.  At ``n_gpus=1`` the expression reduces to the single-GPU
``cta % num_sms``, but that case never reaches this class: the
:func:`repro.gpu.gpu.make_gpu` factory returns a plain ``GPU``.
"""

from __future__ import annotations

from typing import Optional

from repro.config import GPUConfig, Protocol
from repro.core.timestamps import TimestampDomain
from repro.energy.model import EnergyModel, EnergyParams
from repro.gpu.machine import Machine
from repro.gpu.sm import SM
from repro.gpu.warp import Warp
from repro.multigpu.home import HomeDirectory
from repro.multigpu.interlink import Interlink
from repro.protocols.factory import build_protocol
from repro.sim.backend import engine_class
from repro.stats.collector import RunStats, StatsCollector
from repro.trace.compiled import CompiledKernel, compile_kernel
from repro.trace.instr import Kernel
from repro.validate.versions import AccessLog, VersionStore


class MultiGpuGPU:
    """``config.n_gpus`` machines behind the single-GPU run surface."""

    def __init__(self, config: GPUConfig,
                 record_accesses: bool = True,
                 energy_params: Optional[EnergyParams] = None,
                 obs=None) -> None:
        if config.n_gpus < 2:
            raise ValueError("MultiGpuGPU needs n_gpus >= 2; "
                             "use repro.gpu.gpu.make_gpu")
        self.config = config
        self.obs = obs
        self.n_gpus = config.n_gpus
        engine = engine_class()()
        stats = StatsCollector()
        versions = VersionStore()
        log = AccessLog(enabled=record_accesses)
        self.interlink = Interlink(engine, stats,
                                   config.interlink_latency,
                                   config.interlink_bandwidth)
        self.gpu_ports = [("gpu", g) for g in range(config.n_gpus)]
        self.home = HomeDirectory(config.home_ts_entries, stats)
        # one timestamp domain for the whole cluster; the home
        # directory resets with it (before the banks are built, so its
        # listener fires first — the order is immaterial, the
        # listeners touch disjoint state)
        self.timestamp_domain: Optional[TimestampDomain] = None
        if config.protocol is Protocol.GTSC:
            domain = TimestampDomain(config.ts_max, config.lease, stats)
            domain.on_reset(self.home.reset)
            self.timestamp_domain = domain
        self.machines = [
            Machine(config, record_accesses=record_accesses,
                    engine=engine, stats=stats, versions=versions,
                    log=log, gpu_id=g, cluster=self)
            for g in range(config.n_gpus)
        ]
        if obs is not None:
            # one attach for the whole cluster: per-machine tracers,
            # but the metrics registry and engine hook exactly once
            obs.attach_cluster(self)
        for machine in self.machines:
            build_protocol(machine)
        self.sms = [
            SM(sm_id, machine, machine.l1s[sm_id])
            for machine in self.machines
            for sm_id in range(config.num_sms)
        ]
        self._energy = EnergyModel(config, energy_params or EnergyParams())
        self._warps_remaining = 0
        self._warp_uid_base = 0

    @property
    def machine(self) -> Machine:
        """GPU 0 — carries the shared engine/stats/log/versions, so
        single-GPU call sites (``gpu.machine.engine`` …) work as-is."""
        return self.machines[0]

    # -- kernel execution ---------------------------------------------------
    def run(self, kernel: Kernel,
            max_events: Optional[int] = None) -> RunStats:
        """Execute ``kernel`` to completion and return its statistics."""
        self._execute(kernel, max_events)
        return self.finish(kernel.name)

    def run_sequence(self, kernels: list,
                     max_events: Optional[int] = None) -> list:
        """Execute several kernels back to back (see ``GPU``)."""
        results = []
        machine = self.machines[0]
        for kernel in kernels:
            start_cycle = machine.engine.now
            before = machine.stats.snapshot()
            self._execute(kernel, max_events)
            self._kernel_boundary()
            after = machine.stats.snapshot()
            cycles = machine.engine.now - start_cycle
            delta = {name: after.get(name, 0) - before.get(name, 0)
                     for name in after
                     if after.get(name, 0) != before.get(name, 0)}
            delta["cycles"] = cycles
            results.append(RunStats(
                config_desc=f"{kernel.name} on {self.config.describe()}",
                cycles=cycles,
                counters=delta,
                energy=self._energy.compute(delta, cycles),
            ))
        return results

    def _execute(self, kernel: Kernel,
                 max_events: Optional[int]) -> None:
        if isinstance(kernel, CompiledKernel):
            kernel.validate()
        else:
            kernel = compile_kernel(kernel)
        if kernel.cta_size > self.config.max_warps_per_sm:
            raise ValueError(
                f"kernel {kernel.name!r}: cta_size {kernel.cta_size} "
                f"exceeds {self.config.max_warps_per_sm} warps/SM"
            )
        self._warps_remaining = kernel.num_warps
        uid_base = self._warp_uid_base
        self._warp_uid_base += kernel.num_warps
        n_gpus = self.n_gpus
        num_sms = self.config.num_sms
        # whole CTAs land on one SM (barriers require it); CTAs go
        # round-robin across GPUs first, then across each GPU's SMs
        for index, trace in enumerate(kernel.traces):
            cta_index = index // kernel.cta_size
            warp = Warp(uid=uid_base + index, trace=trace,
                        cta_id=uid_base + cta_index)
            gpu = cta_index % n_gpus
            local_sm = (cta_index // n_gpus) % num_sms
            self.sms[gpu * num_sms + local_sm].add_warp(warp)
        for sm in self.sms:
            sm.on_warp_done = self._on_warp_done
            sm.start()

        self.machines[0].engine.run(max_events=max_events)

        if self._warps_remaining > 0:
            self._raise_hang(kernel)

    def _kernel_boundary(self) -> None:
        """Flush every L1 and reset cluster logical time (§V-D)."""
        for machine in self.machines:
            for l1 in machine.l1s:
                l1.flush()
        domain = self.timestamp_domain
        if domain is not None:
            domain.kernel_reset()
            for machine in self.machines:
                for l1 in machine.l1s:
                    l1.epoch = domain.epoch

    def _on_warp_done(self) -> None:
        self._warps_remaining -= 1

    def _raise_hang(self, kernel: Kernel) -> None:
        from repro.gpu.gpu import SimulationHang

        stuck = []
        num_sms = self.config.num_sms
        for uid, sm in enumerate(self.sms):
            gpu = uid // num_sms
            for warp in sm.active:
                stuck.append(
                    f"g{gpu}:sm{sm.sm_id} warp{warp.uid} pc={warp.pc} "
                    f"ldo={warp.outstanding_loads} "
                    f"sto={warp.outstanding_stores} "
                    f"pending={warp.pending_addrs}"
                )
            if sm.queue:
                stuck.append(f"g{gpu}:sm{sm.sm_id}: "
                             f"{len(sm.queue)} queued warps")
        raise SimulationHang(
            f"kernel {kernel.name!r}: {self._warps_remaining} warps never "
            f"finished at cycle {self.machines[0].engine.now}:\n"
            + "\n".join(stuck)
        )

    # -- wrap-up ------------------------------------------------------------
    def finish(self, name: str) -> RunStats:
        """Kernel boundary: flush L1s and snapshot the statistics."""
        machine0 = self.machines[0]
        cycles = machine0.engine.now
        for machine in self.machines:
            for l1 in machine.l1s:
                l1.flush()
        machine0.engine.run()
        stats = machine0.stats
        stats.counters["cycles"] = cycles
        stats.counters["noc_latency_sum"] = sum(
            machine.noc.total_latency for machine in self.machines)
        stats.counters["interlink_latency_sum"] = \
            self.interlink.total_latency
        counters = stats.snapshot()
        energy = self._energy.compute(counters, cycles)
        timeseries = {}
        if self.obs is not None and self.obs.metrics is not None:
            self.obs.metrics.finalize(cycles)
            timeseries = self.obs.metrics.to_dict()
        return RunStats(
            config_desc=f"{name} on {self.config.describe()}",
            cycles=cycles,
            counters=counters,
            energy=energy,
            histograms={name: stats.hist.get(name)
                        for name in stats.hist.names()},
            timeseries=timeseries,
        )
