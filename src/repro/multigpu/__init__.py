"""Multi-GPU timestamp coherence (HALCONE-style scale-out).

The single-GPU :class:`~repro.gpu.machine.Machine` encapsulates one
full GPU — SMs, private L1s, a banked L2, the NoC, DRAM partitions.
This package scales that machine out: a :class:`MultiGpuGPU`
instantiates ``config.n_gpus`` machines on **one shared event
engine**, connects their L2 layers through an inter-GPU
:class:`~repro.multigpu.interlink.Interlink`, and gives the G-TSC
protocol a shared per-address memory-timestamp home layer
(:class:`~repro.multigpu.home.HomeDirectory`) so leases stay
monotone across GPU boundaries — the design HALCONE
(arXiv 2007.04292) builds on top of Tardis-style logical leases.

Addresses are NUMA-interleaved: every line has exactly one home L2
bank system-wide (``config.home_gpu_of`` / ``config.bank_of``), so
L2 state is never replicated between GPUs and each protocol's bank
state machine runs unchanged — cross-GPU support is a routing
concern (``repro.protocols.xgpu``), not a new state machine.

``n_gpus=1`` never touches this package: ``repro.gpu.gpu.make_gpu``
returns the plain single-GPU path, bit-identical to before.
"""

from __future__ import annotations

from repro.multigpu.home import HomeDirectory
from repro.multigpu.interlink import Interlink
from repro.multigpu.machine import MultiGpuGPU

__all__ = ["HomeDirectory", "Interlink", "MultiGpuGPU"]
