"""Inter-GPU interconnect: bandwidth-limited per-GPU ports.

Same abstraction as the on-die :class:`repro.mem.noc.Network` — each
GPU owns an injection port with finite bandwidth, a message occupies
it for ``size/bandwidth`` cycles and then travels a flat base latency
— but with its own, much slower, knobs (``interlink_latency`` /
``interlink_bandwidth`` in :class:`~repro.config.GPUConfig`; think
NVLink-class cycles vs on-die NoC cycles) and its own counter family
(``interlink_bytes``, ``interlink_bytes_<kind>``,
``interlink_messages``) so cross-GPU traffic is separable from
on-die traffic in every report.

The base latency covers the full off-die path: on-die egress to the
edge of the source GPU, the link itself, and ingress on the far side.
Remote requests therefore pay the interlink *instead of* the local
NoC, not in addition to it.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Hashable

from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector


class _Port:
    """One GPU's injection port: a bandwidth-limited FIFO."""

    __slots__ = ("free_at",)

    def __init__(self) -> None:
        self.free_at = 0


class Interlink:
    """Point-to-point inter-GPU fabric with per-GPU serialization."""

    def __init__(self, engine: Engine, stats: StatsCollector,
                 base_latency: int, port_bandwidth: int) -> None:
        if port_bandwidth <= 0:
            raise ValueError("interlink bandwidth must be positive")
        self.engine = engine
        self.stats = stats
        self.base_latency = base_latency
        self.port_bandwidth = port_bandwidth
        self._ports: dict[Hashable, _Port] = {}
        self._counters = stats.counters
        self._kind_keys: dict[str, str] = {}
        self.total_latency = 0
        self.total_messages = 0
        self.trace = None

    def _port(self, endpoint: Hashable) -> _Port:
        port = self._ports.get(endpoint)
        if port is None:
            port = _Port()
            self._ports[endpoint] = port
        return port

    def send(self, src: Hashable, dst: Hashable, size: int, kind: str,
             deliver: Callable[..., None], *args: Any) -> int:
        """Inject a ``size``-byte message of class ``kind`` at ``src``.

        ``deliver(*args)`` fires on arrival at ``dst``.  Endpoints are
        ``("gpu", g)`` tuples; as with the on-die NoC, the fabric is
        contention-free past the injection port.
        """
        if size <= 0:
            raise ValueError("message size must be positive")
        engine = self.engine
        now = engine.now
        port = self._ports.get(src)
        if port is None:
            port = self._port(src)
        free_at = port.free_at
        start = free_at if free_at > now else now
        # ceil-divide: a message holds its port for at least one cycle
        depart = start + -(-size // self.port_bandwidth)
        port.free_at = depart
        arrival = depart + self.base_latency

        counters = self._counters
        counters["interlink_bytes"] += size
        key = self._kind_keys.get(kind)
        if key is None:
            key = self._kind_keys[kind] = "interlink_bytes_" + kind
        counters[key] += size
        counters["interlink_messages"] += 1
        self.total_latency += arrival - now
        self.total_messages += 1
        if self.trace is not None:
            self.trace.complete(
                now, arrival, "interlink", f"{kind}:{src}->{dst}",
                {"bytes": size})

        # Engine.post, inlined (see repro.mem.noc.Network.send)
        seq = engine._seq
        engine._seq = seq + 1
        event = [arrival, seq, deliver, args]
        if arrival < engine._limit:
            slot = arrival & engine._mask
            engine._buckets[slot].append(event)
            engine._filled[slot] = 1
        else:
            heappush(engine._heap, event)
            engine.heap_deferred += 1
        return arrival

    @property
    def average_latency(self) -> float:
        """Mean end-to-end latency over all inter-GPU messages."""
        if self.total_messages == 0:
            return 0.0
        return self.total_latency / self.total_messages
