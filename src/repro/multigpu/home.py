"""Shared memory-timestamp home layer for cross-GPU G-TSC.

On one GPU each L2 bank tracks the timestamp of evicted lines with a
single scalar ``mem_ts`` (Fig. 6: eviction folds the line's rts into
the scalar; a later fill starts its lease at the fold).  That scalar
is safe because the bank is the *only* order point for its addresses.

Across GPUs the order point must stay unique per address, so the home
directory keeps a **per-address** fold — tighter than the scalar (a
refill of address A is no longer penalised by an unrelated hot
address B folding a huge rts into the same scalar), in the style of
the Tardis directory HALCONE builds on.  Capacity is bounded: when
the map exceeds ``home_ts_entries`` the smallest half is
deterministically summarised into a rising ``floor``, which is the
scalar-mem_ts degenerate case.  Folding into the floor only ever
*raises* an address's effective mem_ts, so lease monotonicity — the
invariant ``replay_audit`` checks — is preserved by construction.

On a timestamp-domain reset (overflow or kernel boundary) the
directory clears to ``floor = 1``, mirroring every bank's
``mem_ts = 1`` reset.
"""

from __future__ import annotations

from typing import Dict


class HomeDirectory:
    """Per-address ``mem_ts`` with bounded capacity and a rising floor."""

    __slots__ = ("capacity", "floor", "entries", "_counters")

    def __init__(self, capacity: int, stats=None) -> None:
        if capacity < 1:
            raise ValueError("home directory capacity must be positive")
        self.capacity = capacity
        self.floor = 1
        self.entries: Dict[int, int] = {}
        self._counters = stats.counters if stats is not None else None

    def mem_ts_of(self, addr: int) -> int:
        """The fill timestamp a fresh lease of ``addr`` must start at."""
        ts = self.entries.get(addr, 0)
        floor = self.floor
        return ts if ts > floor else floor

    def fold(self, addr: int, rts: int) -> None:
        """Fold an evicted line's rts into the address's entry (Fig. 6)."""
        entries = self.entries
        prev = entries.get(addr, 0)
        if rts > prev:
            entries[addr] = rts
        if len(entries) > self.capacity:
            self._summarize()

    def _summarize(self) -> None:
        """Fold the smallest half of the map into the floor.

        Deterministic (sorted by value then address) so two runs of
        the same workload summarise identically — run keys depend on
        it.  The audit replayer mirrors this byte for byte.
        """
        entries = self.entries
        victims = sorted(entries.items(), key=lambda kv: (kv[1], kv[0]))
        keep_from = len(victims) - self.capacity // 2
        floor = self.floor
        for addr, ts in victims[:keep_from]:
            if ts > floor:
                floor = ts
            del entries[addr]
        self.floor = floor
        if self._counters is not None:
            self._counters["home_ts_summarizations"] += 1

    def reset(self) -> None:
        """Timestamp-domain reset: every bank restarts at mem_ts = 1."""
        self.entries.clear()
        self.floor = 1
