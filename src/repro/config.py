"""Configuration objects for the G-TSC reproduction.

The defaults mirror the simulated GPU of the paper's evaluation setup
(Section VI-A): 16 SMs with 16KB L1 each, 48 warps/SM, 32 threads/warp,
an 8-bank 1MB shared L2, and a GDDR-style memory partition per bank.

Two presets are provided:

* :func:`GPUConfig.paper` — the full-size machine of the paper.
* :func:`GPUConfig.small` — a scaled-down machine for unit tests, which
  keeps every structural ratio (banks, associativity, MSHR pressure)
  but runs orders of magnitude faster.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class Protocol(enum.Enum):
    """Coherence protocol selection.

    ``GTSC``
        The paper's contribution: timestamp-ordering coherence.
    ``TC``
        Temporal Coherence (HPCA'13): physical-time leases.
        TC-Strong under SC, TC-Weak (GWCT) under RC.
    ``DISABLED``
        The coherent baseline (BL): L1 caches turned off, every access
        served by the shared L2.
    ``NONCOHERENT``
        L1 caches enabled with no coherence at all.  Only correct for
        workloads that do not need coherence; used for the
        "Baseline W/L1" bar of Figure 12.
    ``MESI``
        A conventional full-map MSI directory protocol (write-back
        L1s, invalidations, recalls) — the Section II-C comparator the
        paper argues against; implemented here so that argument can be
        measured.
    """

    GTSC = "gtsc"
    TC = "tc"
    DISABLED = "disabled"
    NONCOHERENT = "noncoherent"
    MESI = "mesi"


class Consistency(enum.Enum):
    """Memory consistency model implemented on top of the protocol.

    ``SC``
        Sequential consistency: at most one outstanding memory request
        per warp; stores block the issuing warp until acknowledged.
    ``RC``
        Release consistency: stores are fire-and-forget, ordering is
        established only at FENCE instructions.
    """

    SC = "sc"
    RC = "rc"


class VisibilityPolicy(enum.Enum):
    """How a pending (unacknowledged) store is exposed within an SM.

    Section V-A of the paper describes two options for the update
    visibility problem:

    ``DELAY``
        Option 1 — block all accesses to the updated line until the
        store is acknowledged (the paper's choice; negligible overhead).
    ``OLD_COPY``
        Option 2 — keep the old copy accessible to other warps while
        the store is pending; only the writing warp waits for the ack.
    """

    DELAY = "delay"
    OLD_COPY = "old_copy"


class LeasePolicy(enum.Enum):
    """How the G-TSC L2 sizes the logical lease it grants.

    ``FIXED``
        The paper's design: every grant extends the lease by the
        configured constant.
    ``ADAPTIVE``
        A Tardis-2.0-inspired extension: lines that keep getting
        renewed earn progressively longer leases (up to
        ``lease * lease_max_factor``), cutting renewal round trips for
        hot read-mostly data; any store resets the line's history.
    """

    FIXED = "fixed"
    ADAPTIVE = "adaptive"


class SchedulerPolicy(enum.Enum):
    """Warp scheduling policy within an SM.

    ``RR``
        Loose round-robin: after issuing from a warp, move on —
        spreads progress evenly (the default; what the figure runs
        use).
    ``GTO``
        Greedy-then-oldest: keep issuing from the current warp until
        it stalls, then pick the oldest ready warp.  Improves
        intra-warp L1 locality at the cost of fairness — the standard
        alternative in GPU scheduling studies.
    """

    RR = "rr"
    GTO = "gto"


class NocTopology(enum.Enum):
    """Interconnect model between the SMs and the L2 banks.

    ``PORT``
        Bandwidth-limited endpoint ports with a flat base latency —
        the contention-at-the-edges abstraction used for the paper
        reproduction runs.
    ``MESH``
        A 2D mesh with XY dimension-order routing: per-hop latency and
        per-directed-link bandwidth, so distance and path contention
        both matter.  A substrate-fidelity option; the figures use
        PORT.
    """

    PORT = "port"
    MESH = "mesh"


class CombiningPolicy(enum.Enum):
    """How replicated read requests from warps in one SM are handled.

    Section V-B: either combine them in the L1 MSHR and issue renewals
    when the granted lease does not cover a waiter (``MSHR``, the
    paper's choice), or forward every request to L2 (``FORWARD_ALL``).
    """

    MSHR = "mshr"
    FORWARD_ALL = "forward_all"


@dataclass(frozen=True)
class GPUConfig:
    """Complete description of the simulated GPU.

    All latencies are in core cycles, all sizes in bytes, all
    bandwidths in bytes/cycle.  The configuration is immutable; derive
    variants with :meth:`with_changes`.
    """

    # --- core organisation -------------------------------------------------
    num_sms: int = 16
    max_warps_per_sm: int = 48
    threads_per_warp: int = 32

    # --- L1 (per SM) --------------------------------------------------------
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l1_mshr_entries: int = 32
    l1_latency: int = 1

    # --- L2 (shared, banked) ------------------------------------------------
    num_l2_banks: int = 8
    l2_bank_size: int = 128 * 1024
    l2_assoc: int = 8
    l2_mshr_entries: int = 32
    l2_latency: int = 20
    l2_service: int = 2          # bank occupancy per request (pipelining)
    l2_inclusive: bool = False   # G-TSC supports non-inclusive (Section V-C)

    # --- line / addressing --------------------------------------------------
    line_size: int = 128

    # --- NoC ----------------------------------------------------------------
    noc_topology: NocTopology = NocTopology.PORT
    noc_latency: int = 12            # base one-way latency (PORT)
    noc_port_bandwidth: int = 32     # bytes/cycle per endpoint port
    mesh_hop_latency: int = 2        # cycles per hop (MESH)
    mesh_link_bandwidth: int = 32    # bytes/cycle per directed link
    noc_header_bytes: int = 8
    timestamp_bytes: int = 2         # 16-bit timestamps (Section V-D)
    tc_timestamp_bytes: int = 4      # TC uses 32-bit times (Section V-D)

    # --- DRAM ---------------------------------------------------------------
    dram_latency: int = 160
    dram_bandwidth: int = 16         # bytes/cycle per partition

    # --- multi-GPU (HALCONE-style scale-out) --------------------------------
    n_gpus: int = 1                  # 1 = the single-GPU machine of the paper
    interlink_latency: int = 100     # one-way inter-GPU link latency (cycles)
    interlink_bandwidth: int = 8     # bytes/cycle per GPU endpoint port
    home_ts_entries: int = 4096      # per-address mem_ts directory capacity

    # --- protocol parameters ------------------------------------------------
    protocol: Protocol = Protocol.GTSC
    consistency: Consistency = Consistency.RC
    lease: int = 10                  # logical lease for G-TSC (Fig. 14: 8-20)
    tc_lease: int = 300              # physical-cycle lease for TC
    ts_max: int = (1 << 16) - 1      # 16-bit timestamp space (Section V-D)
    visibility: VisibilityPolicy = VisibilityPolicy.DELAY
    combining: CombiningPolicy = CombiningPolicy.MSHR
    lease_policy: LeasePolicy = LeasePolicy.FIXED
    lease_max_factor: int = 8           # cap for adaptive leases

    # --- scheduling ---------------------------------------------------------
    issue_width: int = 1             # memory instructions issued per SM/cycle
    mshr_retry_interval: int = 4     # cycles before retrying a full MSHR
    scheduler: SchedulerPolicy = SchedulerPolicy.RR

    # ------------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.l1_size % (self.l1_assoc * self.line_size):
            raise ValueError("l1_size must be a multiple of assoc * line_size")
        if self.l2_bank_size % (self.l2_assoc * self.line_size):
            raise ValueError(
                "l2_bank_size must be a multiple of assoc * line_size"
            )
        if self.lease <= 0:
            raise ValueError("lease must be positive")
        if self.lease_max_factor < 1:
            raise ValueError("lease_max_factor must be at least 1")
        if self.ts_max < 2 * self.lease * self.lease_max_factor:
            raise ValueError("ts_max too small for the configured lease")
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be at least 1")
        if self.n_gpus > 1:
            if self.interlink_latency < 1:
                raise ValueError("interlink_latency must be positive")
            if self.interlink_bandwidth < 1:
                raise ValueError("interlink_bandwidth must be positive")
            if self.home_ts_entries < 1:
                raise ValueError("home_ts_entries must be positive")
            if self.noc_topology is not NocTopology.PORT:
                raise ValueError("multi-GPU requires the PORT NoC model")

    # --- derived geometry ---------------------------------------------------
    @property
    def l1_sets(self) -> int:
        """Number of sets in each private L1 cache."""
        return self.l1_size // (self.l1_assoc * self.line_size)

    @property
    def l2_sets(self) -> int:
        """Number of sets in each L2 bank."""
        return self.l2_bank_size // (self.l2_assoc * self.line_size)

    @property
    def total_l2_size(self) -> int:
        """Aggregate shared-cache capacity across all banks."""
        return self.num_l2_banks * self.l2_bank_size

    def bank_of(self, line_addr: int) -> int:
        """Map a line address to its home L2 bank (address interleaving)."""
        return line_addr % self.num_l2_banks

    def home_gpu_of(self, line_addr: int) -> int:
        """Map a line address to its home GPU (NUMA interleaving).

        Addresses interleave across L2 banks first (``bank_of``) and
        then across GPUs, so every line has exactly one home bank
        system-wide — L2 state is never replicated between GPUs.
        """
        return (line_addr // self.num_l2_banks) % self.n_gpus

    # --- presets -------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "GPUConfig":
        """The full-size configuration from Section VI-A of the paper."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides) -> "GPUConfig":
        """A scaled-down machine for fast unit tests.

        4 SMs x 8 warps, 2KB L1, 2 x 16KB L2 banks.  Structural ratios
        (associativity, relative latencies) match the paper preset.
        """
        params = dict(
            num_sms=4,
            max_warps_per_sm=8,
            l1_size=8 * 1024,
            l1_assoc=4,
            l1_mshr_entries=8,
            num_l2_banks=2,
            l2_bank_size=32 * 1024,
            l2_mshr_entries=8,
            noc_latency=6,
            dram_latency=60,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def tiny(cls, **overrides) -> "GPUConfig":
        """A minimal machine for protocol micro-tests and litmus tests.

        2 SMs x 2 warps with very small caches so that evictions,
        renewals and timestamp overflow are easy to provoke.
        """
        params = dict(
            num_sms=2,
            max_warps_per_sm=2,
            l1_size=512,
            l1_assoc=2,
            l1_mshr_entries=4,
            num_l2_banks=1,
            l2_bank_size=2 * 1024,
            l2_assoc=2,
            l2_mshr_entries=4,
            noc_latency=4,
            l2_latency=6,
            dram_latency=30,
        )
        params.update(overrides)
        return cls(**params)

    def with_changes(self, **overrides) -> "GPUConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary used by the harness output."""
        gpus = f"{self.n_gpus}GPU x " if self.n_gpus > 1 else ""
        return (
            f"{self.protocol.value}/{self.consistency.value} "
            f"{gpus}{self.num_sms}SM x {self.max_warps_per_sm}w, "
            f"L1 {self.l1_size // 1024}KB, "
            f"L2 {self.num_l2_banks}x{self.l2_bank_size // 1024}KB, "
            f"lease={self.lease}"
        )
