"""Inter-GPU sharing workloads for the multi-GPU machine.

The paper's twelve benchmarks stress coherence *within* one GPU; the
HALCONE-style cluster (:mod:`repro.multigpu`) needs traffic that
crosses the inter-GPU link.  The cluster places consecutive CTAs on
consecutive GPUs (``gpu = cta_index % n_gpus``), so a generator makes
sharing *cross-GPU* simply by making **adjacent warps** share data:
at ``n_gpus >= 2`` every neighbour pair straddles a link, while at
``n_gpus = 1`` the same trace degenerates to ordinary intra-GPU
sharing — one kernel serves the whole 1/2/4/8-GPU comparison.

Three patterns, mirroring the multi-GPU literature's staples:

* **PCX** — producer/consumer pipeline: each warp fills a chunk,
  fences, publishes a flag, then consumes its neighbour's chunk.
  Write-then-remote-read is the flow where G-TSC's data-less renewals
  and the shared mem_ts home directory earn their keep.
* **ARX** — recursive-doubling all-reduce: log2(N) exchange rounds,
  each reading a partner's partial and rewriting your own.  Dense
  all-to-all sharing; interlink bandwidth bound at high GPU counts.
* **NZP** — NUMA-skewed zipf: power-law reads over one shared region
  whose hot head, by the cluster's interleaved home mapping, homes on
  the low-numbered GPUs — the skewed-home case where remote leases
  either amortise (logical time) or thrash (physical time).
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.instr import Instr, Kernel, compute, fence, load, store
from repro.workloads.patterns import AddressSpace, scaled


def _finish(trace: List[Instr]) -> List[Instr]:
    trace.append(fence())
    return trace


def producer_consumer(rng: random.Random, scale: float) -> Kernel:
    """PCX — neighbour producer/consumer pipeline across GPUs."""
    space = AddressSpace()
    num_warps = scaled(32, scale, minimum=4)
    chunk = scaled(8, scale, minimum=2)
    rounds = scaled(10, scale, minimum=2)
    slots = space.region(num_warps * chunk)
    flags = space.region(num_warps)

    traces = []
    for w in range(num_warps):
        neighbour = (w + 1) % num_warps      # next CTA = next GPU
        trace: List[Instr] = []
        for _ in range(rounds):
            # produce this warp's chunk, then publish the flag
            for k in range(chunk):
                trace.append(store(slots.line(w * chunk + k)))
                trace.append(compute(rng.randrange(1, 5)))
            trace.append(fence())
            trace.append(store(flags.line(w)))
            trace.append(fence())
            # consume the neighbour's chunk (flag first, as a reader)
            trace.append(load(flags.line(neighbour)))
            for k in range(chunk):
                trace.append(load(slots.line(neighbour * chunk + k)))
                trace.append(compute(2))
        traces.append(_finish(trace))
    return Kernel("PCX", traces)


def all_reduce(rng: random.Random, scale: float) -> Kernel:
    """ARX — recursive-doubling all-reduce exchange."""
    space = AddressSpace()
    num_warps = scaled(32, scale, minimum=4)
    partials = space.region(num_warps)
    steps = max(1, (num_warps - 1).bit_length())  # ceil(log2(N))
    repeats = scaled(6, scale, minimum=2)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for _ in range(repeats):
            # publish this warp's partial
            trace.append(store(partials.line(w)))
            trace.append(fence())
            # combine with partners at doubling distances
            for r in range(steps):
                partner = (w + (1 << r)) % num_warps
                trace.append(load(partials.line(partner)))
                trace.append(compute(rng.randrange(2, 7)))
                trace.append(store(partials.line(w)))
                trace.append(fence())
            # read the converged result from a far neighbour
            trace.append(load(partials.line((w + num_warps // 2)
                                            % num_warps)))
        traces.append(_finish(trace))
    return Kernel("ARX", traces)


def numa_zipf(rng: random.Random, scale: float) -> Kernel:
    """NZP — NUMA-skewed zipf reads over one shared region.

    The power-law head (the hottest lines) sits at the bottom of the
    region, so under the cluster's interleaved home mapping most hot
    lines home on GPU 0: every other GPU serves its hot reads across
    the interlink.  A thin write stream keeps the leases honest.
    """
    space = AddressSpace()
    shared = space.region(scaled(256, scale, minimum=32))
    num_warps = scaled(32, scale, minimum=4)
    steps = scaled(30, scale, minimum=5)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for s in range(steps):
            trace.append(load(shared.powerlaw_line(rng)))
            trace.append(load(shared.powerlaw_line(rng)))
            trace.append(compute(rng.randrange(1, 4)))
            # a structural write every 6th step (scale-stable mix)
            if s % 6 == 5:
                trace.append(store(shared.powerlaw_line(rng)))
                trace.append(fence())
        traces.append(_finish(trace))
    return Kernel("NZP", traces)
