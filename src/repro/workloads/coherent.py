"""The six benchmarks that *require* coherence (paper Section VI-A).

Each generator is a synthetic stand-in for the CUDA benchmark of the
same name, reproducing the access-pattern features that drive the
paper's results: inter-SM read-write sharing, fence-delimited
iterations, read phases with temporal reuse (where logical leases beat
physical ones — data that nobody wrote stays valid forever in logical
time, while TC's physical leases expire and force full refills), and
the read/write mixes the paper's discussion attributes to each
program.  See DESIGN.md for the substitution rationale.

All traces end with a fence so that every warp's stores are globally
performed before the kernel retires.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.instr import Instr, Kernel, compute, fence, load, store
from repro.workloads.patterns import AddressSpace, scaled


def _finish(trace: List[Instr]) -> List[Instr]:
    trace.append(fence())
    return trace


def barnes_hut(rng: random.Random, scale: float) -> Kernel:
    """BH — Barnes-Hut n-body tree traversal.

    Warps repeatedly walk a shared octree.  The upper levels (a hot
    set of ~16 lines) are re-read on every traversal and written very
    rarely (centre-of-mass refreshes); leaves follow a power law.
    Read-mostly with long reuse distances: the pattern where G-TSC
    keeps hitting in L1 while TC's physical leases expire.
    """
    space = AddressSpace()
    top = space.region(16)                       # root + upper levels
    tree = space.region(scaled(192, scale))      # lower levels
    bodies = space.region(scaled(512, scale))
    num_warps = scaled(48, scale)
    steps = scaled(24, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for s in range(steps):
            # walk from the root: the hot upper levels, twice per walk
            trace.append(load(top.line(0), top.line(1 + (s % 3))))
            trace.append(load(top.line(4 + rng.randrange(4))))
            trace.append(compute(3))
            trace.append(load(top.line(8 + rng.randrange(8))))
            for _ in range(3):
                trace.append(load(tree.powerlaw_line(rng)))
                trace.append(compute(4))
            # body updates are batched: one private store per 4 walks
            if s % 4 == 3:
                trace.append(store(bodies.line(w * 8 + rng.randrange(8))))
            # rare shared tree refresh
            if rng.random() < 0.06:
                trace.append(store(tree.powerlaw_line(rng)))
                trace.append(fence())
            trace.append(compute(5))
        traces.append(_finish(trace))
    return Kernel("BH", traces)


def connected_components(rng: random.Random, scale: float) -> Kernel:
    """CC — label-propagation connected components.

    Memory-intensive label exchange: every iteration re-reads a fixed
    neighbour set (written each round by the owning warps) plus random
    probes, then rewrites this warp's labels, fencing each round.  The
    paper singles CC out as the benchmark where G-TSC-SC beats
    G-TSC-RC because RC's extra concurrent requests congest the NoC —
    so this generator issues many memory operations with almost no
    compute between them.
    """
    space = AddressSpace()
    labels = space.region(scaled(192, scale))
    num_warps = scaled(48, scale)
    iterations = scaled(12, scale)

    traces = []
    for w in range(num_warps):
        own = [labels.line(w * 4 + k) for k in range(4)]
        neighbours = [labels.random_line(rng) for _ in range(8)]
        trace: List[Instr] = []
        for _ in range(iterations):
            for n in neighbours:
                trace.append(load(n))
            trace.append(load(labels.powerlaw_line(rng),
                              labels.random_line(rng)))
            trace.append(compute(1))
            # propagate: rewrite this warp's labels
            for line in own:
                if rng.random() < 0.7:
                    trace.append(store(line))
            trace.append(fence())
        traces.append(_finish(trace))
    return Kernel("CC", traces)


def dynamic_load_balancing(rng: random.Random, scale: float) -> Kernel:
    """DLP — task queues with work stealing.

    A small set of queue-head lines is hammered with reads and writes
    by every warp (high write contention on hot lines); a shared
    read-mostly task table is consulted repeatedly; claimed task
    payloads stream privately.  The hot-line writes are where TC's
    lease-expiry write stalls hurt most.
    """
    space = AddressSpace()
    heads = space.region(scaled(16, scale, minimum=4))
    table = space.region(32)                   # task metadata, read-mostly
    tasks = space.region(scaled(768, scale))
    num_warps = scaled(48, scale)
    rounds = scaled(20, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for r in range(rounds):
            head = heads.random_line(rng)
            trace.append(load(head))             # inspect a queue head
            trace.append(load(table.line(rng.randrange(8))))
            trace.append(load(table.line(8 + rng.randrange(24))))
            trace.append(compute(2))
            if rng.random() < 0.4:
                trace.append(store(head))        # pop / steal
                trace.append(fence())
            # process the claimed task (private streaming)
            base = (w * rounds + r) * 2
            trace.append(load(tasks.line(base), tasks.line(base + 1)))
            trace.append(compute(10))
            if r % 3 == 2:
                trace.append(store(tasks.line(base)))
        traces.append(_finish(trace))
    return Kernel("DLP", traces)


def vpr(rng: random.Random, scale: float) -> Kernel:
    """VPR — simulated-annealing placement (Versatile Place & Route).

    Each warp proposes swaps mostly inside its own neighbourhood of
    the shared placement grid (re-reading the same cells across moves)
    with occasional long-range probes; accepted swaps write both cells
    back.  Shared read-write traffic with medium compute.
    """
    space = AddressSpace()
    grid = space.region(scaled(384, scale))
    num_warps = scaled(48, scale)
    moves = scaled(24, scale)
    hood = 16                                 # neighbourhood size (lines)

    traces = []
    for w in range(num_warps):
        base = (w * hood) % max(1, grid.lines - hood)
        trace: List[Instr] = []
        for _ in range(moves):
            a = grid.line(base + rng.randrange(hood))
            b = grid.line(base + rng.randrange(hood))
            trace.append(load(a, b))
            trace.append(load(grid.line(base + rng.randrange(hood))))
            if rng.random() < 0.2:             # long-range probe
                trace.append(load(grid.random_line(rng)))
            trace.append(compute(8))
            if rng.random() < 0.25:            # accept the swap
                trace.append(store(a))
                trace.append(store(b))
                trace.append(fence())
            trace.append(compute(4))
        traces.append(_finish(trace))
    return Kernel("VPR", traces)


def stencil(rng: random.Random, scale: float) -> Kernel:
    """STN — iterative stencil with halo exchange.

    Each warp owns a tile; every iteration re-reads its interior,
    reads the halo lines owned (and rewritten) by neighbouring warps,
    then writes its boundary and fences.  Producer-consumer sharing
    between *adjacent* SMs every iteration — coherence misses on the
    halo are inevitable; the interior reuse is where the protocols
    differ.
    """
    space = AddressSpace()
    tile_lines = 6
    num_warps = scaled(48, scale)
    field = space.region(num_warps * tile_lines)
    iterations = scaled(10, scale)

    traces = []
    for w in range(num_warps):
        mine = w * tile_lines
        left = ((w - 1) % num_warps) * tile_lines
        right = ((w + 1) % num_warps) * tile_lines
        trace: List[Instr] = []
        for it in range(iterations):
            # interior reads (reused every iteration, never written by
            # other warps)
            trace.append(load(field.line(mine + 1), field.line(mine + 2)))
            trace.append(load(field.line(mine + 3), field.line(mine + 4)))
            trace.append(compute(4))
            trace.append(load(field.line(mine + 1), field.line(mine + 3)))
            # halo read: neighbours' boundary lines (fresh each round)
            trace.append(load(field.line(left + tile_lines - 1)))
            trace.append(load(field.line(right)))
            trace.append(compute(6))
            # write own boundary (what the neighbours read)
            trace.append(store(field.line(mine)))
            trace.append(store(field.line(mine + tile_lines - 1)))
            if it % 2 == 1:                    # interior update, batched
                trace.append(store(field.line(mine + 2)))
            trace.append(fence())
        traces.append(_finish(trace))
    return Kernel("STN", traces)


def bfs(rng: random.Random, scale: float) -> Kernel:
    """BFS — frontier-based breadth-first search.

    Streams adjacency lists (read-once), probes a shared ``visited``
    bitmap with power-law locality (hub vertices are re-probed by
    everyone), and sparsely writes newly visited vertices; a fence
    ends each level.  Half the warps discover nothing (read-only) —
    their logical clocks barely advance, so under G-TSC their hub
    probes keep hitting while TC refetches on every physical expiry.
    """
    space = AddressSpace()
    adjacency = space.region(scaled(1024, scale))
    visited = space.region(scaled(128, scale))
    num_warps = scaled(48, scale)
    levels = scaled(8, scale)
    edges_per_level = 5

    traces = []
    for w in range(num_warps):
        writer = w % 2 == 0
        trace: List[Instr] = []
        cursor = w * 17
        for _level in range(levels):
            for _ in range(edges_per_level):
                # stream this warp's slice of the adjacency lists
                trace.append(load(adjacency.line(cursor),
                                  adjacency.line(cursor + 1)))
                cursor += 2
                # probe the shared visited map (hot, power-law)
                trace.append(load(visited.powerlaw_line(rng)))
                trace.append(compute(2))
                if writer and rng.random() < 0.2:
                    # newly discovered vertices are cold (hubs were
                    # visited in the first levels), so the writes land
                    # on uniformly random lines, not the hot probes
                    trace.append(store(visited.random_line(rng)))
            trace.append(fence())                   # level barrier
        traces.append(_finish(trace))
    return Kernel("BFS", traces)
