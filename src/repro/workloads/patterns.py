"""Building blocks for synthetic workload traces.

The simulator only observes the coalesced memory-access stream, so a
benchmark is characterised by: which line ranges it touches (private,
read-shared, read-write-shared), with what pattern (streaming,
power-law, stencil-neighbour), at what read/write mix, and how much
compute separates memory instructions.  The helpers here express those
ingredients; the benchmark modules combine them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Region:
    """A contiguous range of line addresses."""

    base: int
    lines: int

    def line(self, index: int) -> int:
        """The ``index``-th line of the region (wraps around)."""
        return self.base + (index % self.lines)

    def random_line(self, rng: random.Random) -> int:
        return self.base + rng.randrange(self.lines)

    def powerlaw_line(self, rng: random.Random, alpha: float = 1.3) -> int:
        """A Zipf-flavoured pick: low indices are much hotter.

        Models the hub-dominated access patterns of graph workloads
        (BH tree roots, high-degree BFS vertices).
        """
        u = rng.random()
        # inverse-CDF of a truncated Pareto over [0, lines)
        index = int(self.lines * (u ** alpha))
        return self.base + min(index, self.lines - 1)


class AddressSpace:
    """Hands out non-overlapping regions of the line-address space."""

    def __init__(self, base: int = 0) -> None:
        self._next = base

    def region(self, lines: int) -> Region:
        if lines <= 0:
            raise ValueError("region must have at least one line")
        region = Region(self._next, lines)
        self._next += lines
        return region


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a workload dimension, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * scale)))


def interleave_compute(rng: random.Random, intensity: int) -> int:
    """Cycles of compute between memory instructions.

    ``intensity`` is the mean; the draw is uniform in [1, 2*mean-1] so
    compute-bound benchmarks (CCP, HS) pick a large mean and
    memory-bound ones a small one.
    """
    if intensity <= 1:
        return 1
    return rng.randrange(1, 2 * intensity)


def coalesced_span(region: Region, start: int, width: int) -> List[int]:
    """``width`` consecutive lines starting at ``start`` (a coalesced
    multi-line access, e.g. a strided warp read)."""
    return [region.line(start + k) for k in range(width)]
