"""The paper's twelve benchmarks as synthetic trace generators.

Two groups, exactly as in Section VI-A:

* **coherent** (BH, CC, DLP, VPR, STN, BFS) — require coherence for
  correctness; the left cluster of every figure.
* **independent** (CCP, GE, HS, KM, BP, SGM) — function without
  coherence; used to measure protocol overhead.

Use :func:`build_workload` to construct a kernel::

    kernel = build_workload("BFS", scale=0.5, seed=7)

``scale`` shrinks or grows every dimension of the workload (warps,
iterations, footprints); ``seed`` makes the trace deterministic.

Passing ``cache_dir`` returns the kernel in *compiled* form
(:class:`repro.trace.compiled.CompiledKernel`) backed by an on-disk
trace cache: generating a large workload means running its Python
generator and compiling every warp's trace, which for paper-scale
inputs dwarfs a JSON read.  Entries are keyed by
``(name, scale, seed, GENERATOR_VERSION)`` — bump
:data:`GENERATOR_VERSION` whenever any generator's output changes.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.trace.compiled import CompiledKernel, compile_kernel
from repro.trace.instr import Kernel
from repro.workloads import coherent, independent, multigpu

#: Version stamp of the generator suite.  Participates in every trace
#: cache key, so bumping it invalidates all cached compiled traces —
#: required whenever a generator's emitted instruction stream changes.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark.

    ``multigpu`` marks the inter-GPU sharing generators
    (:mod:`repro.workloads.multigpu`): they are full registry citizens
    (buildable, cacheable, servable) but stay out of ``ALL_NAMES`` /
    ``COHERENT_NAMES`` so the paper's twelve-benchmark figures are
    byte-identical to the pre-multigpu harness.
    """

    name: str
    requires_coherence: bool
    description: str
    builder: Callable[[random.Random, float], Kernel]
    multigpu: bool = False


_SPECS: List[WorkloadSpec] = [
    WorkloadSpec("BH", True, "Barnes-Hut n-body tree traversal",
                 coherent.barnes_hut),
    WorkloadSpec("CC", True, "label-propagation connected components",
                 coherent.connected_components),
    WorkloadSpec("DLP", True, "task queues with work stealing",
                 coherent.dynamic_load_balancing),
    WorkloadSpec("VPR", True, "simulated-annealing placement",
                 coherent.vpr),
    WorkloadSpec("STN", True, "iterative stencil with halo exchange",
                 coherent.stencil),
    WorkloadSpec("BFS", True, "frontier breadth-first search",
                 coherent.bfs),
    WorkloadSpec("CCP", False, "cutoff Coulombic potential (compute-bound)",
                 independent.cutcp),
    WorkloadSpec("GE", False, "Gaussian elimination",
                 independent.gaussian),
    WorkloadSpec("HS", False, "hotspot thermal stencil (private tiles)",
                 independent.hotspot),
    WorkloadSpec("KM", False, "k-means clustering (memory-intensive)",
                 independent.kmeans),
    WorkloadSpec("BP", False, "back-propagation training",
                 independent.backprop),
    WorkloadSpec("SGM", False, "semi-global stereo matching",
                 independent.sgm),
    # inter-GPU sharing generators (repro.multigpu comparison)
    WorkloadSpec("PCX", True, "cross-GPU producer/consumer pipeline",
                 multigpu.producer_consumer, multigpu=True),
    WorkloadSpec("ARX", True, "recursive-doubling all-reduce exchange",
                 multigpu.all_reduce, multigpu=True),
    WorkloadSpec("NZP", True, "NUMA-skewed zipf sharing",
                 multigpu.numa_zipf, multigpu=True),
]

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

COHERENT_NAMES: List[str] = [s.name for s in _SPECS
                             if s.requires_coherence and not s.multigpu]
INDEPENDENT_NAMES: List[str] = [s.name for s in _SPECS
                                if not s.requires_coherence
                                and not s.multigpu]
#: the paper's twelve single-GPU benchmarks (figure vocabulary)
ALL_NAMES: List[str] = [s.name for s in _SPECS if not s.multigpu]
#: the inter-GPU sharing generators (multi-GPU comparison vocabulary)
MULTIGPU_NAMES: List[str] = [s.name for s in _SPECS if s.multigpu]


def trace_key(name: str, scale: float, seed: int) -> str:
    """The sha256 cache key of one generated workload trace."""
    payload = {
        "generator_version": GENERATOR_VERSION,
        "name": name,
        "scale": scale,
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# per-directory trace caches, shared so hit/miss counters accumulate
# across build_workload calls (and so tests can inspect them)
_trace_caches: Dict[str, object] = {}


def _trace_cache(cache_dir: str):
    cache = _trace_caches.get(cache_dir)
    if cache is None:
        # imported lazily: repro.harness pulls in the runner (and thus
        # this module) at package import, so a top-level import of the
        # harness cache here would be circular
        from repro.harness.cache import JsonFileCache

        class TraceCache(JsonFileCache):
            what = "trace-cache"

            def _decode(self, data):
                return CompiledKernel.from_dict(data)

            def _encode(self, kernel):
                return kernel.to_dict()

        cache = _trace_caches[cache_dir] = TraceCache(cache_dir)
    return cache


def build_workload(name: str, scale: float = 1.0, seed: int = 2018,
                   cache_dir: Optional[str] = None,
                   ) -> Union[Kernel, "CompiledKernel"]:
    """Build benchmark ``name`` at the given scale, deterministically.

    Without ``cache_dir`` this returns the authoring-level
    :class:`Kernel`, exactly as before.  With ``cache_dir`` it returns
    the :class:`CompiledKernel` the simulator executes, reading it from
    the on-disk trace cache when the same ``(name, scale, seed,
    GENERATOR_VERSION)`` has been built before and writing it there
    otherwise.
    """
    try:
        spec = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    if cache_dir is not None:
        cache = _trace_cache(cache_dir)
        key = trace_key(name, scale, seed)
        compiled = cache.get(key)
        if compiled is None:
            kernel = spec.builder(random.Random(seed), scale)
            compiled = compile_kernel(kernel)  # validates
            cache.put(key, compiled)
        return compiled
    kernel = spec.builder(random.Random(seed), scale)
    kernel.validate()
    return kernel
