"""The paper's twelve benchmarks as synthetic trace generators.

Two groups, exactly as in Section VI-A:

* **coherent** (BH, CC, DLP, VPR, STN, BFS) — require coherence for
  correctness; the left cluster of every figure.
* **independent** (CCP, GE, HS, KM, BP, SGM) — function without
  coherence; used to measure protocol overhead.

Use :func:`build_workload` to construct a kernel::

    kernel = build_workload("BFS", scale=0.5, seed=7)

``scale`` shrinks or grows every dimension of the workload (warps,
iterations, footprints); ``seed`` makes the trace deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.trace.instr import Kernel
from repro.workloads import coherent, independent


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark."""

    name: str
    requires_coherence: bool
    description: str
    builder: Callable[[random.Random, float], Kernel]


_SPECS: List[WorkloadSpec] = [
    WorkloadSpec("BH", True, "Barnes-Hut n-body tree traversal",
                 coherent.barnes_hut),
    WorkloadSpec("CC", True, "label-propagation connected components",
                 coherent.connected_components),
    WorkloadSpec("DLP", True, "task queues with work stealing",
                 coherent.dynamic_load_balancing),
    WorkloadSpec("VPR", True, "simulated-annealing placement",
                 coherent.vpr),
    WorkloadSpec("STN", True, "iterative stencil with halo exchange",
                 coherent.stencil),
    WorkloadSpec("BFS", True, "frontier breadth-first search",
                 coherent.bfs),
    WorkloadSpec("CCP", False, "cutoff Coulombic potential (compute-bound)",
                 independent.cutcp),
    WorkloadSpec("GE", False, "Gaussian elimination",
                 independent.gaussian),
    WorkloadSpec("HS", False, "hotspot thermal stencil (private tiles)",
                 independent.hotspot),
    WorkloadSpec("KM", False, "k-means clustering (memory-intensive)",
                 independent.kmeans),
    WorkloadSpec("BP", False, "back-propagation training",
                 independent.backprop),
    WorkloadSpec("SGM", False, "semi-global stereo matching",
                 independent.sgm),
]

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

COHERENT_NAMES: List[str] = [s.name for s in _SPECS if s.requires_coherence]
INDEPENDENT_NAMES: List[str] = [s.name for s in _SPECS
                                if not s.requires_coherence]
ALL_NAMES: List[str] = [s.name for s in _SPECS]


def build_workload(name: str, scale: float = 1.0,
                   seed: int = 2018) -> Kernel:
    """Build benchmark ``name`` at the given scale, deterministically."""
    try:
        spec = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    kernel = spec.builder(random.Random(seed), scale)
    kernel.validate()
    return kernel
