"""Litmus-test kernels for consistency-model validation.

Classic two-warp shapes (message passing, store buffering, coherence
of a single location) expressed as traces.  The test helpers run them
many times with randomised timing padding and check the *outcomes*
against what each consistency model permits:

* message passing with fences must never show the stale-data outcome
  under G-TSC (SC or RC-with-fences) or TC-Strong;
* a single location must never appear to go backwards in any coherent
  configuration.

Outcome extraction works on the recorded access log: the helper
returns, for each observing load, the version it consumed.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.trace.instr import Instr, Kernel, compute, fence, load, store
from repro.validate.versions import AccessLog


# fixed, well-separated line addresses for the two variables
X_LINE = 3
Y_LINE = 10


def _pad(rng: random.Random, limit: int) -> List[Instr]:
    """Random compute padding to perturb interleavings."""
    cycles = rng.randrange(1, limit + 1)
    return [compute(cycles)]


def message_passing(rng: random.Random, with_fences: bool = True) -> Kernel:
    """MP: W0 writes data then flag; W1 polls flag then reads data.

    With fences, a reader that observes the flag write must also
    observe the data write.  The reader polls the flag several times
    so at least one observation usually lands after the writer.
    """
    writer: List[Instr] = []
    writer += _pad(rng, 30)
    writer.append(store(X_LINE))            # data
    if with_fences:
        writer.append(fence())
    writer.append(store(Y_LINE))            # flag
    writer.append(fence())

    reader: List[Instr] = []
    reader += _pad(rng, 30)
    for _ in range(12):
        reader.append(load(Y_LINE))         # poll the flag
        if with_fences:
            reader.append(fence())
        reader.append(load(X_LINE))         # read the data
        reader += _pad(rng, 8)
    reader.append(fence())
    return Kernel("litmus-mp", [writer, reader])


def store_buffering(rng: random.Random) -> Kernel:
    """SB: W0 writes X then reads Y; W1 writes Y then reads X.

    Under SC at most one warp may read the initial value (0); both
    reading 0 would require reordering that SC forbids.
    """
    w0: List[Instr] = []
    w0 += _pad(rng, 10)
    w0.append(store(X_LINE))
    w0.append(load(Y_LINE))
    w0.append(fence())

    w1: List[Instr] = []
    w1 += _pad(rng, 10)
    w1.append(store(Y_LINE))
    w1.append(load(X_LINE))
    w1.append(fence())
    return Kernel("litmus-sb", [w0, w1])


def single_location(rng: random.Random, writers: int = 2,
                    readers: int = 2, stores_per_writer: int = 6,
                    loads_per_reader: int = 12) -> Kernel:
    """Coherence litmus: many writers and readers of one line.

    Every reader's observed version sequence must be non-decreasing —
    a location never appears to travel back in time.
    """
    traces: List[List[Instr]] = []
    for _w in range(writers):
        t: List[Instr] = []
        for _ in range(stores_per_writer):
            t += _pad(rng, 12)
            t.append(store(X_LINE))
        t.append(fence())
        traces.append(t)
    for _r in range(readers):
        t = []
        for _ in range(loads_per_reader):
            t += _pad(rng, 6)
            t.append(load(X_LINE))
        t.append(fence())
        traces.append(t)
    return Kernel("litmus-1loc", traces)


def iriw(rng: random.Random) -> Kernel:
    """IRIW: independent readers, independent writers.

    W0 writes X, W1 writes Y; R2 reads X then Y, R3 reads Y then X.
    Under a write-atomic model (SC) the two readers can never disagree
    about the order of the independent writes: the combined outcome
    "R2 saw X-before-Y *and* R3 saw Y-before-X" is forbidden.

    Note: with the tiny config's 2 warps/SM, the four warps land on
    two SMs (writer+reader pairs), which is the harder variant —
    readers may share an L1 with a writer.
    """
    w0: List[Instr] = _pad(rng, 20) + [store(X_LINE), fence()]
    w1: List[Instr] = _pad(rng, 20) + [store(Y_LINE), fence()]
    r2: List[Instr] = _pad(rng, 25) + [load(X_LINE), load(Y_LINE),
                                       fence()]
    r3: List[Instr] = _pad(rng, 25) + [load(Y_LINE), load(X_LINE),
                                       fence()]
    return Kernel("litmus-iriw", [w0, w1, r2, r3])


def iriw_outcome(log: AccessLog) -> Tuple[Tuple[int, int],
                                          Tuple[int, int]]:
    """((r2_x, r2_y), (r3_y, r3_x)) in each reader's program order."""
    def reads_of(uid):
        records = sorted((r for r in log.loads if r.warp_uid == uid),
                         key=lambda r: r.complete_cycle)
        return [(r.addr, r.version) for r in records]

    r2 = reads_of(2)
    r3 = reads_of(3)
    r2_x = next(v for a, v in r2 if a == X_LINE)
    r2_y = next(v for a, v in r2 if a == Y_LINE)
    r3_y = next(v for a, v in r3 if a == Y_LINE)
    r3_x = next(v for a, v in r3 if a == X_LINE)
    return (r2_x, r2_y), (r3_y, r3_x)


# ---------------------------------------------------------------------------
# outcome extraction
# ---------------------------------------------------------------------------

def mp_outcomes(log: AccessLog) -> List[Tuple[int, int]]:
    """(flag_version, data_version) pairs seen by the MP reader.

    The reader alternates flag/data loads, so pairing consecutive
    (Y, X) observations in completion order recovers each poll.
    """
    reader_loads = sorted(
        (r for r in log.loads if r.addr in (X_LINE, Y_LINE)),
        key=lambda r: (r.warp_uid, r.complete_cycle),
    )
    pairs: List[Tuple[int, int]] = []
    flag_version = None
    for record in reader_loads:
        if record.warp_uid != 1:
            continue
        if record.addr == Y_LINE:
            flag_version = record.version
        elif flag_version is not None:
            pairs.append((flag_version, record.version))
            flag_version = None
    return pairs


def observed_versions(log: AccessLog, warp_uid: int,
                      addr: int = X_LINE) -> List[int]:
    """The version sequence one warp observed for ``addr``."""
    loads = [r for r in log.loads
             if r.warp_uid == warp_uid and r.addr == addr]
    loads.sort(key=lambda r: r.complete_cycle)
    return [r.version for r in loads]
