"""The six benchmarks that do *not* require coherence.

These are the right-hand cluster of the paper's figures: regular
data-parallel kernels whose warps touch disjoint or read-only data.
They function correctly with a non-coherent L1, so the paper uses them
to measure the pure *overhead* of running a coherence protocol
(~11 % for G-TSC versus the non-coherent L1 baseline, Section VI-B).

Compute-intensive members (CCP, HS, KM) should show almost no
difference between protocols or consistency models — their stalls hide
behind compute — which is exactly the paper's observation.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.instr import Instr, Kernel, compute, load, store
from repro.workloads.patterns import AddressSpace, scaled


def cutcp(rng: random.Random, scale: float) -> Kernel:
    """CCP — cutoff Coulombic potential: compute-bound, tiny footprint.

    Long arithmetic bursts over a small read-only lattice slice per
    warp; writes are rare and private.  The benchmark whose runtime
    the paper reports as essentially protocol-independent.
    """
    space = AddressSpace()
    lattice = space.region(scaled(96, scale))
    out = space.region(scaled(256, scale))
    num_warps = scaled(48, scale)
    steps = scaled(18, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for s in range(steps):
            trace.append(load(lattice.line(w + s)))
            trace.append(compute(40))
            if s % 6 == 5:
                trace.append(store(out.line(w * steps + s)))
        traces.append(trace)
    return Kernel("CCP", traces)


def gaussian(rng: random.Random, scale: float) -> Kernel:
    """GE — Gaussian elimination.

    Every warp reads the shared pivot row (broadcast read-only reuse —
    ideal for an L1) and streams over its own rows, writing them back
    once per step.
    """
    space = AddressSpace()
    pivot = space.region(scaled(8, scale, minimum=2))
    rows = space.region(scaled(1024, scale))
    out = space.region(scaled(1024, scale))
    num_warps = scaled(48, scale)
    steps = scaled(16, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for s in range(steps):
            mine = w * steps + s
            # the pivot row is re-read for every column block
            trace.append(load(pivot.line(s), pivot.line(s + 1)))
            trace.append(load(rows.line(mine), rows.line(mine + 1)))
            trace.append(compute(4))
            trace.append(load(pivot.line(s)))
            trace.append(load(rows.line(mine + 2)))
            trace.append(compute(6))
            # eliminated row goes to the output copy of the matrix
            trace.append(store(out.line(mine)))
        traces.append(trace)
    return Kernel("GE", traces)


def hotspot(rng: random.Random, scale: float) -> Kernel:
    """HS — thermal simulation on private tiles.

    Pure tile-local stencil: each warp reads and rewrites only its own
    tile, with solid compute in between.  No inter-warp sharing at
    all, so every protocol should look identical (paper: HS shows no
    protocol sensitivity).
    """
    space = AddressSpace()
    tile_lines = 8
    num_warps = scaled(48, scale)
    temp_in = space.region(num_warps * tile_lines)    # read-only input
    temp_out = space.region(num_warps * tile_lines)   # private output
    iterations = scaled(12, scale)

    traces = []
    for w in range(num_warps):
        base = w * tile_lines
        trace: List[Instr] = []
        for it in range(iterations):
            # ping-pong grids: reads never touch the written copy, so
            # the input tile stays cacheable for the whole kernel
            trace.append(load(temp_in.line(base), temp_in.line(base + 1)))
            trace.append(load(temp_in.line(base + 2),
                              temp_in.line(base + 3)))
            trace.append(compute(24))
            trace.append(store(temp_out.line(base + (it % tile_lines))))
        traces.append(trace)
    return Kernel("HS", traces)


def kmeans(rng: random.Random, scale: float) -> Kernel:
    """KM — k-means clustering.

    Streams a large point array (read-once, memory-intensive) while
    re-reading a small shared read-only centroid table every step;
    private accumulators are written occasionally.  Long-running and
    bandwidth-hungry, like the paper's KM (largest cycle count in
    Table II).
    """
    space = AddressSpace()
    centroids = space.region(scaled(12, scale, minimum=4))
    points = space.region(scaled(2048, scale))
    sums = space.region(scaled(256, scale))
    num_warps = scaled(48, scale)
    chunk = scaled(36, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        cursor = w * chunk
        for s in range(chunk):
            trace.append(load(points.line(cursor + s)))
            trace.append(load(centroids.line(s % centroids.lines)))
            trace.append(compute(8))
            if s % 9 == 8:
                trace.append(store(sums.line(w * 4 + (s % 4))))
        traces.append(trace)
    return Kernel("KM", traces)


def backprop(rng: random.Random, scale: float) -> Kernel:
    """BP — neural-network back-propagation.

    Streaming reads of a shared (read-only within the kernel) weight
    matrix plus private activation writes, alternating with moderate
    compute.
    """
    space = AddressSpace()
    weights = space.region(scaled(96, scale))
    activations = space.region(scaled(512, scale))
    num_warps = scaled(48, scale)
    steps = scaled(22, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        for s in range(steps):
            # each weight-row block is reused for three consecutive
            # input elements before the stream moves on
            row = (s // 3) * 2 % weights.lines
            trace.append(load(weights.line(row), weights.line(row + 1)))
            trace.append(load(weights.line(row + 2)))
            trace.append(compute(5))
            trace.append(store(activations.line(w * steps + s)))
        traces.append(trace)
    return Kernel("BP", traces)


def sgm(rng: random.Random, scale: float) -> Kernel:
    """SGM — semi-global (stereo) matching.

    Sliding-window reads with heavy reuse between *consecutive* steps
    of the same warp (good L1 locality, no inter-warp writes) and a
    private cost-volume write per step.
    """
    space = AddressSpace()
    image = space.region(scaled(768, scale))
    costs = space.region(scaled(768, scale))
    num_warps = scaled(48, scale)
    steps = scaled(26, scale)

    traces = []
    for w in range(num_warps):
        trace: List[Instr] = []
        row = w * 11
        for s in range(steps):
            # window slides by one line per step: 3 reads, 2 reused
            trace.append(load(image.line(row + s), image.line(row + s + 1)))
            trace.append(load(image.line(row + s + 2)))
            trace.append(compute(7))
            trace.append(store(costs.line(w * steps + s)))
        traces.append(trace)
    return Kernel("SGM", traces)
