"""The sqlite-backed experiment results database.

One row per simulation run, keyed by the harness
:func:`~repro.harness.cache.run_key` digest — the same identity the
on-disk run cache, the serve scheduler's single-flight dedup, and the
result envelope already agree on.  Three tables:

* ``runs`` — one row per run: the validated spec (JSON), the
  workload/protocol/consistency/preset/scale/seed it denormalises,
  provenance (git commit, config hash, host, package version), how
  the run was produced (``source``), its status, and wall time;
* ``stats`` — the flattened :class:`~repro.stats.collector.RunStats`:
  every counter and per-component energy as one ``(kind, name,
  value)`` row, every histogram as its exact bucket payload;
* ``timeseries`` — the cycle-sampled metrics rows a run carries in
  ``RunStats.timeseries`` (PR 2), one row per (sample, column).

Writes are **idempotent upserts**: recording the same run key twice
replaces the row and its child rows in one transaction, so re-running
a sweep converges instead of duplicating, and concurrent writers
(worker processes, serve workers on other hosts sharing a filesystem)
resolve by last-write-wins.  The database opens in WAL mode with a
busy timeout, which is sqlite's supported concurrent-writer
configuration: writers queue briefly instead of failing.

High-rate producers (the serve dispatcher absorbing a fleet's
results) can opt into **batched writes**: with ``flush_interval``
set, :meth:`record` only buffers, and a whole interval's worth of
runs lands as *one* transaction — one fsync per flush instead of one
per job.  The trade is bounded: a crash loses at most the unflushed
interval, which for the service means re-simulating what the run
journal still remembers anyway.  Reads flush first, so a handle
always sees its own writes; :meth:`close` flushes too.

The round trip is exact: ``db.get_stats(key) ==`` the original
``RunStats`` for any run — counters stay integers (sqlite NUMERIC
affinity preserves them), energies stay float64, histograms restore
their full buckets, and the time-series reassembles sample-by-sample.
That is what lets reports and figure tables be cheap queries rather
than re-simulations.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, List, Optional

import repro
from repro.db import provenance
from repro.stats.collector import RunStats
from repro.stats.histogram import Histogram

#: bump when the table shapes change incompatibly
SCHEMA_VERSION = 1

_SCHEMA = """
PRAGMA user_version = {version};
CREATE TABLE IF NOT EXISTS runs (
    run_key       TEXT PRIMARY KEY,
    workload      TEXT NOT NULL DEFAULT '',
    protocol      TEXT NOT NULL DEFAULT '',
    consistency   TEXT NOT NULL DEFAULT '',
    preset        TEXT NOT NULL DEFAULT '',
    scale         REAL,
    seed          INTEGER,
    spec          TEXT,
    config_desc   TEXT NOT NULL DEFAULT '',
    config_hash   TEXT NOT NULL DEFAULT '',
    git_commit    TEXT NOT NULL DEFAULT '',
    repro_version TEXT NOT NULL DEFAULT '',
    host          TEXT NOT NULL DEFAULT '',
    source        TEXT NOT NULL DEFAULT '',
    status        TEXT NOT NULL DEFAULT 'done',
    wall_time_s   REAL,
    cycles        INTEGER NOT NULL,
    timeseries_meta TEXT NOT NULL DEFAULT '',
    created_at    REAL NOT NULL,
    updated_at    REAL NOT NULL,
    sim_backend   TEXT NOT NULL DEFAULT '',
    n_gpus        INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS idx_runs_point
    ON runs(workload, protocol, consistency);
CREATE INDEX IF NOT EXISTS idx_runs_commit ON runs(git_commit);
CREATE TABLE IF NOT EXISTS stats (
    run_key TEXT NOT NULL,
    kind    TEXT NOT NULL,
    name    TEXT NOT NULL,
    value   NUMERIC,
    payload TEXT,
    PRIMARY KEY (run_key, kind, name)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS timeseries (
    run_key TEXT NOT NULL,
    sample  INTEGER NOT NULL,
    cycle   INTEGER NOT NULL,
    name    TEXT NOT NULL,
    value   NUMERIC NOT NULL,
    PRIMARY KEY (run_key, sample, name)
) WITHOUT ROWID;
"""

#: columns of the ``runs`` table, in schema order (query helpers and
#: the CLI build row dicts from this single list).  ``sim_backend``
#: and ``n_gpus`` are deliberately last, in migration order:
#: pre-existing databases gain them via ALTER TABLE, which appends,
#: and ``SELECT *`` must zip against the same order on both fresh and
#: migrated files.
RUN_COLUMNS = (
    "run_key", "workload", "protocol", "consistency", "preset",
    "scale", "seed", "spec", "config_desc", "config_hash",
    "git_commit", "repro_version", "host", "source", "status",
    "wall_time_s", "cycles", "timeseries_meta", "created_at",
    "updated_at", "sim_backend", "n_gpus",
)


class ResultsDB:
    """One sqlite results database (safe across threads and processes).

    A handle may be shared between threads (serve workers report
    through one scheduler-owned handle); cross-process concurrency is
    sqlite's own WAL + busy-timeout machinery.  All writes go through
    :meth:`record`, which is transactional and idempotent per run key.
    """

    def __init__(self, path: str, timeout: float = 30.0,
                 flush_interval: Optional[float] = None,
                 flush_max: int = 256,
                 clock=time.monotonic) -> None:
        if flush_interval is not None and flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if flush_max < 1:
            raise ValueError("flush_max must be >= 1")
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, timeout=timeout,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(
            _SCHEMA.format(version=SCHEMA_VERSION))
        # migrate databases created before the sim_backend / n_gpus
        # columns: ALTER TABLE appends, matching RUN_COLUMNS order
        present = {row[1] for row in self._conn.execute(
            "PRAGMA table_info(runs)")}
        if "sim_backend" not in present:
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN sim_backend "
                "TEXT NOT NULL DEFAULT ''")
        if "n_gpus" not in present:
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN n_gpus "
                "INTEGER NOT NULL DEFAULT 1")
        self._conn.commit()
        #: None = write-through (one transaction per record);
        #: a number = buffer and land one transaction per interval
        self.flush_interval = flush_interval
        self.flush_max = flush_max
        self._clock = clock
        self._last_flush = clock()
        # key -> row bundle; a dict so re-recording a key inside one
        # unflushed interval keeps last-write-wins (two inserts of
        # the same key in one batch would collide on child-table PKs)
        self._pending: Dict[str, tuple] = {}
        #: rows written / replaced through this handle
        self.recorded = 0
        #: batch transactions committed (write-through never bumps it)
        self.flushes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record(self, run_key: str, stats: RunStats, *,
               spec: Optional[Dict] = None,
               point: Optional[Dict] = None, source: str = "",
               status: str = "done",
               wall_time_s: Optional[float] = None,
               config=None, config_hash: str = "",
               git_commit: Optional[str] = None,
               host: Optional[str] = None,
               sim_backend: str = "",
               n_gpus: Optional[int] = None) -> None:
        """Upsert one finished run and its flattened statistics.

        ``spec`` is the canonical request spec when the producer knows
        it (runners and serve workers do); ``point`` fills the
        denormalised workload/protocol/... columns when only partial
        identity is recoverable (RunCache backfill) without claiming a
        full spec.  ``config`` derives ``config_hash`` when one is not
        given.  Provenance defaults (commit, host, package version)
        are stamped here so no producer can forget them.
        """
        if config is not None and not config_hash:
            config_hash = provenance.config_hash(config)
        if git_commit is None:
            git_commit = provenance.git_commit()
        if host is None:
            host = provenance.host()
        if n_gpus is None:
            # derive from the config when the producer has one, else
            # from the spec's overrides; single-GPU rows stay 1
            if config is not None:
                n_gpus = getattr(config, "n_gpus", 1)
            else:
                overrides = (spec or {}).get("overrides") or {}
                n_gpus = int(overrides.get("n_gpus", 1))
        spec = dict(spec) if spec is not None else None
        info = spec if spec is not None else (point or {})
        now = time.time()
        meta = ""
        ts = stats.timeseries
        if ts:
            meta = json.dumps(
                {k: v for k, v in ts.items() if k != "samples"},
                sort_keys=True)
        run_row = (
            run_key,
            info.get("workload", ""),
            info.get("protocol", ""),
            info.get("consistency", ""),
            info.get("preset", ""),
            info.get("scale"),
            info.get("seed"),
            json.dumps(spec, sort_keys=True) if spec else None,
            stats.config_desc,
            config_hash,
            git_commit,
            repro.__version__,
            host,
            source,
            status,
            wall_time_s,
            stats.cycles,
            meta,
            now,
            now,
            sim_backend,
            n_gpus,
        )
        stat_rows: List[tuple] = [
            (run_key, "counter", name, value, None)
            for name, value in stats.counters.items()
        ]
        stat_rows += [
            (run_key, "energy", name, float(value), None)
            for name, value in stats.energy.items()
        ]
        stat_rows += [
            (run_key, "histogram", name, None,
             json.dumps(hist.to_dict(), sort_keys=True))
            for name, hist in stats.histograms.items()
        ]
        ts_rows: List[tuple] = []
        for index, row in enumerate(ts.get("samples", []) if ts else []):
            cycle = row.get("cycle", 0)
            for name, value in row.items():
                if name != "cycle":
                    ts_rows.append((run_key, index, cycle, name, value))
        with self._lock:
            if self.flush_interval is None:
                with self._conn:
                    self._write_one(run_key, run_row, stat_rows,
                                    ts_rows)
                self.recorded += 1
                return
            self._pending[run_key] = (run_row, stat_rows, ts_rows)
            now = self._clock()
            if len(self._pending) >= self.flush_max or \
                    now - self._last_flush >= self.flush_interval:
                self._flush_locked()

    def flush(self) -> int:
        """Land any buffered runs as one transaction; returns how
        many were written (always 0 in write-through mode)."""
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        """Write the pending batch (caller holds the lock)."""
        if not self._pending:
            return 0
        self._last_flush = self._clock()
        with self._conn:
            for run_key, (run_row, stat_rows, ts_rows) \
                    in self._pending.items():
                self._write_one(run_key, run_row, stat_rows, ts_rows)
        written = len(self._pending)
        self.recorded += written
        self.flushes += 1
        self._pending.clear()
        return written

    def _write_one(self, run_key: str, run_row: tuple,
                   stat_rows: List[tuple],
                   ts_rows: List[tuple]) -> None:
        """Upsert one run's rows (caller owns the transaction)."""
        self._conn.execute(
            f"INSERT INTO runs ({', '.join(RUN_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(RUN_COLUMNS))}) "
            "ON CONFLICT(run_key) DO UPDATE SET "
            + ", ".join(f"{c} = excluded.{c}"
                        for c in RUN_COLUMNS
                        if c not in ("run_key", "created_at")),
            run_row)
        self._conn.execute(
            "DELETE FROM stats WHERE run_key = ?", (run_key,))
        self._conn.execute(
            "DELETE FROM timeseries WHERE run_key = ?", (run_key,))
        self._conn.executemany(
            "INSERT INTO stats (run_key, kind, name, value, payload)"
            " VALUES (?, ?, ?, ?, ?)", stat_rows)
        self._conn.executemany(
            "INSERT INTO timeseries "
            "(run_key, sample, cycle, name, value)"
            " VALUES (?, ?, ?, ?, ?)", ts_rows)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get_run(self, run_key: str) -> Optional[Dict]:
        """The ``runs`` row for one key as a dict, or None."""
        with self._lock:
            self._flush_locked()
            cur = self._conn.execute(
                "SELECT * FROM runs WHERE run_key = ?", (run_key,))
            row = cur.fetchone()
        if row is None:
            return None
        return dict(zip(RUN_COLUMNS, row))

    def get_stats(self, run_key: str) -> Optional[RunStats]:
        """Rebuild the exact :class:`RunStats` recorded for one key."""
        run = self.get_run(run_key)
        if run is None:
            return None
        with self._lock:
            self._flush_locked()
            stat_rows = self._conn.execute(
                "SELECT kind, name, value, payload FROM stats "
                "WHERE run_key = ?", (run_key,)).fetchall()
            ts_rows = self._conn.execute(
                "SELECT sample, cycle, name, value FROM timeseries "
                "WHERE run_key = ? ORDER BY sample", (run_key,)
            ).fetchall()
        counters: Dict[str, int] = {}
        energy: Dict[str, float] = {}
        histograms: Dict[str, Histogram] = {}
        for kind, name, value, payload in stat_rows:
            if kind == "counter":
                counters[name] = value
            elif kind == "energy":
                energy[name] = float(value)
            elif kind == "histogram":
                histograms[name] = Histogram.from_dict(
                    name, json.loads(payload))
        timeseries: Dict = {}
        if run["timeseries_meta"]:
            timeseries = json.loads(run["timeseries_meta"])
            samples: List[Dict] = []
            for sample, cycle, name, value in ts_rows:
                while len(samples) <= sample:
                    samples.append({"cycle": cycle})
                samples[sample][name] = value
            timeseries["samples"] = samples
        return RunStats(
            config_desc=run["config_desc"],
            cycles=run["cycles"],
            counters=counters,
            energy=energy,
            histograms=histograms,
            timeseries=timeseries,
        )

    def runs(self, workload: Optional[str] = None,
             protocol: Optional[str] = None,
             consistency: Optional[str] = None,
             commit: Optional[str] = None,
             preset: Optional[str] = None,
             status: Optional[str] = None,
             source: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        """Filtered ``runs`` rows, newest first.

        ``commit`` matches by prefix so short digests work the way
        they do on the git command line.
        """
        clauses, params = [], []
        for column, value in (("workload", workload),
                              ("protocol", protocol),
                              ("consistency", consistency),
                              ("preset", preset),
                              ("status", status),
                              ("source", source)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if commit is not None:
            clauses.append("git_commit LIKE ?")
            params.append(commit + "%")
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY updated_at DESC, run_key"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            self._flush_locked()
            rows = self._conn.execute(sql, params).fetchall()
        return [dict(zip(RUN_COLUMNS, row)) for row in rows]

    def counter(self, run_key: str, name: str) -> Optional[int]:
        """One counter of one run (None when absent)."""
        with self._lock:
            self._flush_locked()
            row = self._conn.execute(
                "SELECT value FROM stats WHERE run_key = ? "
                "AND kind = 'counter' AND name = ?",
                (run_key, name)).fetchone()
        return row[0] if row else None

    def count(self) -> int:
        with self._lock:
            self._flush_locked()
            return self._conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0]

    def summary(self) -> Dict:
        """Fleet-level aggregates for reports and the CLI."""
        with self._lock:
            self._flush_locked()
            runs, = self._conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()
            distinct = self._conn.execute(
                "SELECT COUNT(DISTINCT workload), "
                "COUNT(DISTINCT protocol || '-' || consistency), "
                "COUNT(DISTINCT git_commit), COUNT(DISTINCT host) "
                "FROM runs").fetchone()
            by_source = dict(self._conn.execute(
                "SELECT source, COUNT(*) FROM runs "
                "GROUP BY source").fetchall())
            wall, = self._conn.execute(
                "SELECT COALESCE(SUM(wall_time_s), 0) FROM runs"
            ).fetchone()
        return {
            "runs": runs,
            "workloads": distinct[0],
            "configs": distinct[1],
            "commits": distinct[2],
            "hosts": distinct[3],
            "by_source": by_source,
            "wall_time_s": wall,
        }
