"""Figure tables and sweep series as database queries.

The harness experiment functions (``repro.harness.experiments``)
*simulate* and then tabulate; everything here only *queries* — the
paper-figure comparison tables come out of rows that some runner or
serve worker already wrote, which is what makes a report on a
thousand-point sweep take milliseconds instead of hours.

When several rows exist for the same (workload, protocol,
consistency) point — different commits, scales, or leases — the most
recently updated row wins, mirroring how one reads a dashboard: "the
latest measurement of this point".  Filter by ``commit=`` to pin a
table to one revision.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.db.store import ResultsDB
from repro.harness.tables import ExperimentResult, geomean

#: the four bars of Figures 12-16, as (column title, protocol,
#: consistency) — matching :meth:`ExperimentRunner.matrix`
MATRIX_BARS = (
    ("TC-SC", "tc", "sc"),
    ("TC-RC", "tc", "rc"),
    ("G-TSC-SC", "gtsc", "sc"),
    ("G-TSC-RC", "gtsc", "rc"),
)


def latest_by_point(db: ResultsDB, commit: Optional[str] = None,
                    status: str = "done") -> Dict[tuple, Dict]:
    """Newest run row per (workload, protocol, consistency, n_gpus).

    ``n_gpus`` is part of the point identity so a multi-GPU sweep
    never shadows (or is shadowed by) the single-GPU row of the same
    protocol point.
    """
    rows = db.runs(commit=commit, status=status)
    latest: Dict[tuple, Dict] = {}
    # db.runs() returns newest-first; keep the first row seen per point
    for row in rows:
        point = (row["workload"], row["protocol"], row["consistency"],
                 row.get("n_gpus", 1))
        if point not in latest:
            latest[point] = row
    return latest


def matrix_result(db: ResultsDB,
                  workloads: Optional[Sequence[str]] = None,
                  commit: Optional[str] = None) -> ExperimentResult:
    """The Fig. 12-style protocol/consistency comparison, from rows.

    Cycles per bar, normalised to the no-L1 baseline (protocol
    ``disabled``) when a baseline row exists for the workload —
    exactly the shape of the paper's Figure 12 — and raw cycles
    otherwise (noted per row in the last column).
    """
    latest = latest_by_point(db, commit=commit)
    # the Fig. 12 table is a single-GPU figure; multi-GPU rows render
    # in the comparison table with their GPU count instead
    latest = {point[:3]: row for point, row in latest.items()
              if point[3] == 1}
    known = sorted({point[0] for point in latest if point[0]})
    if workloads is None:
        workloads = known
    result = ExperimentResult(
        "db-matrix",
        "Performance by protocol/consistency, from the results DB"
        + (f" (commit {commit[:12]})" if commit else ""),
        ["benchmark"] + [bar for bar, _, _ in MATRIX_BARS]
        + ["normalised"],
    )
    per_bar: Dict[str, Dict[str, float]] = {
        bar: {} for bar, _, _ in MATRIX_BARS}
    for workload in workloads:
        baseline = latest.get((workload, "disabled", "rc"))
        row: List = [workload]
        present = 0
        for bar, protocol, consistency in MATRIX_BARS:
            entry = latest.get((workload, protocol, consistency))
            if entry is None:
                row.append("-")
                continue
            present += 1
            if baseline is not None:
                value = baseline["cycles"] / entry["cycles"]
                per_bar[bar][workload] = value
                row.append(value)
            else:
                row.append(entry["cycles"])
        row.append("baseline" if baseline is not None else "cycles")
        if present:
            result.rows.append(row)
    normalised = [w for w in workloads
                  if all(w in per_bar[bar] for bar, _, _ in MATRIX_BARS)]
    if normalised:
        result.summary = {
            "G-TSC-RC over TC-RC (geomean)": geomean(
                [per_bar["G-TSC-RC"][w] / per_bar["TC-RC"][w]
                 for w in normalised]),
            "G-TSC-SC over TC-RC (geomean)": geomean(
                [per_bar["G-TSC-SC"][w] / per_bar["TC-RC"][w]
                 for w in normalised]),
            "G-TSC RC over SC (geomean)": geomean(
                [per_bar["G-TSC-RC"][w] / per_bar["G-TSC-SC"][w]
                 for w in normalised]),
        }
    result.notes = (f"{db.count()} run(s) in {db.path}; newest row "
                    f"per point")
    return result


#: per-run metrics shown in the protocol-comparison table: name ->
#: (how to get it, format).  Counter metrics read the stats table;
#: derived ones divide two counters.
COMPARISON_COLUMNS = (
    "cycles", "l1_hit_rate", "noc_bytes", "stall_mem_cycles",
    "dram_reads",
)


def comparison_rows(db: ResultsDB,
                    commit: Optional[str] = None) -> List[Dict]:
    """Key metrics per (workload, protocol, consistency) point."""
    latest = latest_by_point(db, commit=commit)
    out: List[Dict] = []
    for point in sorted(latest):
        workload, protocol, consistency, n_gpus = point
        row = latest[point]
        key = row["run_key"]
        l1_access = db.counter(key, "l1_access") or 0
        l1_hit = db.counter(key, "l1_hit") or 0
        config = f"{protocol}-{consistency}" if protocol else "(unknown)"
        if n_gpus > 1:
            config += f" x{n_gpus}GPU"
        out.append({
            "workload": workload or "(unknown)",
            "config": config,
            "run_key": key,
            "cycles": row["cycles"],
            "l1_hit_rate": (l1_hit / l1_access) if l1_access else 0.0,
            "noc_bytes": db.counter(key, "noc_bytes") or 0,
            "stall_mem_cycles":
                db.counter(key, "stall_mem_cycles") or 0,
            "dram_reads": db.counter(key, "dram_reads") or 0,
        })
    return out


def sweep_result(db: ResultsDB, parameter: str,
                 protocol: str = "gtsc", consistency: str = "rc",
                 metric: str = "cycles",
                 commit: Optional[str] = None) -> ExperimentResult:
    """A parameter-sweep table recovered from recorded spec overrides.

    Groups rows whose spec carries an override for ``parameter`` (the
    swept axis) by workload; the metric per swept value comes straight
    from the recorded statistics — no re-simulation.
    """
    rows = db.runs(protocol=protocol, consistency=consistency,
                   commit=commit, status="done")
    by_value: Dict[str, Dict[object, Dict]] = {}
    values: set = set()
    for row in rows:
        if not row["spec"]:
            continue
        spec = json.loads(row["spec"])
        overrides = spec.get("overrides", {})
        if parameter not in overrides:
            continue
        value = overrides[parameter]
        workload = row["workload"]
        slot = by_value.setdefault(workload, {})
        # newest-first ordering: first row per (workload, value) wins
        if value not in slot:
            slot[value] = row
            values.add(value)
    ordered = sorted(values)
    result = ExperimentResult(
        "db-sweep",
        f"{metric} vs {parameter} ({protocol}-{consistency}), "
        f"from the results DB",
        ["benchmark"] + [f"{parameter}={v}" for v in ordered],
    )
    for workload in sorted(by_value):
        out_row: List = [workload]
        for value in ordered:
            entry = by_value[workload].get(value)
            if entry is None:
                out_row.append("-")
            elif metric == "cycles":
                out_row.append(entry["cycles"])
            else:
                out_row.append(
                    db.counter(entry["run_key"], metric) or 0)
        result.rows.append(out_row)
    return result
