"""Fuzzbench-style HTML report generated from results-DB queries.

``gtsc-repro db report`` renders one self-contained HTML file — no
external assets, no plotting stack — with four sections:

1. **Fleet summary** — how many runs, workloads, configs, commits and
   hosts the database holds, and where the rows came from;
2. **Paper-figure table** — the Fig. 12-style protocol/consistency
   comparison (normalised to the no-L1 baseline where present), both
   as an HTML table and as the ASCII chart the CLI prints, so the
   figure's *shape* survives into the artifact;
3. **Per-protocol comparison** — key counters (cycles, L1 hit rate,
   NoC bytes, memory stalls, DRAM reads) per recorded point;
4. **Provenance appendix** — every row's run key, git commit, config
   hash, host, source and wall time: the audit trail that answers
   "which commit produced this number".

Everything is a query; nothing simulates.  A report on a database of
ten thousand runs costs the same milliseconds as one on ten.
"""

from __future__ import annotations

import datetime
import html
from typing import List, Optional

import repro
from repro.db import query
from repro.db.store import ResultsDB
from repro.harness.charts import render_chart
from repro.harness.tables import render_html_table

_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1d1d1f; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
table { border-collapse: collapse; margin: 1rem 0; width: 100%; }
caption { caption-side: top; text-align: left; font-weight: 600;
          padding-bottom: .4rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem;
         font-size: .92rem; }
th { background: #f0f0f2; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tfoot td { background: #fafafa; font-size: .85rem; color: #555; }
pre { background: #f6f6f8; border: 1px solid #ddd; padding: .8rem;
      overflow-x: auto; font-size: .8rem; }
code { background: #f0f0f2; padding: 0 .25rem; }
.prov td { font-family: ui-monospace, monospace; font-size: .8rem; }
.meta { color: #666; font-size: .9rem; }
"""


def _short(digest: str, length: int = 12) -> str:
    return digest[:length] if digest else "-"


def render_report(db: ResultsDB, title: str = "G-TSC results",
                  commit: Optional[str] = None) -> str:
    """The full report as one HTML document string."""
    summary = db.summary()
    rows = db.runs(commit=commit)
    matrix = query.matrix_result(db, commit=commit)
    comparison = query.comparison_rows(db, commit=commit)
    generated = datetime.datetime.now(datetime.timezone.utc)

    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">Generated '
        f"{generated.strftime('%Y-%m-%d %H:%M UTC')} by repro "
        f"{html.escape(repro.__version__)} from "
        f"<code>{html.escape(db.path)}</code>"
        + (f", filtered to commit <code>{html.escape(commit)}</code>"
           if commit else "") + ".</p>",
    ]

    # -- 1. fleet summary ------------------------------------------------
    out.append("<h2>Fleet summary</h2>")
    sources = ", ".join(
        f"{source or '(unset)'}: {count}"
        for source, count in sorted(summary["by_source"].items()))
    out.append("<table><tbody>")
    for label, value in (
            ("runs", summary["runs"]),
            ("workloads", summary["workloads"]),
            ("protocol/consistency configs", summary["configs"]),
            ("git commits", summary["commits"]),
            ("hosts", summary["hosts"]),
            ("rows by source", sources or "-"),
            ("recorded wall time",
             f"{summary['wall_time_s']:.1f}s")):
        out.append(f"<tr><th>{html.escape(str(label))}</th>"
                   f"<td>{html.escape(str(value))}</td></tr>")
    out.append("</tbody></table>")

    # -- 2. the paper-figure table --------------------------------------
    out.append("<h2>Protocol comparison (Fig. 12 shape)</h2>")
    if matrix.rows:
        out.append(render_html_table(matrix))
        try:
            out.append("<pre>"
                       + html.escape(render_chart(matrix))
                       + "</pre>")
        except ValueError:
            pass  # nothing numeric to chart (e.g. raw-cycles mix)
    else:
        out.append("<p>No matrix points recorded yet — run a sweep "
                   "with <code>--db</code> or backfill with "
                   "<code>gtsc-repro db ingest</code>.</p>")

    # -- 3. per-point key metrics ---------------------------------------
    out.append("<h2>Per-point key metrics</h2>")
    if comparison:
        out.append('<table class="result"><thead><tr>'
                   "<th>benchmark</th><th>config</th><th>cycles</th>"
                   "<th>L1 hit rate</th><th>NoC bytes</th>"
                   "<th>mem-stall cycles</th><th>DRAM reads</th>"
                   "</tr></thead><tbody>")
        for row in comparison:
            out.append(
                "<tr>"
                f"<td>{html.escape(row['workload'])}</td>"
                f"<td>{html.escape(row['config'])}</td>"
                f'<td class="num">{row["cycles"]}</td>'
                f'<td class="num">{row["l1_hit_rate"]:.3f}</td>'
                f'<td class="num">{row["noc_bytes"]}</td>'
                f'<td class="num">{row["stall_mem_cycles"]}</td>'
                f'<td class="num">{row["dram_reads"]}</td>'
                "</tr>")
        out.append("</tbody></table>")
    else:
        out.append("<p>No statistics recorded yet.</p>")

    # -- 4. provenance appendix -----------------------------------------
    out.append("<h2>Provenance appendix</h2>")
    out.append(f'<p class="meta">{len(rows)} run(s), newest first. '
               "Full 64-hex run keys and config hashes are in the "
               "database; shown truncated.</p>")
    out.append('<table class="prov"><thead><tr>'
               "<th>run key</th><th>benchmark</th><th>config</th>"
               "<th>preset</th><th>GPUs</th><th>commit</th>"
               "<th>config hash</th>"
               "<th>host</th><th>source</th><th>status</th>"
               "<th>wall&nbsp;s</th></tr></thead><tbody>")
    for row in rows:
        config = (f"{row['protocol']}-{row['consistency']}"
                  if row["protocol"] else "-")
        wall = (f"{row['wall_time_s']:.2f}"
                if row["wall_time_s"] is not None else "-")
        out.append(
            "<tr>"
            f"<td>{_short(row['run_key'])}</td>"
            f"<td>{html.escape(row['workload'] or '-')}</td>"
            f"<td>{html.escape(config)}</td>"
            f"<td>{html.escape(row['preset'] or '-')}</td>"
            f'<td class="num">{row.get("n_gpus", 1)}</td>'
            f"<td>{_short(row['git_commit'])}</td>"
            f"<td>{_short(row['config_hash'])}</td>"
            f"<td>{html.escape(row['host'] or '-')}</td>"
            f"<td>{html.escape(row['source'] or '-')}</td>"
            f"<td>{html.escape(row['status'])}</td>"
            f'<td class="num">{wall}</td>'
            "</tr>")
    out.append("</tbody></table>")
    out.append("</body></html>")
    return "\n".join(out)


def write_report(db: ResultsDB, path: str,
                 title: str = "G-TSC results",
                 commit: Optional[str] = None) -> str:
    """Render and write the report; returns the path written."""
    import os

    text = render_report(db, title=title, commit=commit)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
