"""Provenance facts attached to every results-database row.

A number without provenance is a number nobody can trust six weeks
later: "which commit and which machine configuration produced this
IPC figure?" must be answerable from the row itself.  Three facts are
stamped on every run:

* **git commit** — the working tree's HEAD at record time, resolved
  once per process (experiments never mutate the tree mid-run, and a
  subprocess per row would dominate tiny simulations).  Overridable
  via ``REPRO_GIT_COMMIT`` for environments without a git checkout
  (containers built from tarballs); ``unknown`` when neither exists.
* **config hash** — a sha256 digest over *every* field of the
  :class:`~repro.config.GPUConfig`, in canonical JSON.  Unlike the
  run key it excludes the workload/scale/seed and the package
  version, so rows produced by different releases of the simulator
  from the same machine description still group together.
* **host** — the machine name, so fleet-wide writes remain
  attributable to a worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import subprocess
from functools import lru_cache

from repro.config import GPUConfig
from repro.harness.cache import _canonical


@lru_cache(maxsize=1)
def git_commit() -> str:
    """The HEAD commit of the current working tree (cached).

    Resolution order: ``REPRO_GIT_COMMIT`` env var, then
    ``git rev-parse HEAD``, then the literal ``"unknown"`` — a results
    row must never fail to record because provenance is unavailable.
    """
    override = os.environ.get("REPRO_GIT_COMMIT")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    if out.returncode != 0 or not commit:
        return "unknown"
    return commit


def host() -> str:
    """The recording machine's name (best-effort)."""
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - exotic platforms
        return "unknown"


def config_hash(config: GPUConfig) -> str:
    """sha256 over every config field, in canonical JSON.

    Two configs hash equal iff every machine parameter matches; the
    digest is independent of workload, scale, seed and the package
    version (contrast :func:`repro.harness.cache.run_key`).
    """
    payload = {
        f.name: _canonical(getattr(config, f.name))
        for f in dataclasses.fields(config)
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
