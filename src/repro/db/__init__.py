"""Queryable experiment results database with provenance.

The observability layer for *results*: every finished simulation —
whether it ran through an :class:`~repro.harness.runner.ExperimentRunner`,
a :class:`~repro.harness.parallel.ParallelRunner` worker, or a
``repro.serve`` fleet worker — lands as a row keyed by the harness
run key, stamped with git commit, config hash, host and wall time.
Reports and paper-figure tables then become cheap queries
(:mod:`repro.db.query`, :mod:`repro.db.report`) instead of
re-simulations, and historical run-cache entries backfill with
:mod:`repro.db.ingest`.
"""

from repro.db.ingest import ingest_runcache
from repro.db.provenance import config_hash, git_commit, host
from repro.db.report import render_report, write_report
from repro.db.store import ResultsDB

__all__ = [
    "ResultsDB",
    "ingest_runcache",
    "config_hash",
    "git_commit",
    "host",
    "render_report",
    "write_report",
]
