"""Backfill the results database from the on-disk run cache.

Before the database existed, every finished run's ``RunStats`` landed
as ``<run_key>.json`` under the cache directory (PR 1).  Those files
*are* historical results — their filename is the run key, their body
round-trips the exact statistics — so one command turns years of
cached runs into queryable rows::

    gtsc-repro db ingest --cache-dir results/.runcache

A cache entry does not carry its request spec (the key is a one-way
digest), so backfilled rows have ``spec = NULL`` and best-effort
``protocol``/``consistency`` parsed from the stored config
description.  Freshly-produced rows (runner, serve) always carry the
full spec; ingestion is the bridge for runs that predate the DB.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from typing import Dict, Optional, Tuple

from repro.db.store import ResultsDB
from repro.stats.collector import RunStats

#: sha256 digests are 64 hex chars; anything else is not a cache entry
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: ``GPUConfig.describe()`` leads with "<protocol>/<consistency>"
_DESC_RE = re.compile(
    r"\b(gtsc|tc|mesi|noncoherent|disabled)/(sc|rc)\b")


def parse_config_desc(desc: str) -> Tuple[str, str]:
    """Best-effort (protocol, consistency) from a config description."""
    match = _DESC_RE.search(desc)
    if match is None:
        return "", ""
    return match.group(1), match.group(2)


def ingest_runcache(db: ResultsDB, cache_dir: str,
                    source: str = "ingest",
                    skip_existing: bool = True) -> Dict[str, int]:
    """Load every run-cache entry under ``cache_dir`` into ``db``.

    Returns ``{"ingested": n, "skipped": n, "corrupt": n}``.  With
    ``skip_existing`` (the default) keys already present in the
    database are left untouched — their live rows carry more
    provenance than a backfill could reconstruct.
    """
    ingested = skipped = corrupt = 0
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError as error:
        raise FileNotFoundError(
            f"run-cache directory {cache_dir!r}: {error}") from error
    for name in names:
        key, ext = os.path.splitext(name)
        if ext != ".json" or not _KEY_RE.match(key):
            continue
        if skip_existing and db.get_run(key) is not None:
            skipped += 1
            continue
        stats = _load_entry(os.path.join(cache_dir, name))
        if stats is None:
            corrupt += 1
            continue
        protocol, consistency = parse_config_desc(stats.config_desc)
        db.record(key, stats, source=source,
                  point={"protocol": protocol,
                         "consistency": consistency})
        ingested += 1
    return {"ingested": ingested, "skipped": skipped,
            "corrupt": corrupt}


def _load_entry(path: str) -> Optional[RunStats]:
    try:
        with open(path) as handle:
            return RunStats.from_dict(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError) as error:
        warnings.warn(
            f"corrupt run-cache entry {path}: "
            f"{type(error).__name__}: {error}; not ingested",
            RuntimeWarning, stacklevel=2)
        return None
