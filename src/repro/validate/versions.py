"""Logical data payloads.

Instead of moving byte payloads around, every store creates a new
*version* of its line — a small integer unique per (address, store).
Caches carry the version number; loads return it.  This gives the
validators an exact record of *which* write each read observed, which
is all a coherence checker needs, at a fraction of the simulation cost
of real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class VersionStore:
    """Allocates version numbers and remembers global write order.

    Version 0 of every address is the initial memory content.  The
    G-TSC L2 additionally reports the logical write timestamp assigned
    to each version via :meth:`record_wts`, which the timestamp-order
    checker consumes.
    """

    def __init__(self) -> None:
        self._next: Dict[int, int] = {}
        # (addr, version) -> logical wts assigned by the L2 (per epoch)
        self._wts: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # addr -> [(epoch, wts, version)] in L2 *processing* order —
        # the authoritative global write order for that line (version
        # numbers are minted at issue and may be processed out of
        # mint order when two SMs race)
        self._order: Dict[int, List[Tuple[int, int, int]]] = {}

    def new_version(self, addr: int) -> int:
        """Mint the next version number for ``addr`` (1, 2, ...)."""
        version = self._next.get(addr, 0) + 1
        self._next[addr] = version
        return version

    def latest(self, addr: int) -> int:
        """The most recently minted version for ``addr`` (0 = initial)."""
        return self._next.get(addr, 0)

    def record_wts(self, addr: int, version: int, wts: int,
                   epoch: int = 0) -> None:
        """Remember the logical timestamp the L2 gave to a version.

        Called by the L2 at the moment the store is performed, so the
        per-address call order is the global write order of the line.
        """
        self._wts[(addr, version)] = (epoch, wts)
        self._order.setdefault(addr, []).append((epoch, wts, version))

    def write_order(self, addr: int) -> List[Tuple[int, int, int]]:
        """``(epoch, wts, version)`` tuples in L2 processing order."""
        return list(self._order.get(addr, []))

    def wts_of(self, addr: int, version: int) -> Tuple[int, int]:
        """``(epoch, wts)`` of a version; version 0 is (epoch 0, wts 0)."""
        if version == 0:
            return (0, 0)
        return self._wts[(addr, version)]

    def versions_of(self, addr: int) -> int:
        """How many store-created versions exist for ``addr``."""
        return self._next.get(addr, 0)


@dataclass(frozen=True)
class LoadRecord:
    """One completed load, as seen by the validator."""

    warp_uid: int
    addr: int
    version: int
    logical_ts: int      # warp_ts after the load completed (G-TSC)
    epoch: int           # timestamp epoch at completion
    issue_cycle: int
    complete_cycle: int
    l1_hit: bool


@dataclass(frozen=True)
class StoreRecord:
    """One completed store, as seen by the validator."""

    warp_uid: int
    addr: int
    version: int
    logical_ts: int      # wts assigned by the L2 (G-TSC)
    epoch: int
    issue_cycle: int
    complete_cycle: int


@dataclass(frozen=True)
class AtomicRecord:
    """One completed atomic read-modify-write.

    ``old_version`` is what the L2 read at the instant the atomic was
    performed; atomicity demands it be the immediate predecessor of
    ``new_version`` in the line's global write order.
    """

    warp_uid: int
    addr: int
    old_version: int
    new_version: int
    logical_ts: int
    epoch: int
    issue_cycle: int
    complete_cycle: int


@dataclass
class AccessLog:
    """Ordered record of every completed memory operation.

    Recording can be disabled for large benchmark runs; the protocols
    check :attr:`enabled` before appending.
    """

    enabled: bool = True
    loads: List[LoadRecord] = field(default_factory=list)
    stores: List[StoreRecord] = field(default_factory=list)
    atomics: List["AtomicRecord"] = field(default_factory=list)

    def record_load(self, record: LoadRecord) -> None:
        if self.enabled:
            self.loads.append(record)

    def record_store(self, record: StoreRecord) -> None:
        if self.enabled:
            self.stores.append(record)

    def record_atomic(self, record: "AtomicRecord") -> None:
        if self.enabled:
            self.atomics.append(record)

    def loads_of(self, addr: int) -> List[LoadRecord]:
        """All recorded loads of one address (test helper)."""
        return [r for r in self.loads if r.addr == addr]

    def final_value(self, addr: int, store: "VersionStore") -> int:
        """The newest version of ``addr`` after the run."""
        return store.latest(addr)
