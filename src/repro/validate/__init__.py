"""Correctness validation: version tracking and coherence checkers."""

from repro.validate.versions import (
    AccessLog,
    AtomicRecord,
    LoadRecord,
    StoreRecord,
    VersionStore,
)
from repro.validate.checker import (
    CoherenceViolation,
    check_atomicity,
    check_gtsc_log,
    check_per_location_monotonic,
    check_single_writer_logical,
    check_warp_monotonicity,
)

__all__ = [
    "AccessLog",
    "AtomicRecord",
    "LoadRecord",
    "StoreRecord",
    "VersionStore",
    "CoherenceViolation",
    "check_atomicity",
    "check_gtsc_log",
    "check_per_location_monotonic",
    "check_single_writer_logical",
    "check_warp_monotonicity",
]
