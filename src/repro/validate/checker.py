"""Coherence and consistency checkers.

Two kinds of checks are provided:

* :func:`check_gtsc_log` — the *timestamp-ordering* invariant at the
  heart of G-TSC (Section III-C): a load whose logical time is ``L``
  must return the version ``V`` whose logical lifetime contains ``L``,
  i.e. ``V.wts <= L`` and the next version ``V'`` (if any) has
  ``V'.wts > L``.  This is checked for every recorded load, so a run
  of thousands of operations yields thousands of verified obligations.

* :func:`check_warp_monotonicity` — per-warp program order: the logical
  timestamps of one warp's operations never decrease, which (together
  with the value check) gives sequential consistency in logical time,
  exactly Tardis's argument.

Both checkers raise :class:`CoherenceViolation` with a precise account
of the offending operation, which the protocol tests rely on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.validate.versions import AccessLog, VersionStore


class CoherenceViolation(AssertionError):
    """A recorded execution broke a coherence/consistency invariant."""


def _version_windows(
    store: VersionStore, addr: int
) -> List[Tuple[int, int, int]]:
    """Per-epoch sorted (wts, version) windows for one address.

    Returns a list of ``(epoch, wts, version)`` sorted by
    (epoch, wts, version).  Version numbers increase with wts within an
    epoch because the L2 serializes stores to a line and assigns
    strictly increasing timestamps.
    """
    windows = [(0, 0, 0)]
    for version in range(1, store.versions_of(addr) + 1):
        epoch, wts = store.wts_of(addr, version)
        windows.append((epoch, wts, version))
    windows.sort()
    return windows


def check_gtsc_log(log: AccessLog, store: VersionStore) -> int:
    """Verify timestamp-ordering correctness of every recorded load.

    Returns the number of loads checked.  Raises
    :class:`CoherenceViolation` on the first violation.
    """
    windows_cache: Dict[int, List[Tuple[int, int, int]]] = {}
    checked = 0
    for record in log.loads:
        windows = windows_cache.get(record.addr)
        if windows is None:
            windows = _version_windows(store, record.addr)
            windows_cache[record.addr] = windows
        # the version whose (epoch, wts) window contains the load's
        # (epoch, logical_ts)
        key = (record.epoch, record.logical_ts)
        expected = 0
        for epoch, wts, version in windows:
            if (epoch, wts) <= key:
                expected = version
            else:
                break
        # Stores to the same line can be assigned equal-epoch timestamps
        # only in increasing order, so `expected` is well defined.  A
        # load may legitimately observe an *older* version than the
        # globally newest as long as its own logical time falls inside
        # that version's window — which is exactly the equality below.
        if record.version != expected:
            got_epoch, got_wts = store.wts_of(record.addr, record.version)
            raise CoherenceViolation(
                f"load by warp {record.warp_uid} of line {record.addr:#x} "
                f"at logical time {record.logical_ts} (epoch "
                f"{record.epoch}) returned version {record.version} "
                f"(wts={got_wts}, epoch={got_epoch}) but timestamp order "
                f"requires version {expected}; windows={windows}"
            )
        checked += 1
    return checked


def check_warp_monotonicity(log: AccessLog) -> int:
    """Verify each warp's logical timestamps never decrease.

    Operations are compared in completion order.  This is a
    **sequential-consistency** invariant: under SC every memory
    operation of a warp completes before the next issues, so logical
    timestamps must follow program order.  Under RC a store's assigned
    timestamp may legitimately fall below that of a younger load that
    completed before the store's acknowledgment returned (the
    reordering RC permits between fences), so this check only applies
    to SC runs.  Returns the number of operations checked.
    """
    per_warp: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
    for record in log.loads:
        per_warp[record.warp_uid].append(
            (record.complete_cycle, record.epoch, record.logical_ts)
        )
    for record in log.stores:
        per_warp[record.warp_uid].append(
            (record.complete_cycle, record.epoch, record.logical_ts)
        )
    for record in log.atomics:
        per_warp[record.warp_uid].append(
            (record.complete_cycle, record.epoch, record.logical_ts)
        )
    checked = 0
    for warp_uid, ops in per_warp.items():
        ops.sort()
        last = (0, 0)
        for complete_cycle, epoch, logical_ts in ops:
            if epoch > last[0]:
                # timestamp reset: logical clock legitimately restarts
                last = (epoch, logical_ts)
                continue
            if logical_ts < last[1]:
                raise CoherenceViolation(
                    f"warp {warp_uid} logical time went backwards: "
                    f"{last[1]} -> {logical_ts} at cycle {complete_cycle}"
                )
            last = (epoch, logical_ts)
            checked += 1
    return checked


def check_per_location_monotonic(log: AccessLog,
                                 store: VersionStore) -> int:
    """Per-location coherence (CoRR): one observer never sees a line's
    writes out of their global order.

    Valid for *every* coherent protocol: each reader's observed
    versions of one address, taken in completion order, must be
    non-decreasing in the line's recorded write order (which is mint
    order only when nothing raced — version numbers themselves may
    legitimately be performed out of numeric order).  Returns the
    number of loads checked.
    """
    position_cache: Dict[int, Dict[int, int]] = {}

    def position(addr: int, version: int) -> int:
        table = position_cache.get(addr)
        if table is None:
            table = {0: -1}
            for index, (_e, _w, v) in enumerate(store.write_order(addr)):
                table[v] = index
            position_cache[addr] = table
        return table[version]

    per_observer: Dict[Tuple[int, int], List[Tuple[int, int]]] = \
        defaultdict(list)
    for record in log.loads:
        per_observer[(record.warp_uid, record.addr)].append(
            (record.complete_cycle, record.version))
    checked = 0
    for (warp_uid, addr), observations in per_observer.items():
        observations.sort()
        last = -1
        for cycle, version in observations:
            index = position(addr, version)
            if index < last:
                raise CoherenceViolation(
                    f"warp {warp_uid} saw line {addr:#x} go backwards "
                    f"in the global write order (version {version} at "
                    f"cycle {cycle} after a later write)"
                )
            last = index
            checked += 1
    return checked


def check_atomicity(log: AccessLog, store: VersionStore) -> int:
    """Verify every atomic read its immediate predecessor.

    An atomic's observed old version must be exactly the write that
    precedes its own new version in the line's global write order —
    any intervening write would mean the read-modify-write was torn.
    Returns the number of atomics checked.
    """
    order_cache: Dict[int, List[int]] = {}
    checked = 0
    for record in log.atomics:
        order = order_cache.get(record.addr)
        if order is None:
            order = [version for _e, _w, version
                     in store.write_order(record.addr)]
            order_cache[record.addr] = order
        index = order.index(record.new_version)
        expected_old = order[index - 1] if index > 0 else 0
        if record.old_version != expected_old:
            raise CoherenceViolation(
                f"atomic by warp {record.warp_uid} on line "
                f"{record.addr:#x} read version {record.old_version} "
                f"but wrote version {record.new_version}, whose "
                f"predecessor in the global write order is "
                f"{expected_old} — the RMW was torn"
            )
        checked += 1
    return checked


def check_single_writer_logical(log: AccessLog, store: VersionStore) -> int:
    """Verify stores to one line get distinct, increasing timestamps.

    The logical-time analogue of the single-writer invariant: in the
    L2's processing order (the global write order for the line), write
    timestamps must strictly increase within an epoch.  Version
    *numbers* are minted at issue and may legitimately be processed
    out of mint order when two SMs race — only the processing order
    carries meaning.  Returns the number of stores checked.
    """
    checked = 0
    addrs = {record.addr for record in log.stores}
    for addr in addrs:
        last: Dict[int, int] = {}
        for epoch, wts, version in store.write_order(addr):
            if epoch in last and wts <= last[epoch]:
                raise CoherenceViolation(
                    f"line {addr:#x}: version {version} got wts {wts} "
                    f"<= preceding write's wts {last[epoch]} in epoch "
                    f"{epoch} (L2 processing order)"
                )
            last[epoch] = wts
            checked += 1
    return checked
