"""Canonical registry of every statistic name the simulator emits.

The :class:`~repro.stats.collector.StatsCollector` is schemaless — any
``stats.add("typo_counter")`` silently creates a new counter, and the
harness only notices when a figure comes out empty.  This module is
the single vocabulary: every counter bumped anywhere in the simulator,
every histogram, and the few values ``GPU.finish`` writes directly
must appear here.  A test drives one smoke run of each protocol and
fails on any emitted name the registry does not know, so adding a
counter means adding it here (and usually to the doc block in
``collector.py``) in the same change.
"""

from __future__ import annotations

from typing import Iterable, Set

#: Every fixed-name counter the simulator bumps via ``stats.add``.
COUNTERS = frozenset({
    # engine / SM
    "cycles",
    "instructions",
    "mem_instructions",
    "warps_retired",
    "stall_cycles",
    "stall_mem_cycles",
    "barriers",
    "barrier_releases",
    "fences",
    "fence_wait_cycles",
    # L1
    "l1_access",
    "l1_hit",
    "l1_miss",
    "l1_expired_miss",
    "l1_store",
    "l1_store_hit_m",
    "l1_atomic",
    "l1_renewals",
    "l1_locked_wait",
    "l1_mshr_stall",
    "l1_dead_on_arrival",
    "l1_back_invalidations",
    "l1_invalidations_received",
    "l1_stale_invalidations",
    # L2
    "l2_access",
    "l2_hit",
    "l2_miss",
    "l2_atomics",
    "l2_renewals",
    "l2_evictions",
    "l2_evict_stall",
    "l2_write_stalls",
    "l2_write_stall_cycles",
    "l2_mshr_stall",
    "l2_blocked_requests",
    # MESI directory
    "dir_blocked_requests",
    "dir_invalidations",
    "dir_recalls",
    "dir_recall_invalidations",
    # interconnect / memory
    "noc_bytes",
    "noc_messages",
    "noc_hops",
    "noc_latency_sum",
    "dram_reads",
    "dram_writes",
    # inter-GPU interconnect (repro.multigpu)
    "interlink_bytes",
    "interlink_messages",
    "interlink_latency_sum",
    "home_ts_summarizations",
    # timestamps (G-TSC)
    "ts_overflows",
    "kernel_ts_resets",
})

#: Engine hot-loop counters, reported by ``Engine.counters()``.  They
#: describe the calendar-queue implementation (bucket vs heap traffic,
#: stale-cancel reclamation), not the simulated machine, so they never
#: enter ``RunStats.counters`` — the golden fixtures prove simulated
#: outcomes are independent of them.  ``repro profile`` prints the
#: aggregate, and the observability layer samples them as live gauges.
ENGINE_COUNTERS = frozenset({
    "engine_events_scheduled",
    "engine_events_fired",
    "engine_bucket_direct",
    "engine_heap_deferred",
    "engine_heap_migrated",
    "engine_cancelled",
    "engine_stale_reclaimed",
    "engine_compactions",
})

#: Latency distributions recorded via ``stats.hist.add``.
HISTOGRAMS = frozenset({
    "load_latency",
    "store_latency",
    "atomic_latency",
})

#: Families of counters whose suffix is data-dependent
#: (``noc_bytes_ctrl``, ``noc_bytes_data``, ...).
DYNAMIC_PREFIXES = ("noc_bytes_", "interlink_bytes_")


def is_registered(name: str) -> bool:
    """Whether ``name`` is a known counter (fixed or dynamic family)."""
    if name in COUNTERS or name in ENGINE_COUNTERS:
        return True
    return any(name.startswith(prefix) and len(name) > len(prefix)
               for prefix in DYNAMIC_PREFIXES)


def unregistered(names: Iterable[str]) -> Set[str]:
    """The subset of ``names`` the registry does not know about."""
    return {name for name in names if not is_registered(name)}
