"""Counters gathered during a simulation run.

Every figure in the paper's evaluation is computed from the counters
here: execution cycles (Fig. 12, 14, Table II), memory-stall cycles
(Fig. 13), NoC bytes by message class (Fig. 15), and the event counts
the energy model turns into joules (Fig. 16, 17).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.stats.histogram import Histogram, HistogramSet


class StatsCollector:
    """Mutable counter bag shared by all components of one simulation.

    Counters are plain named integers; components bump them with
    :meth:`add`.  Keeping a single flat namespace (rather than
    per-component objects) makes the harness side trivial: every
    experiment just reads the counters it needs.  Latency
    *distributions* go into :attr:`hist` (see
    :mod:`repro.stats.histogram`).
    """

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.hist = HistogramSet()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def get(self, name: str) -> int:
        """Read counter ``name`` (0 if never touched)."""
        return self.counters[name]

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)


# Counter names used across the code base (documented here so that the
# harness and tests reference a single vocabulary):
#
#   cycles                      total execution cycles of the kernel
#   instructions                warp instructions issued
#   mem_instructions            load/store instructions issued
#   stall_mem_cycles            SM-cycles where issue was blocked only
#                               by outstanding memory (Fig. 13)
#   stall_fence_cycles          SM-cycles blocked at a fence
#   l1_access / l1_hit / l1_miss
#   l1_expired_miss             tag hit but lease/timestamp expired
#   l1_renewals                 renewal requests sent (G-TSC)
#   l1_locked_wait              accesses delayed by a pending store
#   l2_access / l2_hit / l2_miss
#   l2_write_stall_cycles       TC: cycles writes waited for leases
#   l2_evict_stall              TC: replacement stalls due to inclusion
#   noc_bytes                   total NoC traffic
#   noc_bytes_<class>           per message class (data / control)
#   noc_messages
#   dram_reads / dram_writes
#   ts_overflows                G-TSC timestamp-reset events
#   gwct_stall_cycles           TC-Weak: fence wait on GWCT


@dataclass
class RunStats:
    """Immutable summary of one finished simulation run.

    Produced by ``GPU.finish()``; consumed by the harness, the energy
    model, and the tests.
    """

    config_desc: str
    cycles: int
    counters: Dict[str, int] = field(default_factory=dict)
    energy: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    # sampled time-series from repro.obs.MetricsRegistry.to_dict();
    # empty (and omitted from to_dict) unless the run was built with
    # an Observability bundle, so default runs serialize byte-identical
    # to builds that predate the observability layer
    timeseries: Dict = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        """Sum of all per-component energies (joules)."""
        return sum(self.energy.values())

    def counter(self, name: str) -> int:
        """Read a raw counter (0 if absent)."""
        return self.counters.get(name, 0)

    @property
    def noc_bytes(self) -> int:
        return self.counter("noc_bytes")

    @property
    def stall_mem_cycles(self) -> int:
        return self.counter("stall_mem_cycles")

    @property
    def l1_hit_rate(self) -> float:
        accesses = self.counter("l1_access")
        return self.counter("l1_hit") / accesses if accesses else 0.0

    def histogram(self, name: str) -> Histogram:
        """A recorded latency histogram (KeyError if absent)."""
        return self.histograms[name]

    def speedup_over(self, baseline: "RunStats") -> float:
        """Performance of this run relative to ``baseline``.

        Defined as baseline cycles / our cycles, i.e. > 1 means faster,
        matching the normalized-performance bars of Figure 12.
        """
        if self.cycles == 0:
            raise ValueError("run has zero cycles")
        return baseline.cycles / self.cycles

    def to_dict(self) -> Dict:
        """A JSON-ready dump for downstream tooling and the run cache.

        Each histogram entry keeps the human-facing summary fields
        (count/mean/p99/max) and adds the raw buckets so that
        :meth:`from_dict` restores the exact object.
        """
        data = {
            "config": self.config_desc,
            "cycles": self.cycles,
            "counters": dict(self.counters),
            "energy_j": dict(self.energy),
            "total_energy_j": self.total_energy,
            "histograms": {
                name: h.to_dict()
                for name, h in self.histograms.items()
            },
        }
        if self.timeseries:
            data["timeseries"] = self.timeseries
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunStats":
        """Rebuild a run summary dumped by :meth:`to_dict`.

        The round trip is exact: ``RunStats.from_dict(s.to_dict()) == s``
        for any run, which is what lets the disk cache substitute a
        stored result for a fresh simulation.
        """
        return cls(
            config_desc=data["config"],
            cycles=data["cycles"],
            counters=dict(data["counters"]),
            energy={k: float(v) for k, v in data["energy_j"].items()},
            histograms={
                name: Histogram.from_dict(name, entry)
                for name, entry in data["histograms"].items()
            },
            timeseries=data.get("timeseries", {}),
        )

    def summary(self) -> str:
        """Multi-line human-readable digest used by the examples."""
        lines = [
            f"config:            {self.config_desc}",
            f"cycles:            {self.cycles}",
            f"instructions:      {self.counter('instructions')}",
            f"L1 hit rate:       {self.l1_hit_rate:.3f}",
            f"memory stalls:     {self.stall_mem_cycles}",
            f"NoC bytes:         {self.noc_bytes}",
            f"DRAM reads:        {self.counter('dram_reads')}",
            f"total energy (J):  {self.total_energy:.6f}",
        ]
        return "\n".join(lines)
