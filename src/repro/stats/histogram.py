"""Power-of-two bucketed histograms for latency distributions.

Counters answer "how many"; the histograms here answer "how long" —
memory-request latency distributions are what separate a protocol that
merely averages well from one with a long stall tail (TC's write
stalls show up as exactly such a tail).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class Histogram:
    """Counts samples in power-of-two buckets: [0], [1], [2-3], [4-7]…"""

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    @staticmethod
    def bucket_of(value: int) -> int:
        """The bucket index for ``value`` (its bit length)."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        return value.bit_length()

    @staticmethod
    def bucket_range(index: int) -> Tuple[int, int]:
        """The inclusive [low, high] range of bucket ``index``."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        # bucket_of inlined: this runs once per completed memory access
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        index = value.bit_length()
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + count
        self.count += count
        self.total += value * count
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile.

        Bucketed, so this is an upper estimate — good enough to see a
        stall tail move by orders of magnitude.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0
        threshold = fraction * self.count
        running = 0
        for index in sorted(self._buckets):
            running += self._buckets[index]
            if running >= threshold:
                return self.bucket_range(index)[1]
        return self.bucket_range(max(self._buckets))[1]

    def buckets(self) -> Iterator[Tuple[Tuple[int, int], int]]:
        """Yield ((low, high), count) in ascending order."""
        for index in sorted(self._buckets):
            yield self.bucket_range(index), self._buckets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.name == other.name
                and self._buckets == other._buckets
                and self.count == other.count
                and self.total == other.total
                and self.max_value == other.max_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"mean={self.mean:.1f}, max={self.max_value})")

    def to_dict(self) -> Dict:
        """A JSON-ready dump that :meth:`from_dict` restores exactly.

        JSON object keys are strings, so bucket indices are stringified
        on the way out and parsed back on the way in.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "p99": self.percentile(0.99) if self.count else 0,
            "max": self.max_value,
            "total": self.total,
            "buckets": {str(i): c for i, c in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "Histogram":
        """Rebuild a histogram summarised by :meth:`to_dict`."""
        histogram = cls(name)
        histogram._buckets = {int(i): c
                              for i, c in data["buckets"].items()}
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.max_value = data["max"]
        return histogram

    def render(self, width: int = 40) -> str:
        """An ASCII rendering for examples and reports."""
        if self.count == 0:
            return f"{self.name}: (empty)"
        peak = max(self._buckets.values())
        lines = [f"{self.name}: n={self.count} mean={self.mean:.1f} "
                 f"p99<={self.percentile(0.99)} max={self.max_value}"]
        for (low, high), count in self.buckets():
            bar = "#" * max(1, round(count / peak * width))
            label = f"{low}" if low == high else f"{low}-{high}"
            lines.append(f"  {label:>12s} {count:8d} {bar}")
        return "\n".join(lines)


class HistogramSet:
    """Lazily created named histograms, one bag per simulation."""

    def __init__(self) -> None:
        self._histograms: Dict[str, Histogram] = {}

    def get(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def add(self, name: str, value: int) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        histogram.add(value)

    def names(self) -> List[str]:
        return sorted(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._histograms
