"""Statistics collection for simulation runs."""

from repro.stats.collector import RunStats, StatsCollector
from repro.stats.names import (COUNTERS, HISTOGRAMS, is_registered,
                               unregistered)

__all__ = ["COUNTERS", "HISTOGRAMS", "RunStats", "StatsCollector",
           "is_registered", "unregistered"]
