"""Statistics collection for simulation runs."""

from repro.stats.collector import RunStats, StatsCollector

__all__ = ["RunStats", "StatsCollector"]
