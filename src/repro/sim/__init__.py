"""Deterministic event-driven simulation kernel."""

from repro.sim.engine import Engine, EventHandle

__all__ = ["Engine", "EventHandle"]
