"""Deterministic event-driven simulation kernel."""

from repro.sim.engine import Engine, Event

__all__ = ["Engine", "Event"]
