"""Compilable twin of :mod:`repro.sim.engine` (the ``fast`` backend).

This module is byte-for-byte the same algorithm as ``engine.py`` —
same calendar/bucket queue, same heap overflow, same lazy-cancel
accounting — kept in a separate module so ``setup.py`` can compile it
with mypyc (``REPRO_BUILD_FAST=1 pip install -e .``) without touching
the always-interpreted reference engine.  It must stay semantically
identical: the golden-equivalence suite runs every protocol under
both backends and diffs the results bit-for-bit, interpreted or not.

Interpreted, this module is just a second pure-Python engine (that is
the silent-fallback path when the extension was never built);
compiled, ``__file__`` loses its ``.py`` suffix, which is how
:mod:`repro.sim.backend` detects a real extension.  It also carries a
typed copy of the scheduler ready-scan (:func:`ready_mask_loop`) so
the SM's candidate-mask rebuild rides the compiled module too.

The external attribute surface (``_seq``, ``_buckets``, ``_mask``,
``_limit``, ``_heap``, ``_filled``, ``heap_deferred``, ``hook``,
``now``, ``events_fired``) is load-bearing: the NoC and protocol
controllers inline :meth:`Engine.post` at their hottest call sites,
so both engines must expose exactly these names.

Every timing component in the reproduction (SMs, NoC links, L2 banks,
DRAM partitions) advances time by scheduling callbacks on a single
shared :class:`Engine`.  The engine is strictly deterministic: events
scheduled for the same cycle fire in scheduling order (a monotone
sequence number breaks ties), so repeated runs of the same workload
produce bit-identical statistics.

There is deliberately no per-cycle ``tick()`` loop — idle cycles are
skipped entirely by jumping the clock to the next scheduled event.
This is what makes a pure-Python cycle-level GPU model tractable.

The queue is a calendar (bucket) queue with a heap overflow, not a
plain heap.  Events landing within ``horizon`` cycles of the current
drain point go into per-cycle FIFO buckets — a ring of plain lists
indexed by ``cycle & mask`` — and :meth:`run` drains a whole cycle's
bucket in one tight loop without re-entering the heap.  Only events
beyond the horizon touch the heap; they migrate into their bucket the
moment the drain window slides over their cycle, which happens before
any later schedule can land in that cycle, so per-cycle FIFO order is
exactly what the pure-heap engine produced.

Heap/bucket entries are plain ``[time, seq, callback, args]`` lists,
so both allocation and ordering comparisons stay entirely in C
(list-of-int comparison; ``seq`` is unique, so ``callback`` never
participates).  :meth:`Engine.schedule` returns the entry itself as an
opaque handle; cancel through :meth:`Engine.cancel`, which nulls the
callback slot in place.  A cancelled bucket entry is reclaimed for
free when its cycle drains; cancelled heap entries are counted and the
heap is compacted once they dominate it, so long runs with many
cancellations cannot grow either structure without bound.

Alongside the ring lives ``_filled``, a packed per-bucket occupancy
byte array: every bucket append sets its byte, so locating the next
occupied cycle is a C-level ``bytearray.find`` (memchr) instead of a
Python loop over empty buckets.  Bytes are cleared when a drained
bucket proves empty; a stale byte (bucket emptied by a cold path) is
harmless — the locate checks the bucket and clears it in passing.
The occupancy index never affects firing order, only how fast the
drain finds the next cycle.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

# The opaque handle returned by Engine.schedule: a queue entry of the
# form [time, seq, callback, args].  A cancelled (or already-fired)
# entry has callback None.
EventHandle = List[Any]

# Default bucket-ring size.  Power of two; covers every fixed latency
# in the model (DRAM base latency is the largest at ~160 cycles), so
# in steady state only congestion-delayed completions and long timers
# take the heap detour.
DEFAULT_HORIZON = 512


class Engine:
    """A deterministic calendar/heap event queue with an integer clock."""

    # compact only once this many cancelled entries have accumulated
    # in the heap *and* they make up at least half of it (see cancel)
    COMPACT_THRESHOLD = 256

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        if horizon < 2 or horizon & (horizon - 1):
            raise ValueError(
                f"horizon must be a power of two >= 2, got {horizon}")
        self._horizon = horizon
        self._mask = horizon - 1
        # ring of per-cycle FIFO buckets; bucket cycles live in
        # [now, _limit) which is never wider than horizon, so
        # ``cycle & mask`` is collision-free
        self._buckets: List[List[EventHandle]] = \
            [[] for _ in range(horizon)]
        # packed bucket-occupancy index: _filled[i] is nonzero when
        # bucket i may hold entries (set on every append, cleared when
        # a drain finds the bucket empty), so the next occupied cycle
        # is one C-level find() instead of a ring walk
        self._filled = bytearray(horizon)
        self._limit = horizon       # heap entries all have time >= this
        self._heap: List[EventHandle] = []
        self._seq = 0               # also the total ever scheduled
        self.now = 0
        self.events_fired = 0
        self._cancelled = 0         # total ever cancelled
        self._stale = 0             # cancelled entries still in the heap
        self._stale_buckets = 0     # cancelled entries still in buckets
        # hot-loop observability (read by `repro profile` and the
        # engine_* metrics gauges; plain ints so the hot paths stay
        # attribute increments)
        self.heap_deferred = 0      # events scheduled beyond the window
        self.heap_migrated = 0      # heap events slid into a bucket
        self.stale_reclaimed = 0    # cancelled entries reclaimed
        self.compactions = 0        # heap compaction passes
        # observability: called as hook(time, callback) for every event
        # fired.  Must not schedule or cancel anything — it observes the
        # dispatch stream (metrics sampling, engine tracing) without
        # perturbing it.
        self.hook: Optional[Callable[[int, Callable], None]] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay fires later in the
        current cycle, after all previously scheduled current-cycle
        events.  Returns a handle accepted by :meth:`cancel`; the
        handle's ``[0]`` element is the absolute fire time.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        time = self.now + delay
        event = [time, seq, callback, args]
        if time < self._limit:
            slot = time & self._mask
            self._buckets[slot].append(event)
            self._filled[slot] = 1
        else:
            heappush(self._heap, event)
            self.heap_deferred += 1
        return event

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute cycle (>= now)."""
        if time < self.now:
            raise ValueError(f"negative delay: {time - self.now}")
        seq = self._seq
        self._seq = seq + 1
        event = [time, seq, callback, args]
        if time < self._limit:
            slot = time & self._mask
            self._buckets[slot].append(event)
            self._filled[slot] = 1
        else:
            heappush(self._heap, event)
            self.heap_deferred += 1
        return event

    def post(self, time: int, callback: Callable[..., None],
             args: tuple = ()) -> EventHandle:
        """Fast-path :meth:`at` for hot internal callers.

        Takes the argument tuple directly (no varargs repacking) and
        trusts the caller that ``time >= now`` — the NoC, DRAM and L2
        pipelines compute arrival times from ``now`` plus non-negative
        latencies, so the guard in :meth:`at` would never fire there.
        """
        seq = self._seq
        self._seq = seq + 1
        event = [time, seq, callback, args]
        if time < self._limit:
            slot = time & self._mask
            self._buckets[slot].append(event)
            self._filled[slot] = 1
        else:
            heappush(self._heap, event)
            self.heap_deferred += 1
        return event

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, event: EventHandle) -> None:
        """Prevent a scheduled event from firing.

        Safe to call more than once, and safe after the event has
        fired (both are no-ops).  The handle must come from this
        engine's :meth:`schedule`/:meth:`at`.  Bucketed entries (fire
        time inside the drain window) are reclaimed for free when
        their cycle drains — cancelling is a pure slot overwrite; only
        heap entries ever need a compaction pass.
        """
        if event[2] is not None:
            event[2] = None
            self._cancelled += 1
            if event[0] < self._limit:
                self._stale_buckets += 1
            else:
                stale = self._stale = self._stale + 1
                if (stale >= self.COMPACT_THRESHOLD
                        and stale * 2 >= len(self._heap)):
                    self.compact()

    @staticmethod
    def cancelled(event: EventHandle) -> bool:
        """Whether this event will no longer fire (cancelled or fired)."""
        return event[2] is None

    # ------------------------------------------------------------------
    # window maintenance
    # ------------------------------------------------------------------
    def _advance_window(self, t: int) -> None:
        """Slide the bucket window to cover ``[t, t + horizon)``.

        Pops every heap event whose cycle the new window covers into
        its bucket.  Must run before any event at cycle ``t`` fires:
        heap entries for a cycle were all scheduled before the window
        reached it, so migrating them first keeps each bucket in
        global sequence order.
        """
        new_limit = t + self._horizon
        if new_limit <= self._limit:
            return
        heap = self._heap
        if heap:
            buckets = self._buckets
            filled = self._filled
            mask = self._mask
            migrated = 0
            while heap and heap[0][0] < new_limit:
                event = heappop(heap)
                if event[2] is None:
                    self._stale -= 1
                    self.stale_reclaimed += 1
                    continue
                slot = event[0] & mask
                buckets[slot].append(event)
                filled[slot] = 1
                migrated += 1
            self.heap_migrated += migrated
        self._limit = new_limit

    def _locate(self, c: int) -> int:
        """Next cycle >= ``c`` whose bucket is non-empty, else -1.

        Pure occupancy-index navigation: two ``find`` calls cover the
        ring split at the wrap point, and stale bytes (buckets emptied
        by a path that didn't clear them) are cleared in passing.  Only
        cycles in ``[c, _limit)`` can hold entries, so any byte that
        survives the bucket check maps to a window cycle.
        """
        filled = self._filled
        buckets = self._buckets
        horizon = self._horizon
        b = c & self._mask
        if buckets[b]:
            return c
        filled[b] = 0
        while True:
            nb = filled.find(1, b)
            if nb >= 0:
                nc = c + (nb - b)
            else:
                nb = filled.find(1, 0, b)
                if nb < 0:
                    return -1
                nc = c + (horizon - b) + nb
            if buckets[nb]:
                return nc
            filled[nb] = 0

    def _next_cycle(self) -> int:
        """The next cycle holding queued entries, advancing the window.

        Returns -1 when nothing (live or stale) is queued.  The
        returned cycle's bucket is non-empty but may hold only stale
        entries; callers drain it either way.  The occupancy index
        makes the ring probe one find() (the hot unbounded :meth:`run`
        keeps its own cursor and never comes through here).
        """
        c = self._locate(self.now)
        if c >= 0:
            self._advance_window(c)
            return c
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._stale -= 1
            self.stale_reclaimed += 1
        if not heap:
            return -1
        t = heap[0][0]
        self._advance_window(t)
        return t

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or None if empty."""
        buckets = self._buckets
        mask = self._mask
        c = self.now
        while True:
            c = self._locate(c)
            if c < 0:
                break
            bucket = buckets[c & mask]
            if any(entry[2] is not None for entry in bucket):
                return c
            # all-stale cycle: reclaim it on the way past
            count = len(bucket)
            self._stale_buckets -= count
            self.stale_reclaimed += count
            del bucket[:]
            self._filled[c & mask] = 0
            c += 1
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._stale -= 1
            self.stale_reclaimed += 1
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._seq - self.events_fired - self._cancelled

    def counters(self) -> dict:
        """Hot-loop counters under their canonical ``engine_*`` names.

        Deliberately *not* part of ``RunStats.counters``: these
        describe the queue implementation, not the simulated machine,
        and the golden fixtures prove simulated outcomes are
        independent of them.  ``repro profile`` aggregates them across
        fresh simulations, and the observability gauges sample them
        live (see ``repro.stats.names.ENGINE_COUNTERS``).
        """
        scheduled = self._seq
        deferred = self.heap_deferred
        return {
            "engine_events_scheduled": scheduled,
            "engine_events_fired": self.events_fired,
            "engine_bucket_direct": scheduled - deferred,
            "engine_heap_deferred": deferred,
            "engine_heap_migrated": self.heap_migrated,
            "engine_cancelled": self._cancelled,
            "engine_stale_reclaimed": self.stale_reclaimed,
            "engine_compactions": self.compactions,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while True:
            t = self._next_cycle()
            if t < 0:
                return False
            bucket = self._buckets[t & self._mask]
            index = 0
            count = len(bucket)
            while index < count and bucket[index][2] is None:
                index += 1
            if index:
                self._stale_buckets -= index
                self.stale_reclaimed += index
                del bucket[:index]
            if not bucket:
                self._filled[t & self._mask] = 0
                continue        # the whole cycle was cancelled
            event = bucket[0]
            del bucket[0]
            if not bucket:
                self._filled[t & self._mask] = 0
            event[2], callback = None, event[2]
            self.now = t
            self.events_fired += 1
            if self.hook is not None:
                self.hook(t, callback)
            callback(*event[3])
            return True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` events (a safety valve for
        tests against livelock).  Returns the final clock value.
        """
        if until is not None or max_events is not None:
            return self._run_bounded(until, max_events)
        hook = self.hook
        buckets = self._buckets
        filled = self._filled
        mask = self._mask
        horizon = self._horizon
        half = horizon >> 1
        limit = self._limit
        c = self.now
        fired_total = 0
        while True:
            # ---- locate the next occupied cycle ----
            # All bucketed entries live in [c, limit), so the occupancy
            # index (split at the ring wrap point) answers "next
            # occupied cycle" with at most two C-level finds; an empty
            # index proves the ring is drained and the next event (if
            # any) is in the heap.  Stale bytes left by cold paths are
            # cleared as the probe passes them.
            b = c & mask
            bucket = buckets[b]
            if not bucket:
                filled[b] = 0
                while True:
                    nb = filled.find(1, b)
                    if nb >= 0:
                        nc = c + (nb - b)
                    else:
                        nb = filled.find(1, 0, b)
                        if nb < 0:
                            nc = -1
                        else:
                            nc = c + (horizon - b) + nb
                    if nc < 0 or buckets[nb]:
                        break
                    filled[nb] = 0
                if nc < 0:
                    heap = self._heap
                    while heap and heap[0][2] is None:
                        heappop(heap)
                        self._stale -= 1
                        self.stale_reclaimed += 1
                    if not heap:
                        break
                    # jump the window to the next heap event and pull
                    # everything it now covers into buckets (heap-pop
                    # order is (time, seq) order, so each bucket fills
                    # in global scheduling order)
                    c = heap[0][0]
                    limit = c + horizon
                    migrated = 0
                    while heap and heap[0][0] < limit:
                        event = heappop(heap)
                        if event[2] is None:
                            self._stale -= 1
                            self.stale_reclaimed += 1
                            continue
                        slot = event[0] & mask
                        buckets[slot].append(event)
                        filled[slot] = 1
                        migrated += 1
                    self.heap_migrated += migrated
                    self._limit = limit
                    b = c & mask
                    bucket = buckets[b]
                else:
                    c = nc
                    b = nb
                    bucket = buckets[b]
            # ---- keep the window comfortably ahead of the clock ----
            # Sliding in half-horizon blocks amortises the heap check;
            # migration happens the instant the window covers a cycle,
            # before anything can be scheduled into it, which is what
            # keeps each bucket in global FIFO order.
            if limit - c <= half:
                limit = c + horizon
                heap = self._heap
                if heap and heap[0][0] < limit:
                    migrated = 0
                    while heap and heap[0][0] < limit:
                        event = heappop(heap)
                        if event[2] is None:
                            self._stale -= 1
                            self.stale_reclaimed += 1
                            continue
                        slot = event[0] & mask
                        buckets[slot].append(event)
                        filled[slot] = 1
                        migrated += 1
                    self.heap_migrated += migrated
                self._limit = limit
            # ---- drain cycle c ----
            if len(bucket) == 1 and bucket[0][2] is not None:
                # singleton fast path: sparse stretches look like the
                # old heap engine, one event per cycle (pop() avoids
                # the del-from-front memmove setup)
                event = bucket.pop()
                callback = event[2]
                event[2] = None
                self.now = c
                if hook is None:
                    fired_total += 1
                    callback(*event[3])
                else:
                    self.events_fired += 1
                    hook(c, callback)
                    callback(*event[3])
                if not bucket:
                    # no zero-delay follow-ons: this cycle is done
                    filled[b] = 0
                    c += 1
                continue
            if bucket[0][2] is None and not any(
                    entry[2] is not None for entry in bucket):
                # fully-cancelled cycle: reclaim it without touching
                # the clock, exactly as the heap engine's lazy pops
                # never advanced `now`
                count = len(bucket)
                del bucket[:]
                filled[b] = 0
                self._stale_buckets -= count
                self.stale_reclaimed += count
                c += 1
                continue
            self.now = c
            stale = 0
            if hook is None:
                # batch drain: the whole cycle in one tight loop.  A
                # plain list iterator re-checks the length on every
                # step, so zero-delay events appended by the callbacks
                # themselves are picked up in FIFO order — same
                # semantics as an index loop, without the per-event
                # len() call.
                for event in bucket:
                    callback = event[2]
                    if callback is None:
                        stale += 1
                        continue
                    event[2] = None
                    fired_total += 1
                    callback(*event[3])
            else:
                for event in bucket:
                    callback = event[2]
                    if callback is None:
                        stale += 1
                        continue
                    event[2] = None
                    self.events_fired += 1
                    hook(c, callback)
                    callback(*event[3])
            count = len(bucket)
            del bucket[:]
            filled[b] = 0
            if stale:
                self._stale_buckets -= stale
                self.stale_reclaimed += stale
            c += 1
        if hook is None:
            # events_fired accumulates in a local and flushes once per
            # drain — only the observability hook path reads it
            # mid-run, and that path updates it per event above.
            self.events_fired += fired_total
        return self.now

    def _run_bounded(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        hook = self.hook
        buckets = self._buckets
        mask = self._mask
        fired = 0
        while True:
            t = self._next_cycle()
            if t < 0:
                break
            if until is not None and t > until:
                self.now = until
                # keep the window invariant (`limit > now`) so hot
                # in-window schedulers stay correct after a long jump
                self._advance_window(until)
                break
            bucket = buckets[t & mask]
            index = 0
            count = len(bucket)
            while index < count and bucket[index][2] is None:
                index += 1
            if index == count:
                # fully-cancelled cycle: reclaim the drained stale
                # entries (they must keep the stale bookkeeping exact —
                # bounded runs historically leaked them) and leave the
                # clock untouched
                self._stale_buckets -= count
                self.stale_reclaimed += count
                del bucket[:]
                self._filled[t & mask] = 0
                continue
            self.now = t
            stale = index
            while index < len(bucket):
                event = bucket[index]
                callback = event[2]
                if callback is None:
                    index += 1
                    stale += 1
                    continue
                if max_events is not None and fired >= max_events:
                    # leave the rest queued; reclaim the drained prefix
                    del bucket[:index]
                    self._stale_buckets -= stale
                    self.stale_reclaimed += stale
                    raise RuntimeError(
                        f"engine exceeded {max_events} events "
                        f"at cycle {self.now}"
                    )
                index += 1
                event[2] = None
                self.events_fired += 1
                fired += 1
                if hook is not None:
                    hook(t, callback)
                callback(*event[3])
            count = len(bucket)
            self._stale_buckets -= stale
            self.stale_reclaimed += stale
            del bucket[:]
            self._filled[t & mask] = 0
        return self.now

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Called automatically once cancelled entries make up at least
        half of a large heap; exposed for tests and explicit trimming.
        Bucketed stale entries are untouched — their cycles reclaim
        them in O(1) as the drain passes.
        """
        heap = self._heap
        live = [entry for entry in heap if entry[2] is not None]
        removed = len(heap) - len(live)
        if removed:
            self._stale -= removed
            self.stale_reclaimed += removed
        heapify(live)
        self._heap = live
        self.compactions += 1


# ---------------------------------------------------------------------------
# scheduler ready-scan (compiled copy of repro.gpu.sm.ready_mask_loop)
# ---------------------------------------------------------------------------
def ready_mask_loop(cls_values: List[int], now: int) -> int:
    """Candidate bitmask over a packed warp-classification array.

    Must compute exactly the mask of :func:`repro.gpu.sm.ready_mask`:
    a slot is a candidate when dirty (-1), ready (0), or blocked with
    a wake time the clock has reached.  The SM resolves which copy to
    call once per construction via :mod:`repro.sim.backend`.
    """
    mask = 0
    bit = 1
    for cls in cls_values:
        if cls <= 0 or (cls >= 8 and now >= (cls >> 3) - 1):
            mask |= bit
        bit <<= 1
    return mask
