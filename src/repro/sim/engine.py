"""The discrete-event simulation engine.

Every timing component in the reproduction (SMs, NoC links, L2 banks,
DRAM partitions) advances time by scheduling callbacks on a single
shared :class:`Engine`.  The engine is strictly deterministic: events
scheduled for the same cycle fire in scheduling order (a monotone
sequence number breaks ties), so repeated runs of the same workload
produce bit-identical statistics.

There is deliberately no per-cycle ``tick()`` loop — idle cycles are
skipped entirely by jumping the clock to the next scheduled event.
This is what makes a pure-Python cycle-level GPU model tractable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Ordered by ``(time, seq)`` so same-cycle events preserve their
    scheduling order.  Cancelled events stay in the heap but are
    skipped when popped.
    """

    time: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        self.cancelled = True


class Engine:
    """A deterministic event heap with an integer clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now = 0
        self.events_fired = 0

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay fires later in the
        current cycle, after all previously scheduled current-cycle
        events.  Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(self.now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule ``callback`` at an absolute cycle (>= now)."""
        return self.schedule(time - self.now, callback, *args)

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when the clock would pass
        ``until``, or after ``max_events`` events (a safety valve for
        tests against livelock).  Returns the final clock value.
        """
        fired = 0
        while True:
            next_time = self.peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"engine exceeded {max_events} events at cycle {self.now}"
                )
            self.step()
            fired += 1
        return self.now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
