"""The discrete-event simulation engine.

Every timing component in the reproduction (SMs, NoC links, L2 banks,
DRAM partitions) advances time by scheduling callbacks on a single
shared :class:`Engine`.  The engine is strictly deterministic: events
scheduled for the same cycle fire in scheduling order (a monotone
sequence number breaks ties), so repeated runs of the same workload
produce bit-identical statistics.

There is deliberately no per-cycle ``tick()`` loop — idle cycles are
skipped entirely by jumping the clock to the next scheduled event.
This is what makes a pure-Python cycle-level GPU model tractable.

Heap entries are plain ``[time, seq, callback, args]`` lists, so both
allocation and ordering comparisons stay entirely in C (list-of-int
comparison; ``seq`` is unique, so ``callback`` never participates).
:meth:`Engine.schedule` returns the entry itself as an opaque handle;
cancel through :meth:`Engine.cancel`, which nulls the callback slot in
place.  Cancelled entries are counted so :meth:`Engine.pending` is
O(1), and the heap is compacted once cancelled entries dominate it, so
long runs with many cancellations cannot grow the heap without bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

# The opaque handle returned by Engine.schedule: a heap entry of the
# form [time, seq, callback, args].  A cancelled (or already-fired)
# entry has callback None.
EventHandle = List[Any]


class Engine:
    """A deterministic event heap with an integer clock."""

    # compact only once this many cancelled entries have accumulated
    # *and* they make up at least half the heap (see cancel)
    COMPACT_THRESHOLD = 256

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._seq = 0               # also the total ever scheduled
        self.now = 0
        self.events_fired = 0
        self._cancelled = 0         # total ever cancelled
        self._stale = 0             # cancelled entries still in the heap
        # observability: called as hook(time, callback) for every event
        # fired.  Must not schedule or cancel anything — it observes the
        # dispatch stream (metrics sampling, engine tracing) without
        # perturbing it.
        self.hook: Optional[Callable[[int, Callable], None]] = None

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay fires later in the
        current cycle, after all previously scheduled current-cycle
        events.  Returns a handle accepted by :meth:`cancel`; the
        handle's ``[0]`` element is the absolute fire time.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        event = [self.now + delay, seq, callback, args]
        heappush(self._heap, event)
        return event

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute cycle (>= now)."""
        if time < self.now:
            raise ValueError(f"negative delay: {time - self.now}")
        seq = self._seq
        self._seq = seq + 1
        event = [time, seq, callback, args]
        heappush(self._heap, event)
        return event

    def post(self, time: int, callback: Callable[..., None],
             args: tuple = ()) -> EventHandle:
        """Fast-path :meth:`at` for hot internal callers.

        Takes the argument tuple directly (no varargs repacking) and
        trusts the caller that ``time >= now`` — the NoC, DRAM and L2
        pipelines compute arrival times from ``now`` plus non-negative
        latencies, so the guard in :meth:`at` would never fire there.
        """
        seq = self._seq
        self._seq = seq + 1
        event = [time, seq, callback, args]
        heappush(self._heap, event)
        return event

    def cancel(self, event: EventHandle) -> None:
        """Prevent a scheduled event from firing.

        Safe to call more than once, and safe after the event has
        fired (both are no-ops).  The handle must come from this
        engine's :meth:`schedule`/:meth:`at`.
        """
        if event[2] is not None:
            event[2] = None
            self._cancelled += 1
            stale = self._stale = self._stale + 1
            if (stale >= self.COMPACT_THRESHOLD
                    and stale * 2 >= len(self._heap)):
                self.compact()

    @staticmethod
    def cancelled(event: EventHandle) -> bool:
        """Whether this event will no longer fire (cancelled or fired)."""
        return event[2] is None

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or None if empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._stale -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)
            callback = event[2]
            if callback is None:
                self._stale -= 1
                continue
            event[2] = None
            self.now = event[0]
            self.events_fired += 1
            if self.hook is not None:
                self.hook(event[0], callback)
            callback(*event[3])
            return True
        return False

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when the clock would pass
        ``until``, or after ``max_events`` events (a safety valve for
        tests against livelock).  Returns the final clock value.
        """
        heap = self._heap
        if until is None and max_events is None:
            hook = self.hook
            if hook is not None:
                while heap:
                    event = heappop(heap)
                    callback = event[2]
                    if callback is None:
                        self._stale -= 1
                        continue
                    event[2] = None
                    self.now = event[0]
                    self.events_fired += 1
                    hook(event[0], callback)
                    callback(*event[3])
                return self.now
            # hot path: no bound checks inside the loop.  events_fired
            # accumulates in a local and flushes once per drain — only
            # the observability hook path reads it mid-run, and that
            # path is the branch above.
            pop = heappop
            fired = 0
            while heap:
                event = pop(heap)
                callback = event[2]
                if callback is None:
                    self._stale -= 1
                    continue
                event[2] = None
                self.now = event[0]
                fired += 1
                callback(*event[3])
            self.events_fired += fired
            return self.now
        fired = 0
        while heap:
            event = heappop(heap)
            callback = event[2]
            if callback is None:
                self._stale -= 1
                continue
            time = event[0]
            if until is not None and time > until:
                heappush(heap, event)
                self.now = until
                break
            if max_events is not None and fired >= max_events:
                heappush(heap, event)
                raise RuntimeError(
                    f"engine exceeded {max_events} events at cycle {self.now}"
                )
            event[2] = None
            self.now = time
            self.events_fired += 1
            fired += 1
            if self.hook is not None:
                self.hook(time, callback)
            callback(*event[3])
        return self.now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._seq - self.events_fired - self._cancelled

    def compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Called automatically once cancelled entries make up at least
        half of a large heap; exposed for tests and explicit trimming.
        """
        self._heap = [entry for entry in self._heap if entry[2] is not None]
        heapify(self._heap)
        self._stale = 0
