"""Simulation backend selection: pure-Python vs the compiled engine.

Two engines implement the same calendar/heap event queue:

* ``pure``  — :mod:`repro.sim.engine`, always available, the
  reference implementation.
* ``fast``  — :mod:`repro.sim._fast`, the same algorithm in a module
  that ``setup.py`` can compile with mypyc.  Interpreted it behaves
  (and performs) like ``pure``; compiled it is a C extension.

Both produce bit-identical simulations — goldens, audit replay and
observability streams included — which the golden-equivalence suite
enforces.  Selection therefore never appears in run keys, config
digests or :class:`RunStats`; it is provenance only (the results
database and the serve envelope record which backend produced a row).

Resolution order, first match wins:

1. :func:`select_backend` (the ``--backend`` CLI flag),
2. the ``REPRO_BACKEND`` environment variable,
3. the default, ``auto``.

``pure`` always means the reference engine.  ``fast`` means the
``_fast`` module whether or not it was compiled (its interpreted form
is still the same algorithm), degrading silently to ``pure`` only if
the module cannot be imported at all (e.g. a broken extension build).
``auto`` prefers ``fast`` only when it is actually compiled — an
interpreted twin adds nothing, so unbuilt installs run ``pure``
without ever noticing a backend layer exists.

The environment variable is read at every resolution (not import
time), so one process can compare backends by flipping it between
:class:`repro.gpu.machine.Machine` constructions.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

_VALID = ("auto", "pure", "fast")

# process-wide override installed by the CLI; beats the environment
_forced: Optional[str] = None


def select_backend(name: Optional[str]) -> None:
    """Force the backend for this process (the ``--backend`` flag).

    ``None`` clears the override, returning resolution to the
    environment.  Raises ``ValueError`` for unknown names.
    """
    global _forced
    if name is not None:
        name = name.strip().lower()
        if name not in _VALID:
            raise ValueError(
                f"unknown backend {name!r}; choose from {_VALID}")
    _forced = name


def requested_backend() -> str:
    """The *requested* backend: flag, else environment, else auto."""
    if _forced is not None:
        return _forced
    value = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if value in _VALID:
        return value
    return "auto"


def _fast_module():
    try:
        from repro.sim import _fast
        return _fast
    except Exception:  # pragma: no cover - broken extension build
        return None


def is_compiled() -> bool:
    """Whether the ``fast`` backend is a real compiled extension."""
    mod = _fast_module()
    if mod is None:
        return False
    origin = getattr(mod, "__file__", "") or ""
    return not origin.endswith(".py")


def backend_name() -> str:
    """The *resolved* backend: ``"pure"`` or ``"fast"``."""
    req = requested_backend()
    if req == "pure":
        return "pure"
    if req == "fast":
        return "fast" if _fast_module() is not None else "pure"
    return "fast" if is_compiled() else "pure"


def engine_class() -> type:
    """The Engine class for the resolved backend."""
    if backend_name() == "fast":
        return _fast_module().Engine
    from repro.sim.engine import Engine
    return Engine


def ready_mask_fn() -> Callable[[List[int], int], int]:
    """The scheduler ready-scan for the resolved backend.

    The SM resolves this once per construction; both copies compute
    the identical candidate mask (property-tested), so this choice —
    like the engine class — can never change simulated outcomes.
    """
    if backend_name() == "fast":
        return _fast_module().ready_mask_loop
    from repro.gpu.sm import ready_mask
    return ready_mask
