"""Experiment harness: regenerate every table and figure of the paper."""

from repro.harness.runner import ExperimentRunner
from repro.harness.tables import ExperimentResult, format_result
from repro.harness.charts import render_chart
from repro.harness.sweeps import SweepSeries, sweep
from repro.harness import experiments

__all__ = ["ExperimentRunner", "ExperimentResult", "SweepSeries",
           "format_result", "render_chart", "sweep", "experiments"]
