"""Experiment harness: regenerate every table and figure of the paper."""

from repro.harness.runner import ExperimentRunner, point_of
from repro.harness.parallel import ParallelRunner
from repro.harness.cache import RunCache, run_key
from repro.harness.tables import ExperimentResult, format_result
from repro.harness.charts import render_chart
from repro.harness.sweeps import SweepSeries, sweep
from repro.harness import experiments

__all__ = ["ExperimentRunner", "ParallelRunner", "RunCache",
           "ExperimentResult", "SweepSeries", "format_result",
           "point_of", "render_chart", "run_key", "sweep",
           "experiments"]
