"""Result containers and text formatting for experiment output.

Every experiment returns an :class:`ExperimentResult`; the benchmark
scripts print it with :func:`format_result`, producing the same rows
or bar series the paper's table/figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` are the data series (first column is the benchmark or
    parameter); ``summary`` holds the figure-level aggregates the
    paper quotes in prose (e.g. "38% over TC with RC").
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def column(self, header: str) -> List[Cell]:
        """Extract one column by header name (test helper)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row(self, name: str) -> List[Cell]:
        """Extract one row by its first-column label (test helper)."""
        for row in self.rows:
            if row[0] == name:
                return row
        raise KeyError(f"no row {name!r} in {self.experiment_id}")


def _fmt_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """Render a result as an aligned text table."""
    table: List[Sequence[str]] = [result.headers]
    table += [[_fmt_cell(c) for c in row] for row in result.rows]
    widths = [max(len(row[i]) for row in table)
              for i in range(len(result.headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(row, widths))

    out = [f"== {result.experiment_id}: {result.title} ==", ""]
    out.append(line(table[0]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in table[1:])
    if result.summary:
        out.append("")
        for key, value in result.summary.items():
            out.append(f"  {key}: {value:.3f}")
    if result.notes:
        out.append("")
        out.append(f"  note: {result.notes}")
    return "\n".join(out)


def render_html_table(result: ExperimentResult) -> str:
    """Render a result as an HTML table (used by the DB report).

    Numeric cells are right-aligned via a class the report's styles
    pick up; the summary aggregates and notes become a footer row so
    one element carries everything ``format_result`` prints.
    """
    import html

    def cell(value: Cell, tag: str = "td") -> str:
        css = ' class="num"' if isinstance(value, (int, float)) else ""
        return f"<{tag}{css}>{html.escape(_fmt_cell(value))}</{tag}>"

    lines = [f'<table class="result" id="{html.escape(result.experiment_id)}">',
             f"<caption>{html.escape(result.title)}</caption>",
             "<thead><tr>"
             + "".join(cell(h, "th") for h in result.headers)
             + "</tr></thead>", "<tbody>"]
    for row in result.rows:
        lines.append("<tr>" + "".join(cell(c) for c in row) + "</tr>")
    lines.append("</tbody>")
    footer = []
    footer.extend(f"{key}: {value:.3f}"
                  for key, value in result.summary.items())
    if result.notes:
        footer.append(result.notes)
    if footer:
        lines.append(
            f'<tfoot><tr><td colspan="{len(result.headers)}">'
            + "<br>".join(html.escape(f) for f in footer)
            + "</td></tr></tfoot>")
    lines.append("</table>")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
