"""Result containers and text formatting for experiment output.

Every experiment returns an :class:`ExperimentResult`; the benchmark
scripts print it with :func:`format_result`, producing the same rows
or bar series the paper's table/figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` are the data series (first column is the benchmark or
    parameter); ``summary`` holds the figure-level aggregates the
    paper quotes in prose (e.g. "38% over TC with RC").
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def column(self, header: str) -> List[Cell]:
        """Extract one column by header name (test helper)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row(self, name: str) -> List[Cell]:
        """Extract one row by its first-column label (test helper)."""
        for row in self.rows:
            if row[0] == name:
                return row
        raise KeyError(f"no row {name!r} in {self.experiment_id}")


def _fmt_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """Render a result as an aligned text table."""
    table: List[Sequence[str]] = [result.headers]
    table += [[_fmt_cell(c) for c in row] for row in result.rows]
    widths = [max(len(row[i]) for row in table)
              for i in range(len(result.headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(row, widths))

    out = [f"== {result.experiment_id}: {result.title} ==", ""]
    out.append(line(table[0]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in table[1:])
    if result.summary:
        out.append("")
        for key, value in result.summary.items():
            out.append(f"  {key}: {value:.3f}")
    if result.notes:
        out.append("")
        out.append(f"  note: {result.notes}")
    return "\n".join(out)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
