"""Sliding-window rate and ETA estimation for progress heartbeats.

The ``[repro] k/n`` heartbeat lines (PR 2) tell you *where* a batch
is; this module tells you *when it will finish*.  A
:class:`RateEstimator` keeps the completion timestamps of the last
``window`` points and derives the current rate from that window
alone, so the estimate tracks the recent regime — a sweep whose early
points are tiny and late points are huge converges to the late rate
instead of averaging over history it has left behind.

Shared by the sequential and parallel runners: both tick the
estimator once per completed point and append its suffix to the
heartbeat line.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional


def format_duration(seconds: float) -> str:
    """Compact human duration: ``42s``, ``3m08s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class RateEstimator:
    """Completions-per-second over a sliding window of ticks."""

    def __init__(self, window: int = 16,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window < 2:
            raise ValueError("window must hold at least 2 ticks")
        self._clock = clock
        self._ticks: deque = deque(maxlen=window)
        self._ticks.append(clock())  # the batch's start anchors rate

    def tick(self) -> None:
        """Record one completed unit of work."""
        self._ticks.append(self._clock())

    def rate(self) -> Optional[float]:
        """Recent completions per second, or None before two ticks."""
        if len(self._ticks) < 2:
            return None
        span = self._ticks[-1] - self._ticks[0]
        if span <= 0:
            return None
        return (len(self._ticks) - 1) / span

    def eta_seconds(self, remaining: int) -> Optional[float]:
        """Projected seconds until ``remaining`` more units finish."""
        rate = self.rate()
        if rate is None or remaining < 0:
            return None
        return remaining / rate

    def suffix(self, remaining: int) -> str:
        """Heartbeat-line tail: ``", 1.4/s, eta 12s"`` (or empty).

        Empty until the window can support an estimate, so heartbeat
        consumers can append it unconditionally.
        """
        rate = self.rate()
        if rate is None:
            return ""
        eta = format_duration(remaining / rate)
        if rate >= 0.95:
            return f", {rate:.1f}/s, eta {eta}"
        return f", {1 / rate:.1f}s/point, eta {eta}"
