"""ASCII bar charts for experiment results.

The paper's figures are grouped bar charts; this module renders an
:class:`ExperimentResult` the same way in plain text, so
``gtsc-repro run fig12 --chart`` shows the figure's *shape* directly
in the terminal (and in CI logs) without a plotting stack.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.tables import ExperimentResult

# distinct fill characters per series, recycled if a figure has more
_FILLS = "#@%*+=o^"


def _numeric_columns(result: ExperimentResult) -> List[int]:
    """Indices of columns whose cells are all numbers (the bars)."""
    indices = []
    for index in range(1, len(result.headers)):
        cells = [row[index] for row in result.rows]
        if all(isinstance(c, (int, float)) for c in cells):
            indices.append(index)
    return indices


def render_chart(result: ExperimentResult, width: int = 44,
                 columns: Optional[List[str]] = None) -> str:
    """Render a result as grouped horizontal bars.

    One group per row (benchmark), one bar per numeric column
    (series).  Bars share a common scale; a reference line is drawn at
    1.0 when the data straddles it (normalised figures).
    """
    if columns is not None:
        indices = [result.headers.index(c) for c in columns]
    else:
        indices = _numeric_columns(result)
    if not indices:
        raise ValueError(f"{result.experiment_id}: nothing to chart")

    values = [float(row[i]) for row in result.rows for i in indices]
    peak = max(values + [1e-12])
    show_unit = min(values) < 1.0 < peak

    def bar(value: float, fill: str) -> str:
        length = max(0, round(value / peak * width))
        text = fill * length
        if show_unit:
            unit_pos = round(1.0 / peak * width)
            if unit_pos < width:
                text = (text[:unit_pos].ljust(unit_pos)
                        + ("|" if length <= unit_pos else
                           text[unit_pos])
                        + text[unit_pos + 1:])
        return text

    label_width = max(len(str(row[0])) for row in result.rows)
    series_width = max(len(result.headers[i]) for i in indices)
    lines = [f"== {result.experiment_id}: {result.title} ==", ""]
    for row in result.rows:
        for series_pos, index in enumerate(indices):
            fill = _FILLS[series_pos % len(_FILLS)]
            name = str(row[0]) if series_pos == 0 else ""
            value = float(row[index])
            lines.append(
                f"{name:>{label_width}s} "
                f"{result.headers[index]:>{series_width}s} "
                f"{value:7.3f} {bar(value, fill)}"
            )
        lines.append("")
    if show_unit:
        lines.append(f"('|' marks 1.0 — the normalisation baseline)")
    return "\n".join(lines)
