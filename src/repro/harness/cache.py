"""On-disk cache of finished simulation runs.

Simulations are deterministic: the same machine configuration, workload,
scale and seed always produce the same :class:`RunStats`.  That makes a
run a pure function of its parameters, so the harness can persist each
result as a small JSON file and skip the simulation entirely the next
time the identical point is requested — across processes and sessions,
not just within one runner's in-memory memoisation.

Layout: one file per run under the cache directory, named by a sha256
digest of the canonical-JSON key.  The key covers every field of the
:class:`~repro.config.GPUConfig`, the workload name, scale, seed, and
``repro.__version__`` — bumping the package version invalidates every
entry, which is the coarse-but-safe answer to "the simulator's
behaviour changed".  A missing file is an ordinary miss; a file that
*opens* but cannot be parsed back into a :class:`RunStats` is cache
rot, reported through :mod:`warnings` with the offending path before
being re-simulated (the fresh result overwrites it).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import warnings
from typing import Dict

import repro
from repro.config import GPUConfig
from repro.stats.collector import RunStats


def _canonical(value):
    """Reduce a key component to deterministic JSON-friendly values."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def run_key(config: GPUConfig, workload: str, scale: float,
            seed: int) -> str:
    """The sha256 cache key of one simulation point.

    Every config field participates, so changing *any* machine
    parameter — not just the ones a sweep happens to vary — lands on a
    different file.
    """
    payload = {
        "version": repro.__version__,
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "config": {
            f.name: _canonical(getattr(config, f.name))
            for f in dataclasses.fields(config)
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class JsonFileCache:
    """Generic JSON-per-entry store keyed by digest strings.

    Pure storage mechanics, shared by the run cache below and the
    compiled-trace cache in :mod:`repro.workloads`: one ``<key>.json``
    file per entry, atomic writes (temp file + rename) so a crashed or
    interrupted process never leaves a half-written entry, and
    hit/miss counters.  Anything unreadable or unparsable is a miss —
    corruption is reported through :mod:`warnings` with the offending
    path and then overwritten by the fresh result.
    """

    #: label used in corruption warnings ("run-cache", "trace-cache")
    what = "cache"
    #: what happens after a corrupt entry is discarded
    recovery = "regenerating"

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key + ".json")

    def _decode(self, data):
        """Turn the raw JSON payload into the cached object.

        Subclasses override; raising ``ValueError``/``KeyError``/
        ``TypeError`` marks the entry as corrupt.
        """
        return data

    def _encode(self, value):
        """Turn the cached object into a JSON-serializable payload."""
        return value

    def get(self, key: str):
        """The cached value for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            handle = open(path)
        except OSError:
            self.misses += 1
            return None
        try:
            with handle:
                data = json.load(handle)
            value = self._decode(data)
        except (OSError, ValueError, KeyError, TypeError) as error:
            warnings.warn(
                f"corrupt {self.what} entry {path}: "
                f"{type(error).__name__}: {error}; {self.recovery}",
                RuntimeWarning, stacklevel=2)
            self.misses += 1
            return None
        self.hits += 1
        try:
            # refresh the entry's LRU clock (prune evicts by mtime)
            os.utime(path, None)
        except OSError:
            pass
        return value

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no counters).

        Cheaper than :meth:`get` — one ``stat`` instead of a read and
        parse — which matters on the fleet dispatcher's lease path,
        where every granted job is first checked against the shared
        result store.
        """
        return os.path.exists(self._path(key))

    def put_if_absent(self, key: str, value) -> bool:
        """Persist ``value`` unless an entry for ``key`` already exists.

        Returns whether this call wrote.  The check-then-write is not
        atomic across processes, but it does not need to be: entries
        are pure functions of their key, so two racing writers of the
        same key produce identical files and the atomic rename in
        :meth:`put` makes the last one win harmlessly.  What this
        buys is *bookkeeping* — a late result arriving after its job
        was requeued and re-executed elsewhere can tell it was
        redundant.
        """
        if self.contains(key):
            return False
        self.put(key, value)
        return True

    def put(self, key: str, value) -> None:
        """Persist ``value`` under ``key`` (atomic, best-effort)."""
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(self._encode(value), handle,
                              sort_keys=True)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # a read-only or full disk must not fail the experiment
            pass

    def _entries(self):
        """``(mtime, size, path)`` of every entry file, oldest first.

        mtime doubles as the LRU clock: writes stamp it naturally and
        :meth:`get` re-stamps it on every hit.
        """
        entries = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
        entries.sort()
        return entries

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until <= ``max_bytes``.

        A long-lived server writes one file per distinct point forever;
        this is the bound that keeps the cache directory finite.
        Returns ``{"evicted": n, "freed_bytes": b, "bytes": left}``.
        Eviction is best-effort: an entry that vanishes concurrently
        (another process pruning) is simply counted as already gone.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            freed += size
        return {"evicted": evicted, "freed_bytes": freed,
                "bytes": total}

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the on-disk footprint.

        ``entries``/``bytes`` are measured from the directory, so they
        reflect what every process sharing the cache has written, not
        just this handle.
        """
        entries = self._entries()
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(entries),
                "bytes": sum(size for _, size, _ in entries)}


class RunCache(JsonFileCache):
    """JSON-per-run store of :class:`RunStats` keyed by :func:`run_key`."""

    what = "run-cache"
    recovery = "re-simulating"

    def _decode(self, data) -> RunStats:
        return RunStats.from_dict(data)

    def _encode(self, stats: RunStats):
        return stats.to_dict()
