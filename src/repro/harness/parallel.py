"""Process-pool execution of independent simulation points.

Every point of an experiment matrix or sweep is an independent,
deterministic simulation, so a batch of them is embarrassingly
parallel.  :class:`ParallelRunner` keeps the exact
:class:`~repro.harness.runner.ExperimentRunner` surface (``run`` /
``matrix`` / ``baseline`` / ``sweep`` compose unchanged) and overrides
only :meth:`prefetch`: the points a batch will need are simulated
concurrently in worker processes, after which the ordinary memoised
``run`` path finds them already in memory.

Determinism: workers return plain ``RunStats.to_dict()`` payloads and
the parent rebuilds them with :meth:`RunStats.from_dict`, so results
are bit-identical to a sequential run — the simulator itself is
seeded and single-threaded, and result ordering is fixed by the
point list, never by completion order.

``jobs`` defaults to one worker per available CPU core.  ``jobs=1``
(explicit, or the default on a single-core machine) short-circuits to
the in-process sequential path — no process pool, no pickling — which
keeps the class usable (and debuggable) where ``fork``/``spawn`` is
unavailable or unwanted and avoids paying spawn overhead where
parallelism cannot win.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Dict, Iterable, Optional, Tuple

from repro.config import Consistency, Protocol
from repro.gpu.gpu import make_gpu
from repro.harness.progress import RateEstimator
from repro.harness.runner import ExperimentRunner, Point
from repro.sim.backend import backend_name
from repro.stats.collector import RunStats
from repro.workloads import build_workload


class SimulationJobError(RuntimeError):
    """A worker failure annotated with the point that caused it.

    A bare traceback out of a process pool says *what* broke but not
    *which of the 40 submitted points* broke it; this wrapper pins the
    workload, protocol/consistency, scale, seed and preset to the
    failure so a sweep can be re-narrowed to the offending point.

    Built from two positional arguments (message, context dict) only,
    so the default ``Exception`` pickling round-trips it intact across
    the ``fork``/``spawn`` process boundary.
    """

    def __init__(self, message: str, context: Dict) -> None:
        super().__init__(message, context)
        self.context = dict(context)

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.context.items()))
        return f"{self.args[0]} [{detail}]"


def _simulate_point(preset: str, scale: float, seed: int,
                    config_overrides: Tuple, point: Point,
                    trace_cache_dir: Optional[str] = None) -> Dict:
    """Worker entry: simulate one point, return a picklable payload.

    Top-level (not a closure/method) so it pickles under both the
    ``fork`` and ``spawn`` start methods.  Reconstructs the config the
    same way :meth:`ExperimentRunner.base_config` does, so parent and
    worker agree on every parameter.  ``trace_cache_dir`` lets workers
    share the parent's on-disk compiled-trace cache instead of each
    re-generating the workload.

    Any failure is re-raised as :class:`SimulationJobError` carrying
    the point's identity, chained to the original exception.
    """
    from repro.config import GPUConfig

    workload, protocol, consistency, overrides = point
    try:
        factory = getattr(GPUConfig, preset)
        merged = dict(config_overrides)
        merged.update(overrides)
        config = factory(protocol=protocol, consistency=consistency,
                         **merged)
        kernel = build_workload(workload, scale=scale, seed=seed,
                                cache_dir=trace_cache_dir)
        stats = make_gpu(config, record_accesses=False).run(kernel)
        return stats.to_dict()
    except SimulationJobError:
        raise
    except Exception as error:
        context = {
            "workload": workload,
            "protocol": getattr(protocol, "value", protocol),
            "consistency": getattr(consistency, "value", consistency),
            "preset": preset,
            "scale": scale,
            "seed": seed,
        }
        if overrides:
            context["overrides"] = dict(overrides)
        raise SimulationJobError(
            f"{type(error).__name__}: {error}", context) from error


class ParallelRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that batches points over processes.

    Single points still run in-process; only :meth:`prefetch` (called
    by ``matrix``, ``sweep`` and the figure functions with their full
    point sets) fans out.  Cached points — in-memory or on-disk — are
    filtered before any worker is spawned, so a warm cache costs no
    processes at all.
    """

    def __init__(self, jobs: Optional[int] = None, preset: str = "small",
                 scale: float = 0.5, seed: int = 2018,
                 cache_dir: Optional[str] = None,
                 progress: bool = False, db=None,
                 **config_overrides) -> None:
        cores = os.cpu_count() or 1
        if jobs is None:
            # default to the machine: one worker per core, which on a
            # single-core box means the in-process path with no pool,
            # no pickling, and no clamp warning
            jobs = cores
        elif jobs < 1:
            raise ValueError("jobs must be >= 1")
        elif jobs > cores:
            # oversubscription is a measured loss on this workload
            # (0.73x at jobs=4 on a 1-core box), not just a no-op
            warnings.warn(
                f"jobs={jobs} exceeds the {cores} available CPU "
                f"core(s); clamping to {cores}",
                RuntimeWarning, stacklevel=2)
            jobs = cores
        super().__init__(preset=preset, scale=scale, seed=seed,
                         cache_dir=cache_dir, progress=progress,
                         db=db, **config_overrides)
        self.jobs = jobs

    # ------------------------------------------------------------------
    def _missing(self, points: Iterable[Point]) -> list:
        """The deduplicated points not satisfiable from any cache."""
        missing = []
        seen = set()
        for point in points:
            if point in self._cache or point in seen:
                continue
            if self.disk_cache is not None:
                workload, protocol, consistency, overrides = point
                config = self.base_config(protocol, consistency,
                                          **dict(overrides))
                digest = self._disk_key(workload, config)
                stats = self.disk_cache.get(digest)
                if stats is not None:
                    self._cache[point] = stats
                    self._record_run(digest, stats, point, config,
                                     source="runner-cache")
                    continue
            seen.add(point)
            missing.append(point)
        return missing

    def prefetch(self, points: Iterable[Point]) -> None:
        """Simulate the uncached points of a batch concurrently."""
        points = list(points)
        missing = self._missing(points)
        cached = len(points) - len(missing)
        if cached:
            self._heartbeat(f"{cached} of {len(points)} point(s) "
                            f"already cached")
        if not missing:
            return
        if self.jobs == 1 or len(missing) == 1:
            # the sequential base path, which also emits heartbeats
            super().prefetch(missing)
            return

        from concurrent.futures import ProcessPoolExecutor

        started = time.monotonic()
        total = len(missing)
        self._heartbeat(f"simulating {total} point(s) over "
                        f"{self.jobs} worker process(es)")
        overrides_key = tuple(sorted(self.config_overrides.items()))
        estimator = RateEstimator()
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = [
                pool.submit(_simulate_point, self.preset, self.scale,
                            self.seed, overrides_key, point,
                            self.trace_cache_dir)
                for point in missing
            ]
            # iterate in submission order: results land deterministically
            for index, (point, future) in enumerate(
                    zip(missing, futures), start=1):
                stats = RunStats.from_dict(future.result())
                self.simulations_run += 1
                self._cache[point] = stats
                workload, protocol, consistency, overrides = point
                config = self.base_config(protocol, consistency,
                                          **dict(overrides))
                digest = self._disk_key(workload, config)
                if self.disk_cache is not None:
                    self.disk_cache.put(digest, stats)
                # per-point wall time stays in the worker process; the
                # row still records which pool run produced it.  The
                # workers are forked, so the parent's backend
                # resolution (env + any --backend override) is theirs
                self._record_run(digest, stats, point, config,
                                 source="runner-pool",
                                 sim_backend=backend_name())
                estimator.tick()
                self._heartbeat(
                    f"{index}/{total} {self._describe_point(point)} "
                    f"(cycles={stats.cycles}, "
                    f"{time.monotonic() - started:.1f}s elapsed"
                    f"{estimator.suffix(total - index)})")
