"""One function per table/figure of the paper's evaluation.

Every function takes an :class:`ExperimentRunner` and returns an
:class:`ExperimentResult` whose rows mirror the paper's presentation:

=================  ========================================================
``table2``         Table II — absolute execution cycles of BL and TC
``fig12``          Fig. 12 — performance normalised to the no-L1 baseline
``fig13``          Fig. 13 — memory-induced pipeline stalls, normalised
``fig14``          Fig. 14 — G-TSC-RC performance across lease values
``fig15``          Fig. 15 — NoC traffic, normalised
``fig16``          Fig. 16 — total energy, normalised
``fig17``          Fig. 17 — L1 cache energy (absolute joules)
``expiration``     §VI-E — lease-expiration miss reduction
``headline``       the abstract's three headline claims
``ablation_*``     §V design-choice ablations (see DESIGN.md)
=================  ========================================================

The paper normalises *performance* as ``baseline_cycles / cycles``
(bars above 1 are faster than the no-L1 baseline) and traffic/energy
as plain ratios to the baseline (bars below 1 are better).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import (
    CombiningPolicy,
    Consistency,
    LeasePolicy,
    Protocol,
    VisibilityPolicy,
)
from repro.harness.runner import ExperimentRunner, point_of
from repro.harness.tables import ExperimentResult, geomean
from repro.workloads import (
    ALL_NAMES,
    COHERENT_NAMES,
    INDEPENDENT_NAMES,
    MULTIGPU_NAMES,
)

_BARS = ["TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC"]


def _group(name: str) -> str:
    return "coherent" if name in COHERENT_NAMES else "no-coh"


def _prefetch_standard(runner: ExperimentRunner, names,
                       with_l1: bool = False) -> None:
    """Batch the baseline+matrix points every figure loop needs.

    Handing the full point set to the runner up front lets a parallel
    runner simulate them concurrently; a sequential runner just warms
    its memo in the same order the loop would have.
    """
    points = ExperimentRunner.matrix_points(names, baseline=True)
    if with_l1:
        points += [point_of(n, Protocol.NONCOHERENT, Consistency.RC)
                   for n in names if n in INDEPENDENT_NAMES]
    runner.prefetch(points)


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def table2(runner: ExperimentRunner) -> ExperimentResult:
    """Absolute execution cycles of the baseline and TC per benchmark.

    The paper's Table II validates its TC re-implementation against
    the original TC simulator; that comparator is closed to us, so the
    regenerated table reports our BL and TC cycle counts (TC under the
    consistency the paper's TC rows use: TC-Weak/RC).
    """
    result = ExperimentResult(
        "table2",
        "Absolute execution cycles of TC and Baseline (BL)",
        ["benchmark", "group", "BL_cycles", "TC_cycles", "TC/BL"],
        notes=(
            "the paper's 'original simulator' columns require the "
            "closed-source TC/Ruby setup and are not reproducible; "
            "see DESIGN.md"
        ),
    )
    runner.prefetch(
        [point_of(n, Protocol.DISABLED, Consistency.RC)
         for n in ALL_NAMES]
        + [point_of(n, Protocol.TC, Consistency.RC) for n in ALL_NAMES])
    for name in ALL_NAMES:
        bl = runner.baseline(name)
        tc = runner.run(name, Protocol.TC, Consistency.RC)
        result.rows.append([
            name, _group(name), bl.cycles, tc.cycles,
            tc.cycles / bl.cycles,
        ])
    return result


# ---------------------------------------------------------------------------
# Figure 12 — performance
# ---------------------------------------------------------------------------

def fig12(runner: ExperimentRunner) -> ExperimentResult:
    """Normalised performance of every protocol/consistency pair."""
    result = ExperimentResult(
        "fig12",
        "Performance normalised to coherent GPU with L1 disabled "
        "(higher is better)",
        ["benchmark", "group", "W/L1"] + _BARS,
    )
    _prefetch_standard(runner, ALL_NAMES, with_l1=True)
    per_bar: dict = {bar: {} for bar in _BARS}
    for name in ALL_NAMES:
        bl = runner.baseline(name)
        bars = runner.matrix(name)
        row: List = [name, _group(name)]
        if name in INDEPENDENT_NAMES:
            row.append(bl.cycles / runner.with_l1(name).cycles)
        else:
            # W/L1 is incorrect for coherence-requiring benchmarks
            row.append("-")
        for bar in _BARS:
            speedup = bl.cycles / bars[bar].cycles
            per_bar[bar][name] = speedup
            row.append(speedup)
        result.rows.append(row)

    coh = COHERENT_NAMES
    result.summary = {
        "G-TSC-RC over TC-RC (coherent, geomean)": geomean(
            [per_bar["G-TSC-RC"][n] / per_bar["TC-RC"][n] for n in coh]),
        "G-TSC-SC over TC-RC (coherent, geomean)": geomean(
            [per_bar["G-TSC-SC"][n] / per_bar["TC-RC"][n] for n in coh]),
        "G-TSC-RC over TC-SC (coherent, geomean)": geomean(
            [per_bar["G-TSC-RC"][n] / per_bar["TC-SC"][n] for n in coh]),
        "G-TSC RC over SC (coherent, geomean)": geomean(
            [per_bar["G-TSC-RC"][n] / per_bar["G-TSC-SC"][n] for n in coh]),
        "G-TSC RC over SC (all, geomean)": geomean(
            [per_bar["G-TSC-RC"][n] / per_bar["G-TSC-SC"][n]
             for n in ALL_NAMES]),
        "G-TSC-RC overhead vs W/L1 (no-coh, geomean)": geomean(
            [(runner.baseline(n).cycles / runner.with_l1(n).cycles)
             / per_bar["G-TSC-RC"][n] for n in INDEPENDENT_NAMES]),
    }
    return result


# ---------------------------------------------------------------------------
# Figure 13 — memory stalls
# ---------------------------------------------------------------------------

def fig13(runner: ExperimentRunner) -> ExperimentResult:
    """Pipeline stalls due to memory delay, normalised to no-L1."""
    result = ExperimentResult(
        "fig13",
        "Memory-induced pipeline stalls normalised to no-L1 baseline "
        "(lower is better)",
        ["benchmark", "group"] + _BARS,
    )
    _prefetch_standard(runner, ALL_NAMES)
    ratios: dict = {bar: [] for bar in _BARS}
    coh_ratios: dict = {bar: [] for bar in _BARS}
    for name in ALL_NAMES:
        base = max(1, runner.baseline(name).stall_mem_cycles)
        bars = runner.matrix(name)
        row: List = [name, _group(name)]
        for bar in _BARS:
            ratio = bars[bar].stall_mem_cycles / base
            row.append(ratio)
            ratios[bar].append(ratio)
            if name in COHERENT_NAMES:
                coh_ratios[bar].append(ratio)
        result.rows.append(row)
    result.summary = {
        "TC-RC stalls / G-TSC-RC stalls (coherent, geomean)": geomean(
            [t / max(g, 1e-9) for t, g in
             zip(coh_ratios["TC-RC"], coh_ratios["G-TSC-RC"])]),
        "TC-SC stalls / G-TSC-SC stalls (coherent, geomean)": geomean(
            [t / max(g, 1e-9) for t, g in
             zip(coh_ratios["TC-SC"], coh_ratios["G-TSC-SC"])]),
    }
    return result


# ---------------------------------------------------------------------------
# Figure 14 — lease sensitivity of G-TSC
# ---------------------------------------------------------------------------

def fig14(runner: ExperimentRunner,
          leases: Optional[List[int]] = None) -> ExperimentResult:
    """G-TSC-RC performance across the paper's lease range (8-20)."""
    leases = leases or [8, 12, 16, 20]
    result = ExperimentResult(
        "fig14",
        "G-TSC-RC performance with different lease values "
        "(normalised to no-L1; flat = insensitive)",
        ["benchmark"] + [f"lease={v}" for v in leases],
    )
    runner.prefetch(
        [point_of(n, Protocol.DISABLED, Consistency.RC)
         for n in COHERENT_NAMES]
        + [point_of(n, Protocol.GTSC, Consistency.RC, lease=lease)
           for n in COHERENT_NAMES for lease in leases])
    spreads = []
    for name in COHERENT_NAMES:
        bl = runner.baseline(name)
        row: List = [name]
        values = []
        for lease in leases:
            stats = runner.run(name, Protocol.GTSC, Consistency.RC,
                               lease=lease)
            values.append(bl.cycles / stats.cycles)
        row.extend(values)
        spreads.append(max(values) / min(values) - 1.0)
        result.rows.append(row)
    result.summary = {
        "max relative spread across leases": max(spreads),
        "mean relative spread across leases": sum(spreads) / len(spreads),
    }
    return result


# ---------------------------------------------------------------------------
# Figure 15 — NoC traffic
# ---------------------------------------------------------------------------

def fig15(runner: ExperimentRunner) -> ExperimentResult:
    """NoC traffic normalised to the no-L1 baseline."""
    result = ExperimentResult(
        "fig15",
        "NoC traffic normalised to no-L1 baseline (lower is better)",
        ["benchmark", "group"] + _BARS,
    )
    _prefetch_standard(runner, ALL_NAMES)
    coh: dict = {bar: [] for bar in _BARS}
    for name in ALL_NAMES:
        base = max(1, runner.baseline(name).noc_bytes)
        bars = runner.matrix(name)
        row: List = [name, _group(name)]
        for bar in _BARS:
            ratio = bars[bar].noc_bytes / base
            row.append(ratio)
            if name in COHERENT_NAMES:
                coh[bar].append(ratio)
        result.rows.append(row)
    result.summary = {
        "G-TSC-RC traffic reduction vs TC-RC (coherent)":
            1.0 - geomean(coh["G-TSC-RC"]) / geomean(coh["TC-RC"]),
        "G-TSC-SC traffic reduction vs TC-SC (coherent)":
            1.0 - geomean(coh["G-TSC-SC"]) / geomean(coh["TC-SC"]),
    }
    return result


# ---------------------------------------------------------------------------
# Figures 16 & 17 — energy
# ---------------------------------------------------------------------------

def fig16(runner: ExperimentRunner) -> ExperimentResult:
    """Total energy normalised to the no-L1 baseline."""
    result = ExperimentResult(
        "fig16",
        "Total energy normalised to no-L1 baseline (lower is better)",
        ["benchmark", "group"] + _BARS,
    )
    _prefetch_standard(runner, ALL_NAMES)
    coh: dict = {bar: [] for bar in _BARS}
    for name in ALL_NAMES:
        base = runner.baseline(name).total_energy
        bars = runner.matrix(name)
        row: List = [name, _group(name)]
        for bar in _BARS:
            ratio = bars[bar].total_energy / base
            row.append(ratio)
            if name in COHERENT_NAMES:
                coh[bar].append(ratio)
        result.rows.append(row)
    result.summary = {
        "G-TSC-RC energy saving vs TC-RC (coherent)":
            1.0 - geomean(coh["G-TSC-RC"]) / geomean(coh["TC-RC"]),
        "G-TSC-RC energy saving vs baseline (coherent)":
            1.0 - geomean(coh["G-TSC-RC"]),
    }
    return result


def fig16_components(runner: ExperimentRunner) -> ExperimentResult:
    """Section VI-D's component breakdown of the energy saving.

    The paper reports G-TSC saving energy in the L2 (~2%), the NoC
    (~4%) and the rest of the GPU (~5%) versus the baseline, and
    additional margins over TC.  This experiment reports, per
    component, the coherent-set geomean of G-TSC-RC's energy relative
    to the no-L1 baseline and to TC-RC.
    """
    components = ["l1", "l2", "noc", "dram", "core", "static"]
    result = ExperimentResult(
        "fig16-components",
        "Per-component energy of G-TSC-RC relative to BL and TC-RC "
        "(coherent set, geomean; <1 is a saving)",
        ["component", "vs_baseline", "vs_TC-RC"],
    )
    vs_bl: dict = {c: [] for c in components}
    vs_tc: dict = {c: [] for c in components}
    for name in COHERENT_NAMES:
        bl = runner.baseline(name)
        tc = runner.run(name, Protocol.TC, Consistency.RC)
        gtsc = runner.run(name, Protocol.GTSC, Consistency.RC)
        for component in components:
            g = gtsc.energy[component]
            b = bl.energy[component]
            t = tc.energy[component]
            if b > 0:
                vs_bl[component].append(g / b)
            if t > 0:
                vs_tc[component].append(g / t)
    for component in components:
        row = [component]
        # the no-L1 baseline has no L1 energy to compare against
        row.append(geomean(vs_bl[component]) if vs_bl[component]
                   else "-")
        row.append(geomean(vs_tc[component]) if vs_tc[component]
                   else "-")
        result.rows.append(row)
    result.summary = {
        "total energy vs TC-RC (geomean)": geomean([
            runner.run(n, Protocol.GTSC, Consistency.RC).total_energy
            / runner.run(n, Protocol.TC, Consistency.RC).total_energy
            for n in COHERENT_NAMES
        ]),
    }
    return result


def fig17(runner: ExperimentRunner) -> ExperimentResult:
    """Absolute L1 cache energy per protocol (joules).

    The paper reports TC consuming slightly less L1 energy than G-TSC
    (G-TSC probes L1 tags on renewals and keeps lines alive longer).
    """
    result = ExperimentResult(
        "fig17",
        "L1 cache energy in joules (BL has no L1 and is zero)",
        ["benchmark", "group"] + _BARS,
    )
    runner.prefetch(ExperimentRunner.matrix_points(ALL_NAMES))
    for name in ALL_NAMES:
        bars = runner.matrix(name)
        row: List = [name, _group(name)]
        for bar in _BARS:
            row.append(bars[bar].energy["l1"])
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# §VI-E — expiration misses
# ---------------------------------------------------------------------------

def expiration(runner: ExperimentRunner) -> ExperimentResult:
    """Misses due to lease expiration: G-TSC vs TC (paper: ~48% fewer).

    Logical time rolls slower than physical time for read-mostly data,
    so G-TSC sees far fewer tag-match-but-expired misses.
    """
    result = ExperimentResult(
        "expiration",
        "L1 misses due to lease expiration (coherent benchmarks)",
        ["benchmark", "TC-RC", "G-TSC-RC", "reduction"],
        notes=(
            "the paper's ~48% reduction is about kernels with more "
            "loads than stores (its own framing): logical time only "
            "advances on writes, so the read-mostly subset is where "
            "the mechanism applies; store-heavy kernels roll logical "
            "time as fast as physical"
        ),
    )
    runner.prefetch(
        [point_of(n, p, Consistency.RC) for n in COHERENT_NAMES
         for p in (Protocol.TC, Protocol.GTSC)])
    read_mostly = {"BH", "VPR", "BFS"}
    reductions = []
    rm_reductions = []
    for name in COHERENT_NAMES:
        tc = runner.run(name, Protocol.TC, Consistency.RC)
        gtsc = runner.run(name, Protocol.GTSC, Consistency.RC)
        tc_misses = tc.counter("l1_expired_miss")
        g_misses = gtsc.counter("l1_expired_miss")
        reduction = 1.0 - g_misses / max(1, tc_misses)
        reductions.append(reduction)
        if name in read_mostly:
            rm_reductions.append(reduction)
        result.rows.append([name, tc_misses, g_misses, reduction])
    result.summary = {
        "mean expiration-miss reduction": sum(reductions) / len(reductions),
        "mean reduction, read-mostly (BH/VPR/BFS)":
            sum(rm_reductions) / len(rm_reductions),
    }
    return result


# ---------------------------------------------------------------------------
# headline claims
# ---------------------------------------------------------------------------

def headline(runner: ExperimentRunner) -> ExperimentResult:
    """The abstract's three claims, computed from the Fig. 12/15 runs.

    Paper values: +38% (G-TSC-RC over TC-RC), +26% (G-TSC-SC over
    TC-RC, coherent set), -20% memory traffic.  The reproduction
    targets the *direction and rough magnitude*, not the exact
    percentages (see EXPERIMENTS.md).
    """
    perf = fig12(runner)
    traffic = fig15(runner)
    result = ExperimentResult(
        "headline",
        "Headline claims (paper: +38%, +26%, -20%)",
        ["claim", "paper", "reproduced"],
    )
    result.rows.append([
        "G-TSC-RC speedup over TC-RC (coherent)", 0.38,
        perf.summary["G-TSC-RC over TC-RC (coherent, geomean)"] - 1.0,
    ])
    result.rows.append([
        "G-TSC-SC speedup over TC-RC (coherent)", 0.26,
        perf.summary["G-TSC-SC over TC-RC (coherent, geomean)"] - 1.0,
    ])
    result.rows.append([
        "traffic reduction vs TC-RC (coherent)", 0.20,
        traffic.summary["G-TSC-RC traffic reduction vs TC-RC (coherent)"],
    ])
    return result


# ---------------------------------------------------------------------------
# §V ablations
# ---------------------------------------------------------------------------

def ablation_visibility(runner: ExperimentRunner) -> ExperimentResult:
    """Update visibility (§V-A): delay-until-ack vs old-copy buffer.

    The paper found option 1 (delay) costs almost nothing, removing
    the justification for option 2's extra hardware.
    """
    result = ExperimentResult(
        "ablation-visibility",
        "G-TSC-RC cycles: delay-until-ack vs old-copy buffer",
        ["benchmark", "delay", "old_copy", "old_copy/delay"],
    )
    ratios = []
    for name in COHERENT_NAMES:
        delay = runner.run(name, Protocol.GTSC, Consistency.RC,
                           visibility=VisibilityPolicy.DELAY)
        old = runner.run(name, Protocol.GTSC, Consistency.RC,
                         visibility=VisibilityPolicy.OLD_COPY)
        ratio = old.cycles / delay.cycles
        ratios.append(ratio)
        result.rows.append([name, delay.cycles, old.cycles, ratio])
    result.summary = {"geomean old_copy/delay": geomean(ratios)}
    return result


def ablation_combining(runner: ExperimentRunner) -> ExperimentResult:
    """Request combining (§V-B): MSHR-combine vs forward-all.

    Forward-all raises request counts 12-35% in the paper; combining
    saves bandwidth at the cost of occasional extra renewals.
    """
    result = ExperimentResult(
        "ablation-combining",
        "G-TSC-RC: MSHR combining vs forwarding all requests",
        ["benchmark", "mshr_cycles", "fwd_cycles",
         "mshr_msgs", "fwd_msgs", "msg_increase"],
    )
    increases = []
    for name in COHERENT_NAMES:
        mshr = runner.run(name, Protocol.GTSC, Consistency.RC,
                          combining=CombiningPolicy.MSHR)
        fwd = runner.run(name, Protocol.GTSC, Consistency.RC,
                         combining=CombiningPolicy.FORWARD_ALL)
        m_msgs = mshr.counter("noc_messages")
        f_msgs = fwd.counter("noc_messages")
        increase = f_msgs / max(1, m_msgs) - 1.0
        increases.append(increase)
        result.rows.append([name, mshr.cycles, fwd.cycles,
                            m_msgs, f_msgs, increase])
    result.summary = {
        "mean request increase with forward-all":
            sum(increases) / len(increases),
    }
    return result


def ablation_inclusion(runner: ExperimentRunner) -> ExperimentResult:
    """Cache inclusion (§V-C): G-TSC with and without inclusive L2.

    G-TSC does not need inclusion; forcing it adds recall traffic and
    L1 back-invalidations for no benefit.
    """
    result = ExperimentResult(
        "ablation-inclusion",
        "G-TSC-RC: non-inclusive vs inclusive L2",
        ["benchmark", "noninc_cycles", "inc_cycles",
         "noninc_bytes", "inc_bytes", "recalls"],
    )
    for name in COHERENT_NAMES:
        noninc = runner.run(name, Protocol.GTSC, Consistency.RC,
                            l2_inclusive=False)
        inc = runner.run(name, Protocol.GTSC, Consistency.RC,
                         l2_inclusive=True)
        result.rows.append([
            name, noninc.cycles, inc.cycles,
            noninc.noc_bytes, inc.noc_bytes,
            inc.counter("l1_back_invalidations"),
        ])
    return result


def mesi_motivation(runner: ExperimentRunner) -> ExperimentResult:
    """Section II-C, measured: a conventional MSI directory vs G-TSC.

    The paper *argues* that invalidation-based directory protocols are
    ill-suited for GPUs (invalidation/ack traffic on shared writes,
    recall traffic on directory evictions, sharer storage); this
    experiment runs exactly such a protocol and reports its
    invalidation counts and traffic next to G-TSC's on the coherent
    benchmarks.
    """
    result = ExperimentResult(
        "mesi-motivation",
        "Conventional directory (MSI) vs G-TSC on the coherent set "
        "(performance normalised to no-L1, higher is better)",
        ["benchmark", "MSI_perf", "G-TSC_perf", "MSI_bytes/GTSC_bytes",
         "invalidations", "recalls"],
        notes=(
            "MSI keeps one real advantage — repeated private writes "
            "hit locally in M — so write-local benchmarks can favour "
            "it; the sharing-heavy ones pay the §II-C costs"
        ),
    )
    runner.prefetch(
        [point_of(n, p, Consistency.RC) for n in COHERENT_NAMES
         for p in (Protocol.DISABLED, Protocol.MESI, Protocol.GTSC)])
    perf_ratios = []
    byte_ratios = []
    for name in COHERENT_NAMES:
        bl = runner.baseline(name)
        mesi = runner.run(name, Protocol.MESI, Consistency.RC)
        gtsc = runner.run(name, Protocol.GTSC, Consistency.RC)
        mesi_perf = bl.cycles / mesi.cycles
        gtsc_perf = bl.cycles / gtsc.cycles
        byte_ratio = mesi.noc_bytes / max(1, gtsc.noc_bytes)
        perf_ratios.append(gtsc_perf / mesi_perf)
        byte_ratios.append(byte_ratio)
        result.rows.append([
            name, mesi_perf, gtsc_perf, byte_ratio,
            mesi.counter("dir_invalidations")
            + mesi.counter("dir_recall_invalidations"),
            mesi.counter("dir_recalls"),
        ])
    config = runner.base_config(Protocol.MESI, Consistency.RC)
    result.summary = {
        "G-TSC over MSI (coherent, geomean)": geomean(perf_ratios),
        "MSI/G-TSC traffic (geomean)": geomean(byte_ratios),
        # §II-C's storage argument: a full-map directory needs one
        # sharer bit per SM per L2 line (plus owner/state), versus
        # G-TSC's two 16-bit timestamps — and the directory also needs
        # transaction buffering the paper sizes at up to 28% of L2
        "MSI sharer bits per L2 line": float(config.num_sms + 8),
        "G-TSC timestamp bits per L2 line": 32.0,
    }
    return result


def cc_congestion(runner: ExperimentRunner) -> ExperimentResult:
    """The Section VI-B CC anomaly: why SC can rival RC under G-TSC.

    SC's one-outstanding-request-per-warp rule throttles injection, so
    the NoC sees a lower request rate and lower per-message latency
    (the paper measured 29% lower latency from a 14% lower request
    rate on CC, enough to make SC win outright there).
    """
    result = ExperimentResult(
        "cc-congestion",
        "G-TSC on memory-intensive benchmarks: SC throttling vs RC "
        "congestion",
        ["benchmark", "sc_cycles", "rc_cycles", "sc_msg_rate",
         "rc_msg_rate", "sc_noc_latency", "rc_noc_latency"],
        notes=(
            "the paper's full-size NoC saturates harder than this "
            "model's, where the throttling effect shows in rate and "
            "latency but rarely flips the overall winner"
        ),
    )
    for name in ("CC", "DLP", "VPR"):
        sc = runner.run(name, Protocol.GTSC, Consistency.SC)
        rc = runner.run(name, Protocol.GTSC, Consistency.RC)

        def rate(stats):
            return stats.counter("noc_messages") / max(1, stats.cycles)

        def latency(stats):
            return (stats.counter("noc_latency_sum")
                    / max(1, stats.counter("noc_messages")))

        result.rows.append([name, sc.cycles, rc.cycles, rate(sc),
                            rate(rc), latency(sc), latency(rc)])
    sc_lat = [row[5] for row in result.rows]
    rc_lat = [row[6] for row in result.rows]
    result.summary = {
        "mean SC/RC NoC-latency ratio":
            sum(s / r for s, r in zip(sc_lat, rc_lat)) / len(sc_lat),
    }
    return result


def traffic_breakdown(runner: ExperimentRunner) -> ExperimentResult:
    """NoC bytes by message class — the mechanism behind Figure 15.

    G-TSC's renewal responses carry no data, so its control share of
    traffic rises while total bytes fall relative to TC, whose every
    refetch ships a full line.
    """
    result = ExperimentResult(
        "traffic-breakdown",
        "NoC bytes by class (RC): G-TSC vs TC",
        ["benchmark", "gtsc_ctrl", "gtsc_data", "gtsc_renewals",
         "tc_ctrl", "tc_data", "gtsc/tc bytes"],
    )
    runner.prefetch(
        [point_of(n, p, Consistency.RC) for n in COHERENT_NAMES
         for p in (Protocol.GTSC, Protocol.TC)])
    for name in COHERENT_NAMES:
        gtsc = runner.run(name, Protocol.GTSC, Consistency.RC)
        tc = runner.run(name, Protocol.TC, Consistency.RC)
        result.rows.append([
            name,
            gtsc.counter("noc_bytes_ctrl"),
            gtsc.counter("noc_bytes_data"),
            gtsc.counter("l2_renewals"),
            tc.counter("noc_bytes_ctrl"),
            tc.counter("noc_bytes_data"),
            gtsc.noc_bytes / max(1, tc.noc_bytes),
        ])
    total_g = sum(row[6] for row in result.rows) / len(result.rows)
    result.summary = {"mean G-TSC/TC byte ratio": total_g}
    return result


def ablation_adaptive_lease(runner: ExperimentRunner) -> ExperimentResult:
    """Extension: Tardis-2.0-style adaptive leases vs the paper's
    fixed lease.

    Renewal streaks earn exponentially longer leases (capped), so
    read-mostly lines stop paying renewal round trips; a store resets
    the streak, keeping write latency unchanged.
    """
    result = ExperimentResult(
        "ablation-adaptive-lease",
        "G-TSC-RC: fixed vs adaptive lease (extension)",
        ["benchmark", "fixed_cycles", "adaptive_cycles",
         "fixed_renewals", "adaptive_renewals", "renewal_reduction"],
    )
    reductions = []
    for name in COHERENT_NAMES:
        fixed = runner.run(name, Protocol.GTSC, Consistency.RC,
                           lease_policy=LeasePolicy.FIXED)
        adaptive = runner.run(name, Protocol.GTSC, Consistency.RC,
                              lease_policy=LeasePolicy.ADAPTIVE)
        f_renewals = fixed.counter("l2_renewals")
        a_renewals = adaptive.counter("l2_renewals")
        reduction = 1.0 - a_renewals / max(1, f_renewals)
        reductions.append(reduction)
        result.rows.append([name, fixed.cycles, adaptive.cycles,
                            f_renewals, a_renewals, reduction])
    result.summary = {
        "mean renewal reduction": sum(reductions) / len(reductions),
    }
    return result


def ablation_tc_lease(runner: ExperimentRunner,
                      leases: Optional[List[int]] = None,
                      workloads: Optional[List[str]] = None,
                      ) -> ExperimentResult:
    """TC lease sensitivity (§II-D3) contrasted with G-TSC's flatness.

    TC's physical lease trades expiration misses (short leases)
    against write stalls (long leases); G-TSC's logical lease has no
    such physical meaning and stays flat (Fig. 14).
    """
    leases = leases or [25, 50, 100, 200, 400, 800]
    workloads = workloads or ["DLP", "STN"]
    result = ExperimentResult(
        "ablation-tc-lease",
        "TC-RC cycles across physical lease values (normalised to "
        "the best lease per benchmark)",
        ["benchmark"] + [f"lease={v}" for v in leases],
    )
    runner.prefetch(
        [point_of(n, Protocol.DISABLED, Consistency.RC)
         for n in COHERENT_NAMES]
        + [point_of(n, Protocol.GTSC, Consistency.RC, lease=lease)
           for n in COHERENT_NAMES for lease in leases])
    spreads = []
    for name in workloads:
        cycles = [
            runner.run(name, Protocol.TC, Consistency.RC,
                       tc_lease=lease).cycles
            for lease in leases
        ]
        best = min(cycles)
        result.rows.append([name] + [c / best for c in cycles])
        spreads.append(max(cycles) / best - 1.0)
    result.summary = {"max TC slowdown from a bad lease": max(spreads)}
    return result


# ---------------------------------------------------------------------------
# Multi-GPU scale-out (repro.multigpu; HALCONE-style comparison)
# ---------------------------------------------------------------------------

def multigpu(runner: ExperimentRunner,
             gpu_counts: Optional[List[int]] = None,
             workloads: Optional[List[str]] = None,
             ) -> ExperimentResult:
    """Cross-GPU coherence comparison: G-TSC vs TC vs MESI at scale.

    Not a figure of the paper — the scale-out question HALCONE
    (arXiv 2007.04292) asks of timestamp coherence, answered with this
    repo's protocols on the inter-GPU sharing workloads
    (:mod:`repro.workloads.multigpu`).  Every protocol runs the same
    trace at 1/2/4/8 GPUs over the shared mem_ts home directory; the
    table reports absolute cycles per GPU count plus the inter-GPU
    link traffic at the largest count, where the protocols' remote
    re-validation strategies (data-less renewals vs full refills vs
    invalidation chatter) diverge hardest.
    """
    gpu_counts = list(gpu_counts or [1, 2, 4, 8])
    workloads = list(workloads or MULTIGPU_NAMES)
    protos = [("G-TSC", Protocol.GTSC), ("TC", Protocol.TC),
              ("MESI", Protocol.MESI)]
    result = ExperimentResult(
        "multigpu",
        "Execution cycles by GPU count (RC issue rules) and interlink "
        "bytes at the largest count",
        (["benchmark", "config"] + [f"{n}GPU" for n in gpu_counts]
         + ["interlink_KB"]),
        notes=(
            "n_gpus=1 is the paper's single-GPU machine (no interlink); "
            "larger counts interleave L2 homes across GPUs so every "
            "neighbour-sharing access crosses the link"
        ),
    )
    runner.prefetch(
        [point_of(n, proto, Consistency.RC, n_gpus=g)
         for n in workloads for _, proto in protos for g in gpu_counts])
    top = max(gpu_counts)
    per_proto: dict = {label: {} for label, _ in protos}
    link: dict = {label: {} for label, _ in protos}
    for name in workloads:
        for label, proto in protos:
            cycles = []
            for count in gpu_counts:
                stats = runner.run(name, proto, Consistency.RC,
                                   n_gpus=count)
                cycles.append(stats.cycles)
                if count == top:
                    per_proto[label][name] = stats.cycles
                    link[label][name] = stats.counter("interlink_bytes")
            result.rows.append(
                [name, label] + cycles
                + [link[label][name] / 1024.0])
    result.summary = {
        f"G-TSC cycles vs TC at {top} GPUs (geomean)": geomean(
            [per_proto["G-TSC"][n] / per_proto["TC"][n]
             for n in workloads]),
        f"G-TSC cycles vs MESI at {top} GPUs (geomean)": geomean(
            [per_proto["G-TSC"][n] / per_proto["MESI"][n]
             for n in workloads]),
        f"G-TSC interlink bytes vs TC at {top} GPUs (geomean)": geomean(
            [(link["G-TSC"][n] or 1) / (link["TC"][n] or 1)
             for n in workloads]),
    }
    return result
