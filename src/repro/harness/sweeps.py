"""Generic parameter sweeps.

The figure functions in :mod:`repro.harness.experiments` are
fixed-shape by design (they mirror the paper).  For exploration beyond
the paper — "how does G-TSC behave as I scale the L1?" — this module
provides a small sweep API::

    from repro.harness.sweeps import sweep

    series = sweep(runner, workloads=["BFS", "STN"],
                   protocol=Protocol.GTSC, consistency=Consistency.RC,
                   parameter="l1_size", values=[4096, 8192, 16384])
    print(series.table())

Every point reuses the runner's memoisation, so overlapping sweeps are
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import Consistency, Protocol
from repro.harness.runner import ExperimentRunner
from repro.stats.collector import RunStats

# metric extractors available by name
METRICS: Dict[str, Callable[[RunStats], float]] = {
    "cycles": lambda s: float(s.cycles),
    "noc_bytes": lambda s: float(s.noc_bytes),
    "l1_hit_rate": lambda s: s.l1_hit_rate,
    "stall_mem_cycles": lambda s: float(s.stall_mem_cycles),
    "energy": lambda s: s.total_energy,
    "dram_reads": lambda s: float(s.counter("dram_reads")),
}


@dataclass
class SweepSeries:
    """Results of one sweep: metric[workload][value]."""

    parameter: str
    values: List
    workloads: List[str]
    metric: str
    data: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, workload: str) -> List[float]:
        return self.data[workload]

    def best_value(self, workload: str,
                   minimise: bool = True) -> object:
        """The swept value optimising the metric for one workload."""
        series = self.data[workload]
        pick = min if minimise else max
        index = series.index(pick(series))
        return self.values[index]

    def table(self) -> str:
        """Aligned text table: one row per workload."""
        header = [f"{self.parameter}={v}" for v in self.values]
        width = max(len(h) for h in header + ["workload"]) + 2
        lines = [f"sweep of {self.parameter} ({self.metric}):"]
        lines.append("".join(h.rjust(width) for h in ["workload"] + header))
        for workload in self.workloads:
            cells = [workload] + [f"{v:.4g}" for v in self.data[workload]]
            lines.append("".join(c.rjust(width) for c in cells))
        return "\n".join(lines)


def sweep(runner: ExperimentRunner, workloads: Sequence[str],
          parameter: str, values: Sequence,
          protocol: Protocol = Protocol.GTSC,
          consistency: Consistency = Consistency.RC,
          metric: str = "cycles",
          extract: Optional[Callable[[RunStats], float]] = None,
          ) -> SweepSeries:
    """Run ``workloads`` across ``values`` of one config ``parameter``.

    ``metric`` names a built-in extractor (see :data:`METRICS`);
    ``extract`` overrides it with a custom callable.
    """
    if extract is None:
        try:
            extract = METRICS[metric]
        except KeyError:
            known = ", ".join(sorted(METRICS))
            raise KeyError(
                f"unknown metric {metric!r}; known: {known}") from None
    result = SweepSeries(parameter=parameter, values=list(values),
                         workloads=list(workloads), metric=metric)
    # hand the full grid to the runner first: a parallel runner
    # simulates the uncached points concurrently, a sequential one
    # just warms its memo in order
    from repro.harness.runner import point_of
    runner.prefetch([
        point_of(workload, protocol, consistency, **{parameter: value})
        for workload in workloads for value in values
    ])
    for workload in workloads:
        series = []
        for value in values:
            stats = runner.run(workload, protocol, consistency,
                               **{parameter: value})
            series.append(extract(stats))
        result.data[workload] = series
    return result
