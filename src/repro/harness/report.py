"""EXPERIMENTS.md generator: paper-vs-measured for every experiment.

:func:`build_report` runs the complete experiment set on one runner
and renders a markdown document recording, per table/figure, what the
paper reports and what this reproduction measured.  The checked-in
EXPERIMENTS.md is produced by::

    python -m repro.cli report --output EXPERIMENTS.md
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.harness import experiments
from repro.harness.runner import ExperimentRunner
from repro.harness.tables import ExperimentResult, format_result


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for one experiment, in prose."""

    experiment_id: str
    title: str
    paper_says: str
    shape_target: str
    fn: Callable[[ExperimentRunner], ExperimentResult]


EXPECTATIONS: List[PaperExpectation] = [
    PaperExpectation(
        "table2", "Table II — absolute execution cycles of TC and BL",
        "BL and TC cycle counts per benchmark, validating the authors' "
        "TC re-implementation against the original TC simulator "
        "(e.g. KM is the longest at ~28.7M BL cycles; BFS is where TC "
        "regresses hardest, 2.32M vs 0.79M BL).",
        "TC regresses most on the irregular coherent benchmarks "
        "(BFS-like) and is near-neutral on compute-bound ones "
        "(CCP/HS); absolute counts are machine-scale-dependent.",
        experiments.table2,
    ),
    PaperExpectation(
        "fig12", "Figure 12 — performance, normalised to no-L1",
        "G-TSC outperforms TC by 38% with RC; G-TSC-SC beats TC-RC by "
        "26% on the coherence benchmarks; the RC/SC gap under G-TSC is "
        "~12% (coherent) and ~9% overall; G-TSC's overhead vs the "
        "non-coherent L1 is ~11% on the second group; CC is the one "
        "benchmark where SC can beat RC (NoC congestion).",
        "same winners, same orderings, small G-TSC SC/RC gap, "
        "near-equal bars for CCP/HS/KM.",
        experiments.fig12,
    ),
    PaperExpectation(
        "fig13", "Figure 13 — memory-induced pipeline stalls",
        "TC encounters ~45% more stalls than G-TSC on the coherent "
        "set and over 1.4x for the second set.",
        "TC stall ratio > G-TSC at both consistency levels.",
        experiments.fig13,
    ),
    PaperExpectation(
        "fig14", "Figure 14 — G-TSC-RC lease sensitivity",
        "performance unchanged across leases 8-20.",
        "flat series; in this model the flatness is exact because "
        "logical timestamps scale affinely with the lease.",
        experiments.fig14,
    ),
    PaperExpectation(
        "fig15", "Figure 15 — NoC traffic, normalised to no-L1",
        "G-TSC reduces traffic by 20% vs TC with RC and 15.7% with SC "
        "on the coherent set; the second group shows almost no RC/SC "
        "difference.",
        "double-digit traffic reduction from data-less renewals.",
        experiments.fig15,
    ),
    PaperExpectation(
        "fig16", "Figure 16 — total energy, normalised to no-L1",
        "G-TSC consumes ~11% less total energy than TC with RC on the "
        "coherent set (2% L2, 4% NoC, 5% rest vs baseline).",
        "G-TSC below TC; savings driven by runtime and NoC bytes.",
        experiments.fig16,
    ),
    PaperExpectation(
        "fig16-components",
        "Section VI-D — per-component energy breakdown",
        "G-TSC reduces L2 energy by 2%, NoC by 4% and the remaining "
        "GPU components by 5% vs the baseline, with further margins "
        "over TC (1% L2, 3% NoC, 5% rest).",
        "G-TSC at or below TC in every component; NoC and "
        "runtime-driven (static/core) components carry the saving.",
        experiments.fig16_components,
    ),
    PaperExpectation(
        "fig17", "Figure 17 — L1 cache energy (joules)",
        "TC consumes slightly less L1 energy than G-TSC.",
        "G-TSC's L1 works at least as hard as TC's (more hits and "
        "renewal probes) even though G-TSC wins on total energy.",
        experiments.fig17,
    ),
    PaperExpectation(
        "expiration", "Section VI-E — lease-expiration misses",
        "~48% fewer expiration misses under G-TSC, attributed to "
        "kernels with more loads than stores (logical time rolls "
        "slower than physical).",
        "large reductions on the read-mostly benchmarks (BH/VPR/BFS); "
        "store-heavy synthetic kernels advance logical time as fast "
        "as physical and can go the other way.",
        experiments.expiration,
    ),
    PaperExpectation(
        "headline", "Headline claims (abstract)",
        "+38% over TC-RC, +26% for G-TSC-SC over TC-RC, -20% traffic.",
        "all three signs reproduced at comparable magnitude.",
        experiments.headline,
    ),
    PaperExpectation(
        "ablation-visibility", "Section V-A — update visibility",
        "option 1 (delay accesses until ack) performs on par with the "
        "old-copy buffer, so the hardware for option 2 is unjustified.",
        "delay and old-copy within a few percent of each other.",
        experiments.ablation_visibility,
    ),
    PaperExpectation(
        "ablation-combining", "Section V-B — request combining",
        "forwarding all requests raises memory request counts by "
        "12-35%; the paper keeps waiters in the MSHR and renews.",
        "forward-all sends measurably more messages.",
        experiments.ablation_combining,
    ),
    PaperExpectation(
        "ablation-inclusion", "Section V-C — cache inclusion",
        "timestamp ordering lets G-TSC keep the GPU-standard "
        "non-inclusive L2; TC must force inclusion.",
        "forcing inclusion adds recall traffic and no performance.",
        experiments.ablation_inclusion,
    ),
    PaperExpectation(
        "mesi-motivation",
        "Section II-C — conventional directory protocols, measured",
        "the paper argues (citing prior work) that invalidation-based "
        "protocols are ill-suited for GPUs: invalidation and recall "
        "traffic, plus storage up to 28% of L2 for worst-case "
        "transaction buffering.",
        "a real MSI directory implementation loses to G-TSC on the "
        "sharing-heavy coherent benchmarks and ships more bytes; its "
        "write-back locality can still win on write-private kernels "
        "(BH), which keeps the comparison honest.",
        experiments.mesi_motivation,
    ),
    PaperExpectation(
        "cc-congestion", "Section VI-B — the CC anomaly (SC vs RC)",
        "on CC, G-TSC-SC beats G-TSC-RC: SC's single outstanding "
        "request per warp cuts the request rate by 14% and average "
        "NoC latency by 29%.",
        "SC shows a lower injection rate and lower per-message "
        "latency than RC on the memory-intensive benchmarks.",
        experiments.cc_congestion,
    ),
    PaperExpectation(
        "traffic-breakdown", "Traffic breakdown (Fig. 15 mechanism)",
        "renewal responses carry no data (Table I), which is where "
        "the 20% traffic saving comes from.",
        "G-TSC shifts bytes from the data class to the (small) "
        "control class relative to TC.",
        experiments.traffic_breakdown,
    ),
    PaperExpectation(
        "ablation-adaptive-lease",
        "Extension — adaptive leases (Tardis 2.0-style)",
        "not in the paper; its related-work section cites Tardis 2.0's "
        "optimized lease policies as the natural follow-on.",
        "renewal traffic drops on read-mostly benchmarks at no "
        "performance cost.",
        experiments.ablation_adaptive_lease,
    ),
    PaperExpectation(
        "multigpu", "Extension — multi-GPU scale-out (HALCONE-style)",
        "not in the paper; HALCONE (arXiv 2007.04292) extends "
        "timestamp coherence across GPUs with a shared memory "
        "timestamp home and shows it scales without invalidation "
        "traffic.",
        "all three protocols stay correct at 2-8 GPUs; G-TSC ships "
        "fewer interlink bytes than MESI's invalidation chatter on "
        "the sharing-heavy exchanges, and its cycles scale no worse "
        "than TC's as remote leases renew data-lessly.",
        experiments.multigpu,
    ),
    PaperExpectation(
        "ablation-tc-lease", "Section II-D3 — TC lease sensitivity",
        "TC performance is sensitive to the lease period; a suitable "
        "period is hard to pick.",
        "a clear optimum exists and bad leases cost double-digit "
        "slowdowns — the contrast with Figure 14.",
        experiments.ablation_tc_lease,
    ),
]


def build_report(runner: ExperimentRunner) -> str:
    """Run every experiment and render the markdown report."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.cli report`.",
        "",
        f"Machine preset: `{runner.preset}`, workload scale "
        f"{runner.scale}, seed {runner.seed}.",
        "",
        "Absolute numbers are not comparable to the paper's (its "
        "substrate is GPGPU-Sim running CUDA binaries on a full-size "
        "GPU; ours is a trace-driven model on synthetic workloads — "
        "see DESIGN.md).  What is compared is the *shape*: who wins, "
        "by roughly what factor, and where the crossovers fall.",
        "",
    ]
    for expectation in EXPECTATIONS:
        result = expectation.fn(runner)
        lines.append(f"## {expectation.title}")
        lines.append("")
        lines.append(f"**Paper:** {expectation.paper_says}")
        lines.append("")
        lines.append(f"**Shape target:** {expectation.shape_target}")
        lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append("```")
        lines.append(format_result(result))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
