"""Shared machinery for running experiment sweeps.

An :class:`ExperimentRunner` owns the machine preset, workload scale
and seed, and memoises finished runs, so experiments that share
baselines (every figure normalises against the no-L1 BL run) reuse
them instead of re-simulating.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import GPU
from repro.stats.collector import RunStats
from repro.workloads import build_workload


class ExperimentRunner:
    """Runs (workload x configuration) points with memoisation."""

    def __init__(self, preset: str = "small", scale: float = 0.5,
                 seed: int = 2018, **config_overrides) -> None:
        if preset not in ("small", "paper", "tiny"):
            raise ValueError(f"unknown preset {preset!r}")
        self.preset = preset
        self.scale = scale
        self.seed = seed
        self.config_overrides = dict(config_overrides)
        self._cache: Dict[Tuple, RunStats] = {}

    # ------------------------------------------------------------------
    def base_config(self, protocol: Protocol, consistency: Consistency,
                    **overrides) -> GPUConfig:
        """The runner's machine with one protocol/consistency choice."""
        factory = getattr(GPUConfig, self.preset)
        merged = dict(self.config_overrides)
        merged.update(overrides)
        return factory(protocol=protocol, consistency=consistency,
                       **merged)

    def run(self, workload: str, protocol: Protocol,
            consistency: Consistency, **overrides) -> RunStats:
        """Simulate one point, memoised on all of its parameters."""
        key = (workload, protocol, consistency,
               tuple(sorted(overrides.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self.base_config(protocol, consistency, **overrides)
        kernel = build_workload(workload, scale=self.scale, seed=self.seed)
        stats = GPU(config, record_accesses=False).run(kernel)
        self._cache[key] = stats
        return stats

    # -- the runs every figure needs -------------------------------------------
    def baseline(self, workload: str) -> RunStats:
        """The no-L1 coherent baseline (BL) all figures normalise to.

        BL turns the L1 off, so the consistency model reduces to the
        issue rules; the paper runs it once per benchmark.  RC issue
        rules are used (matching TC-Weak's baseline in the original TC
        work).
        """
        return self.run(workload, Protocol.DISABLED, Consistency.RC)

    def matrix(self, workload: str) -> Dict[str, RunStats]:
        """The four protocol/consistency bars of Figures 12-16."""
        return {
            "TC-SC": self.run(workload, Protocol.TC, Consistency.SC),
            "TC-RC": self.run(workload, Protocol.TC, Consistency.RC),
            "G-TSC-SC": self.run(workload, Protocol.GTSC, Consistency.SC),
            "G-TSC-RC": self.run(workload, Protocol.GTSC, Consistency.RC),
        }

    def with_l1(self, workload: str) -> RunStats:
        """The non-coherent "Baseline W/L1" bar (second group only)."""
        return self.run(workload, Protocol.NONCOHERENT, Consistency.RC)
