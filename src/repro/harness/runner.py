"""Shared machinery for running experiment sweeps.

An :class:`ExperimentRunner` owns the machine preset, workload scale
and seed, and memoises finished runs, so experiments that share
baselines (every figure normalises against the no-L1 BL run) reuse
them instead of re-simulating.

Two optional accelerators sit on top of the in-memory memo:

* a persistent on-disk cache (``cache_dir=...``) that survives across
  processes — see :mod:`repro.harness.cache`;
* a process-pool batch path (:class:`repro.harness.parallel.ParallelRunner`)
  that overrides :meth:`prefetch` to simulate independent points
  concurrently.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from typing import Dict, Iterable, Optional, Tuple

from repro.config import Consistency, GPUConfig, Protocol
from repro.gpu.gpu import make_gpu
from repro.harness.cache import RunCache, _canonical, run_key
from repro.harness.progress import RateEstimator
from repro.stats.collector import RunStats
from repro.trace.compiled import CompiledKernel, compile_kernel
from repro.workloads import build_workload

# one simulation point: (workload, protocol, consistency, overrides)
Point = Tuple[str, Protocol, Consistency, Tuple]


def point_of(workload: str, protocol: Protocol,
             consistency: Consistency, **overrides) -> Point:
    """Normalise one simulation point into a hashable key."""
    return (workload, protocol, consistency,
            tuple(sorted(overrides.items())))


class ExperimentRunner:
    """Runs (workload x configuration) points with memoisation."""

    def __init__(self, preset: str = "small", scale: float = 0.5,
                 seed: int = 2018, cache_dir: Optional[str] = None,
                 progress: bool = False, db=None,
                 **config_overrides) -> None:
        if preset not in ("small", "paper", "tiny"):
            raise ValueError(f"unknown preset {preset!r}")
        self.preset = preset
        self.scale = scale
        self.seed = seed
        self.config_overrides = dict(config_overrides)
        self._cache: Dict[Point, RunStats] = {}
        self.disk_cache = RunCache(cache_dir) if cache_dir else None
        # results database: a ResultsDB handle or a path to open one.
        # Every point this runner resolves (fresh simulation or disk
        # cache) is upserted with full spec + provenance.
        if isinstance(db, str):
            from repro.db.store import ResultsDB
            db = ResultsDB(db)
        self.results_db = db
        # compiled workload traces: generated (or read from the trace
        # cache under <cache_dir>/traces) once, shared by every config
        # that runs the same workload at this runner's scale and seed
        self.trace_cache_dir = (os.path.join(cache_dir, "traces")
                                if cache_dir else None)
        self._kernels: Dict[str, CompiledKernel] = {}
        #: actual simulations performed (cache hits don't count)
        self.simulations_run = 0
        #: engine hot-loop counters summed over fresh simulations
        #: (engine_* names; cached points contribute nothing)
        self.engine_counters: Dict[str, int] = {}
        #: backend name the most recent fresh simulation resolved
        #: ("" until one runs); recorded as provenance, never a key
        self.last_sim_backend = ""
        #: emit live heartbeat lines to stderr during batch prefetches
        self.progress = progress

    def _heartbeat(self, message: str) -> None:
        """One live progress line (stderr, so stdout stays parseable)."""
        if self.progress:
            print(f"[repro] {message}", file=sys.stderr, flush=True)

    @staticmethod
    def _describe_point(point: Point) -> str:
        workload, protocol, consistency, overrides = point
        text = f"{workload} {protocol.value}-{consistency.value}"
        if overrides:
            text += " " + ",".join(f"{k}={v}" for k, v in overrides)
        return text

    # ------------------------------------------------------------------
    def base_config(self, protocol: Protocol, consistency: Consistency,
                    **overrides) -> GPUConfig:
        """The runner's machine with one protocol/consistency choice."""
        factory = getattr(GPUConfig, self.preset)
        merged = dict(self.config_overrides)
        merged.update(overrides)
        return factory(protocol=protocol, consistency=consistency,
                       **merged)

    def _disk_key(self, workload: str, config: GPUConfig) -> str:
        return run_key(config, workload, self.scale, self.seed)

    def _kernel(self, workload: str) -> CompiledKernel:
        """The compiled trace for ``workload``, built at most once."""
        kernel = self._kernels.get(workload)
        if kernel is None:
            kernel = build_workload(workload, scale=self.scale,
                                    seed=self.seed,
                                    cache_dir=self.trace_cache_dir)
            if not isinstance(kernel, CompiledKernel):
                kernel = compile_kernel(kernel)
            self._kernels[workload] = kernel
        return kernel

    def _simulate(self, workload: str, config: GPUConfig) -> RunStats:
        kernel = self._kernel(workload)
        self.simulations_run += 1
        gpu = make_gpu(config, record_accesses=False)
        self.last_sim_backend = gpu.machine.sim_backend
        stats = gpu.run(kernel)
        totals = self.engine_counters
        for name, value in gpu.machine.engine.counters().items():
            totals[name] = totals.get(name, 0) + value
        return stats

    def run(self, workload: str, protocol: Protocol,
            consistency: Consistency, **overrides) -> RunStats:
        """Simulate one point, memoised on all of its parameters."""
        key = point_of(workload, protocol, consistency, **overrides)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self.base_config(protocol, consistency, **overrides)
        digest = self._disk_key(workload, config)
        stats = None
        wall_time = None
        source = "runner-cache"
        backend = ""  # disk-cache hits ran no engine this process
        if self.disk_cache is not None:
            stats = self.disk_cache.get(digest)
        if stats is None:
            started = time.perf_counter()
            stats = self._simulate(workload, config)
            wall_time = time.perf_counter() - started
            source = "runner"
            backend = self.last_sim_backend
            if self.disk_cache is not None:
                self.disk_cache.put(digest, stats)
        self._cache[key] = stats
        self._record_run(digest, stats, key, config,
                         wall_time_s=wall_time, source=source,
                         sim_backend=backend)
        return stats

    # ------------------------------------------------------------------
    # results database
    # ------------------------------------------------------------------
    def point_spec(self, point: Point) -> Dict:
        """The canonical request spec one point denormalises to.

        Matches the serve-protocol spec shape
        (:func:`repro.serve.schema.make_spec`), so a row written by a
        runner and a row written by a serve worker for the same run
        key carry comparable specs.
        """
        workload, protocol, consistency, overrides = point
        merged = dict(self.config_overrides)
        merged.update(dict(overrides))
        return {
            "workload": workload,
            "protocol": protocol.value,
            "consistency": consistency.value,
            "preset": self.preset,
            "scale": float(self.scale),
            "seed": self.seed,
            "overrides": {k: _canonical(merged[k])
                          for k in sorted(merged)},
        }

    def _record_run(self, digest: str, stats: RunStats, point: Point,
                    config: GPUConfig,
                    wall_time_s: Optional[float] = None,
                    source: str = "runner",
                    sim_backend: str = "") -> None:
        """Upsert one resolved point into the results DB (if any).

        Database trouble (read-only disk, concurrent schema upgrade)
        warns and continues: persistence of provenance must never
        fail the experiment that produced the result.
        """
        if self.results_db is None:
            return
        try:
            self.results_db.record(
                digest, stats, spec=self.point_spec(point),
                config=config, source=source,
                wall_time_s=wall_time_s, sim_backend=sim_backend)
        except Exception as error:
            warnings.warn(
                f"results-db record failed for {digest[:12]}…: "
                f"{type(error).__name__}: {error}",
                RuntimeWarning, stacklevel=2)

    def prefetch(self, points: Iterable[Point]) -> None:
        """Warm the memo for a batch of points.

        The base implementation simply runs them sequentially; the
        parallel runner overrides this to fan the *missing* points out
        over a process pool.  Callers that know their full set of
        points up front (matrix, sweep, figure functions) route it
        through here so that one runner swap parallelises everything.
        """
        points = list(points)
        total = len(points)
        started = time.monotonic()
        estimator = RateEstimator()
        for index, point in enumerate(points, start=1):
            workload, protocol, consistency, overrides = point
            before = self.simulations_run
            self.run(workload, protocol, consistency, **dict(overrides))
            tag = "ran" if self.simulations_run > before else "cached"
            estimator.tick()
            self._heartbeat(
                f"{index}/{total} {self._describe_point(point)} "
                f"({tag}, {time.monotonic() - started:.1f}s elapsed"
                f"{estimator.suffix(total - index)})")

    # -- the runs every figure needs -------------------------------------------
    def baseline(self, workload: str) -> RunStats:
        """The no-L1 coherent baseline (BL) all figures normalise to.

        BL turns the L1 off, so the consistency model reduces to the
        issue rules; the paper runs it once per benchmark.  RC issue
        rules are used (matching TC-Weak's baseline in the original TC
        work).
        """
        return self.run(workload, Protocol.DISABLED, Consistency.RC)

    def matrix(self, workload: str) -> Dict[str, RunStats]:
        """The four protocol/consistency bars of Figures 12-16."""
        self.prefetch(self.matrix_points([workload]))
        return {
            "TC-SC": self.run(workload, Protocol.TC, Consistency.SC),
            "TC-RC": self.run(workload, Protocol.TC, Consistency.RC),
            "G-TSC-SC": self.run(workload, Protocol.GTSC, Consistency.SC),
            "G-TSC-RC": self.run(workload, Protocol.GTSC, Consistency.RC),
        }

    @staticmethod
    def matrix_points(workloads: Iterable[str],
                      baseline: bool = False) -> list:
        """The matrix points (optionally + baseline) for workloads."""
        points = []
        for workload in workloads:
            if baseline:
                points.append(point_of(workload, Protocol.DISABLED,
                                       Consistency.RC))
            for protocol in (Protocol.TC, Protocol.GTSC):
                for consistency in (Consistency.SC, Consistency.RC):
                    points.append(point_of(workload, protocol,
                                           consistency))
        return points

    def with_l1(self, workload: str) -> RunStats:
        """The non-coherent "Baseline W/L1" bar (second group only)."""
        return self.run(workload, Protocol.NONCOHERENT, Consistency.RC)
