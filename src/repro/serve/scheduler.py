"""Single-flight scheduling: N identical submissions, one simulation.

Simulations are pure functions of their spec (that is what makes the
run cache sound), so the scheduler treats the
:func:`~repro.serve.schema.spec_key` digest as the unit of work and
enforces one invariant: **at any moment, at most one execution per
key exists anywhere in the system**.  A submission resolves through
the first of:

1. **cache** — the key is already in the :class:`RunCache` (from a
   previous service run *or* any CLI/harness run that shared the
   cache directory): the result is returned immediately, no job;
2. **quarantine** — the key recently failed terminally: the recorded
   error is raised immediately instead of re-burning workers;
3. **coalesce** — a job for the key is already queued or running: the
   caller is attached to the existing job's future;
4. **enqueue** — a new job is journalled and the pool is woken; this
   is the only path that can be refused for backpressure
   (:class:`Busy`), because attaching a waiter or reading the cache
   costs nothing.

Waiters hold :class:`concurrent.futures.Future` objects resolved from
worker threads; the asyncio server awaits them via
``asyncio.wrap_future`` without blocking the event loop.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness.cache import RunCache
from repro.serve import schema
from repro.serve.jobs import JobStore
from repro.serve.workers import WorkerPool
from repro.stats.collector import RunStats


class Busy(Exception):
    """Queue full — retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full, retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class Quarantined(Exception):
    """The identical point failed terminally moments ago."""


@dataclass
class Submission:
    """How one submit was satisfied, plus the future of its result."""

    key: str
    job_id: Optional[str]        # None when served straight from cache
    cached: bool
    coalesced: bool
    future: "Future[RunStats]"


class Scheduler:
    """Owns the store, the result cache, and the worker pool."""

    def __init__(self, store: JobStore,
                 cache: Optional[RunCache] = None,
                 jobs: int = 1, queue_limit: int = 64,
                 retry_after: float = 1.0,
                 cache_max_bytes: Optional[int] = None,
                 db=None, **pool_options) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.cache = cache
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.cache_max_bytes = cache_max_bytes
        # results database: every job a worker completes lands as a
        # provenance-stamped row (a path opens a ResultsDB here)
        if isinstance(db, str):
            from repro.db.store import ResultsDB
            db = ResultsDB(db)
        self.db = db
        self.pool = WorkerPool(store, jobs=jobs,
                               on_result=self._on_result,
                               on_failure=self._on_failure,
                               **pool_options)
        self._lock = threading.Lock()
        self._futures: Dict[str, "Future[RunStats]"] = {}
        self.submits = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the workers (pending journal entries resume here)."""
        self.pool.start()

    def stop(self, wait: bool = True) -> None:
        self.pool.stop(wait=wait)

    # ------------------------------------------------------------------
    def submit(self, spec: Dict) -> Submission:
        """Route one validated spec; see the module docstring order."""
        key = schema.spec_key(spec)
        with self._lock:
            self.submits += 1
            if self.cache is not None:
                stats = self.cache.get(key)
                if stats is not None:
                    self.cache_hits += 1
                    future: "Future[RunStats]" = Future()
                    future.set_result(stats)
                    return Submission(key=key, job_id=None,
                                      cached=True, coalesced=False,
                                      future=future)
            error = self.pool.quarantined(key)
            if error is not None:
                raise Quarantined(error)
            pending = self._futures.get(key)
            if pending is not None:
                # the job may have just left the queue (DONE) while
                # its result is still being published to the cache;
                # the live future bridges that window
                self.coalesced += 1
                active = self.store.active_for(key)
                return Submission(key=key,
                                  job_id=active.id if active else None,
                                  cached=False, coalesced=True,
                                  future=pending)
            existing = self.store.active_for(key)
            if existing is not None:
                self.coalesced += 1
                return Submission(key=key, job_id=existing.id,
                                  cached=False, coalesced=True,
                                  future=self._future_for(key))
            if self.store.active_count() >= self.queue_limit:
                self.rejected += 1
                raise Busy(self.retry_after)
            job = self.store.submit(spec, key)
            submission = Submission(key=key, job_id=job.id,
                                    cached=False, coalesced=False,
                                    future=self._future_for(key))
        self.pool.notify()
        return submission

    def _future_for(self, key: str) -> "Future[RunStats]":
        future = self._futures.get(key)
        if future is None:
            future = Future()
            self._futures[key] = future
        return future

    # ------------------------------------------------------------------
    # worker-thread callbacks
    # ------------------------------------------------------------------
    def _on_result(self, job, stats: RunStats) -> None:
        if self.cache is not None:
            self.cache.put(job.key, stats)
            if self.cache_max_bytes is not None:
                self.cache.prune(self.cache_max_bytes)
        if self.db is not None:
            try:
                self.db.record(
                    job.key, stats, spec=job.spec, source="serve",
                    wall_time_s=getattr(job, "wall_time_s", None),
                    config=schema.spec_config(job.spec))
            except Exception as error:
                warnings.warn(
                    f"results-db record failed for {job.key[:12]}…: "
                    f"{type(error).__name__}: {error}",
                    RuntimeWarning, stacklevel=2)
        with self._lock:
            future = self._futures.pop(job.key, None)
        if future is not None:
            future.set_result(stats)

    def _on_failure(self, job, message: str) -> None:
        with self._lock:
            future = self._futures.pop(job.key, None)
        if future is not None:
            future.set_exception(Quarantined(message))

    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Keys with unresolved waiters (a drain gauge)."""
        with self._lock:
            return len(self._futures)

    def snapshot(self) -> Dict:
        """One flat dict of everything the metrics endpoint exports."""
        counts = self.store.counts()
        out = {
            "submits": self.submits,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "executed": self.pool.executed,
            "retried": self.pool.retried,
            "failed": self.pool.failed,
            "timeouts": self.pool.timeouts,
        }
        for state, value in counts.items():
            out[f"jobs_{state}"] = value
        if self.cache is not None:
            for name, value in self.cache.stats().items():
                out[f"cache_{name}"] = value
        return out
