"""Single-flight scheduling: N identical submissions, one simulation.

Simulations are pure functions of their spec (that is what makes the
run cache sound), so the scheduler treats the
:func:`~repro.serve.schema.spec_key` digest as the unit of work and
enforces one invariant: **at any moment, at most one execution per
key exists anywhere in the fleet**.  A submission resolves through
the first of:

1. **store** — the key is already in the shared
   :class:`~repro.serve.results.ResultStore` (from a previous service
   run, another fleet member, *or* any CLI/harness run that shared
   the directory): the result is returned immediately, no job;
2. **quarantine** — the key recently failed terminally: the recorded
   error is raised immediately instead of re-burning workers;
3. **coalesce** — a job for the key is already queued or running: the
   caller is attached to the existing job's future;
4. **enqueue** — a new job is journalled and the pool is woken; this
   is the only path that can be refused for backpressure
   (:class:`Busy`), because attaching a waiter or reading the store
   costs nothing.

Dedup state is **sharded by key**: the waiter-future map is split
over ``shards`` independent locks (a key's shard is a prefix of its
hex digest), so thousands of concurrent submissions of *distinct*
points do not serialize on one lock — only identical points contend,
and those are exactly the ones that must.  The queue-occupancy limit
moved into :meth:`JobStore.submit` so backpressure stays exact
without a global lock around the check-then-enqueue.

The execution side is symmetric about where workers live:

* **local** — the in-process :class:`WorkerPool` threads lease
  directly from the store (``jobs >= 1``);
* **remote** — ``serve worker --connect`` processes lease **over the
  wire** through :meth:`lease` / :meth:`complete` / :meth:`fail` /
  :meth:`heartbeat`, which the server exposes as protocol ops.  A
  remote lease first consults the result store, so a job whose key
  was finished elsewhere (late result after an expired lease, a
  batch run that shared the directory) is completed on the spot
  instead of re-simulated; a ``complete`` whose lease has moved on
  is deduplicated by run key rather than rejected — its result is
  published and its waiters answered, it just isn't the completion
  of record.

Waiters hold :class:`concurrent.futures.Future` objects resolved from
worker threads (or the server's executor for remote completions); the
asyncio server awaits them via ``asyncio.wrap_future`` without
blocking the event loop.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.harness.cache import RunCache
from repro.serve import schema
from repro.serve.jobs import Job, JobStore, LEASED
from repro.serve.workers import WorkerPool
from repro.stats.collector import RunStats


class Busy(Exception):
    """Queue full — retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full, retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class Quarantined(Exception):
    """The identical point failed terminally moments ago."""


@dataclass
class Submission:
    """How one submit was satisfied, plus the future of its result."""

    key: str
    job_id: Optional[str]        # None when served straight from cache
    cached: bool
    coalesced: bool
    future: "Future[RunStats]"


class Scheduler:
    """Owns the store, the result cache, and the worker pool."""

    def __init__(self, store: JobStore,
                 cache: Optional[RunCache] = None,
                 jobs: int = 1, queue_limit: int = 64,
                 retry_after: float = 1.0,
                 cache_max_bytes: Optional[int] = None,
                 db=None, db_flush_interval: Optional[float] = None,
                 shards: int = 16, **pool_options) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.store = store
        self.cache = cache
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.cache_max_bytes = cache_max_bytes
        # results database: every job a worker completes lands as a
        # provenance-stamped row (a path opens a ResultsDB here)
        if isinstance(db, str):
            from repro.db.store import ResultsDB
            db = ResultsDB(db, flush_interval=db_flush_interval)
        self.db = db
        self.pool = WorkerPool(store, jobs=jobs,
                               on_result=self._on_result,
                               on_failure=self._on_failure,
                               **pool_options)
        self.shards = shards
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        self._futures: List[Dict[str, "Future[RunStats]"]] = \
            [{} for _ in range(shards)]
        self._counter_lock = threading.Lock()
        self.submits = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.remote_leases = 0
        self.remote_results = 0
        self.deduped_results = 0

    def _shard_of(self, key: str) -> int:
        # keys are hex sha256 digests; the leading 32 bits are as
        # uniform as any slice and cheap to parse
        return int(key[:8], 16) % self.shards

    def _count(self, name: str) -> None:
        with self._counter_lock:
            setattr(self, name, getattr(self, name) + 1)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the workers (pending journal entries resume here)."""
        self.pool.start()

    def stop(self, wait: bool = True) -> None:
        self.pool.stop(wait=wait)
        if self.db is not None:
            try:
                self.db.flush()
            except Exception as error:     # pragma: no cover
                warnings.warn(f"results-db flush failed: "
                              f"{type(error).__name__}: {error}",
                              RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------
    def submit(self, spec: Dict) -> Submission:
        """Route one validated spec; see the module docstring order."""
        key = schema.spec_key(spec)
        index = self._shard_of(key)
        self._count("submits")
        with self._shard_locks[index]:
            if self.cache is not None:
                stats = self.cache.get(key)
                if stats is not None:
                    self._count("cache_hits")
                    future: "Future[RunStats]" = Future()
                    future.set_result(stats)
                    return Submission(key=key, job_id=None,
                                      cached=True, coalesced=False,
                                      future=future)
            error = self.pool.quarantined(key)
            if error is not None:
                raise Quarantined(error)
            pending = self._futures[index].get(key)
            if pending is not None:
                # the job may have just left the queue (DONE) while
                # its result is still being published to the cache;
                # the live future bridges that window
                self._count("coalesced")
                active = self.store.active_for(key)
                return Submission(key=key,
                                  job_id=active.id if active else None,
                                  cached=False, coalesced=True,
                                  future=pending)
            existing = self.store.active_for(key)
            if existing is not None:
                self._count("coalesced")
                return Submission(key=key, job_id=existing.id,
                                  cached=False, coalesced=True,
                                  future=self._future_for(index, key))
            job = self.store.submit(spec, key,
                                    limit=self.queue_limit)
            if job is None:
                self._count("rejected")
                raise Busy(self.retry_after)
            submission = Submission(key=key, job_id=job.id,
                                    cached=False, coalesced=False,
                                    future=self._future_for(index, key))
        self.pool.notify()
        return submission

    def _future_for(self, index: int,
                    key: str) -> "Future[RunStats]":
        future = self._futures[index].get(key)
        if future is None:
            future = Future()
            self._futures[index][key] = future
        return future

    # ------------------------------------------------------------------
    # the remote fleet (server ops lease/complete/fail/heartbeat)
    # ------------------------------------------------------------------
    def lease(self, worker: str, duration: float) -> Optional[Job]:
        """Grant the next runnable job to a remote worker.

        Jobs whose key already has a result in the shared store are
        completed here instead of handed out — the fleet-wide dedup
        that makes an expired-then-finished-elsewhere job free, and
        lets a warm batch cache drain a queue without burning a
        single worker-second.
        """
        while True:
            job = self.store.lease(worker, duration)
            if job is None:
                return None
            if self.cache is not None and self.cache.contains(job.key):
                stats = self.cache.get(job.key)
                if stats is not None:
                    self.store.complete(job.id)
                    self._count("deduped_results")
                    self._resolve(job.key, stats)
                    continue
            self._count("remote_leases")
            return job

    def complete(self, job_id: str, worker: str, stats: RunStats,
                 wall_time_s: Optional[float] = None) -> bool:
        """Record a remote worker's finished result.

        Returns ``True`` when this was the completion of record (the
        worker still held the lease).  A late result — the lease
        expired, the job was requeued, possibly re-leased or already
        finished by someone else — is **not** an error: determinism
        makes it byte-equal to the winning result, so it is published
        to the store and any waiters are answered, and ``False``
        reports that it was redundant.  Raises :class:`KeyError` for
        a job id the journal has never seen.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id!r}")
        # updated_at currently stamps the lease grant; complete() will
        # overwrite it, so measure the queue wait first
        queue_wait = max(
            0.0, (job.updated_at or job.submitted_at)
            - job.submitted_at)
        fresh = False
        if job.state == LEASED and job.worker == worker:
            try:
                self.store.complete(job_id)
                fresh = True
            except ValueError:
                # lost a photo-finish with lease expiry; fall through
                # to the dedup path
                fresh = False
        if fresh:
            self._count("remote_results")
            self.pool.note_executed(
                queue_wait, wall_time_s if wall_time_s else 0.0)
            job.wall_time_s = wall_time_s
            self._on_result(job, stats)
            return True
        self._count("deduped_results")
        if self.cache is not None:
            self.cache.put_if_absent(job.key, stats)
        self._resolve(job.key, stats)
        return False

    def fail(self, job_id: str, worker: str, message: str) -> bool:
        """Apply the retry policy to a remote worker's failure report.

        Returns ``False`` (and changes nothing) when the reporting
        worker no longer holds the lease — its failure is stale news
        about a job someone else now owns.  Raises :class:`KeyError`
        for an unknown job id.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id!r}")
        if job.state != LEASED or job.worker != worker:
            return False
        self.pool.record_failure(job, message)
        return True

    def heartbeat(self, job_id: str, worker: str,
                  duration: float) -> Job:
        """Extend a remote worker's lease (see JobStore.heartbeat)."""
        return self.store.heartbeat(job_id, worker, duration)

    def _resolve(self, key: str, stats: RunStats) -> None:
        """Answer any waiters for ``key`` outside the job lifecycle."""
        index = self._shard_of(key)
        with self._shard_locks[index]:
            future = self._futures[index].pop(key, None)
        if future is not None:
            future.set_result(stats)

    # ------------------------------------------------------------------
    # worker-thread callbacks
    # ------------------------------------------------------------------
    def _on_result(self, job, stats: RunStats) -> None:
        if self.cache is not None:
            self.cache.put(job.key, stats)
            if self.cache_max_bytes is not None:
                self.cache.prune(self.cache_max_bytes)
        if self.db is not None:
            try:
                from repro.sim.backend import backend_name
                self.db.record(
                    job.key, stats, spec=job.spec, source="serve",
                    wall_time_s=getattr(job, "wall_time_s", None),
                    config=schema.spec_config(job.spec),
                    sim_backend=backend_name())
            except Exception as error:
                warnings.warn(
                    f"results-db record failed for {job.key[:12]}…: "
                    f"{type(error).__name__}: {error}",
                    RuntimeWarning, stacklevel=2)
        self._resolve(job.key, stats)

    def _on_failure(self, job, message: str) -> None:
        index = self._shard_of(job.key)
        with self._shard_locks[index]:
            future = self._futures[index].pop(job.key, None)
        if future is not None:
            future.set_exception(Quarantined(message))

    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Keys with unresolved waiters (a drain gauge)."""
        total = 0
        for index in range(self.shards):
            with self._shard_locks[index]:
                total += len(self._futures[index])
        return total

    def snapshot(self) -> Dict:
        """One flat dict of everything the metrics endpoint exports."""
        counts = self.store.counts()
        out = {
            "submits": self.submits,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "executed": self.pool.executed,
            "retried": self.pool.retried,
            "failed": self.pool.failed,
            "timeouts": self.pool.timeouts,
            "remote_leases": self.remote_leases,
            "remote_results": self.remote_results,
            "deduped_results": self.deduped_results,
        }
        for state, value in counts.items():
            out[f"jobs_{state}"] = value
        if self.cache is not None:
            for name, value in self.cache.stats().items():
                out[f"cache_{name}"] = value
        return out
